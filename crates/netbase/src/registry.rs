//! ASN and organization registries plus the two CAIDA-style mapping tables
//! the paper uses: prefix2as (RouteViews-derived origin-AS per prefix) and
//! as2org (AS-to-organization).

use crate::net::Ipv4Net;
use crate::trie::PrefixTrie;
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// An autonomous system number.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Asn(pub u32);

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}
impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Opaque organization identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct OrgId(pub u32);

impl fmt::Debug for OrgId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Org#{}", self.0)
    }
}

/// An organization: the unit Table 4 and Table 6 of the paper report on.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Org {
    pub id: OrgId,
    pub name: String,
    /// ISO-3166-ish country code.
    pub country: String,
}

/// Registry of organizations.
#[derive(Clone, Debug, Default)]
pub struct OrgRegistry {
    orgs: Vec<Org>,
}

impl OrgRegistry {
    pub fn new() -> OrgRegistry {
        OrgRegistry::default()
    }

    pub fn add(&mut self, name: &str, country: &str) -> OrgId {
        let id = OrgId(self.orgs.len() as u32);
        self.orgs.push(Org { id, name: name.to_string(), country: country.to_string() });
        id
    }

    pub fn get(&self, id: OrgId) -> &Org {
        &self.orgs[id.0 as usize]
    }

    pub fn len(&self) -> usize {
        self.orgs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.orgs.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &Org> {
        self.orgs.iter()
    }
}

/// The as2org table: maps an ASN to its owning organization.
#[derive(Clone, Debug, Default)]
pub struct As2Org {
    map: HashMap<Asn, OrgId>,
}

impl As2Org {
    pub fn new() -> As2Org {
        As2Org::default()
    }

    pub fn assign(&mut self, asn: Asn, org: OrgId) {
        self.map.insert(asn, org);
    }

    pub fn org_of(&self, asn: Asn) -> Option<OrgId> {
        self.map.get(&asn).copied()
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// The prefix2as table: longest-prefix-match from an address to its origin
/// AS, as built from RouteViews BGP snapshots in the real pipeline.
#[derive(Clone, Debug, Default)]
pub struct Prefix2As {
    trie: PrefixTrie<Asn>,
}

impl Prefix2As {
    pub fn new() -> Prefix2As {
        Prefix2As::default()
    }

    pub fn announce(&mut self, net: Ipv4Net, asn: Asn) {
        self.trie.insert(net, asn);
    }

    /// Origin AS of the most specific covering announcement.
    pub fn asn_of(&self, ip: Ipv4Addr) -> Option<Asn> {
        self.trie.lookup_value(ip).copied()
    }

    /// The matched announcement itself.
    pub fn route_of(&self, ip: Ipv4Addr) -> Option<(Ipv4Net, Asn)> {
        self.trie.lookup(ip).map(|(n, a)| (n, *a))
    }

    pub fn len(&self) -> usize {
        self.trie.len()
    }

    pub fn is_empty(&self) -> bool {
        self.trie.is_empty()
    }

    pub fn routes(&self) -> Vec<(Ipv4Net, Asn)> {
        self.trie.iter().into_iter().map(|(n, a)| (n, *a)).collect()
    }
}

impl Prefix2As {
    /// Parse CAIDA's RouteViews `pfx2as` text format: one
    /// `prefix<TAB>length<TAB>asn` row per line. Multi-origin rows
    /// (`asn1_asn2` or `asn1,asn2`) keep the first origin, as the paper's
    /// pipeline effectively does when attributing a victim to one AS.
    /// Lines that fail to parse are reported with their 1-based number.
    pub fn from_pfx2as(text: &str) -> Result<Prefix2As, String> {
        let mut out = Prefix2As::new();
        for (i, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let (Some(addr), Some(len), Some(asn)) = (fields.next(), fields.next(), fields.next())
            else {
                return Err(format!("line {}: expected 3 fields", i + 1));
            };
            let addr: Ipv4Addr =
                addr.parse().map_err(|_| format!("line {}: bad address", i + 1))?;
            let len: u8 = len.parse().map_err(|_| format!("line {}: bad length", i + 1))?;
            if len > 32 {
                return Err(format!("line {}: bad length", i + 1));
            }
            // Multi-origin: take the first ASN.
            let first = asn.split(['_', ',']).next().unwrap_or(asn);
            let asn: u32 = first.parse().map_err(|_| format!("line {}: bad ASN", i + 1))?;
            out.announce(Ipv4Net::new(addr, len), Asn(asn));
        }
        Ok(out)
    }

    /// Render the table back to `pfx2as` text (sorted by prefix).
    pub fn to_pfx2as(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        for (net, asn) in self.routes() {
            let _ = writeln!(out, "{}\t{}\t{}", net.addr(), net.len(), asn.0);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn net(s: &str) -> Ipv4Net {
        s.parse().unwrap()
    }
    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn org_registry_roundtrip() {
        let mut reg = OrgRegistry::new();
        let a = reg.add("TransIP B.V.", "NL");
        let b = reg.add("Google LLC", "US");
        assert_ne!(a, b);
        assert_eq!(reg.get(a).name, "TransIP B.V.");
        assert_eq!(reg.get(b).country, "US");
        assert_eq!(reg.len(), 2);
        assert_eq!(reg.iter().count(), 2);
    }

    #[test]
    fn as2org_mapping() {
        let mut reg = OrgRegistry::new();
        let google = reg.add("Google LLC", "US");
        let mut a2o = As2Org::new();
        a2o.assign(Asn(15169), google);
        a2o.assign(Asn(396982), google); // Google Cloud shares the org
        assert_eq!(a2o.org_of(Asn(15169)), Some(google));
        assert_eq!(a2o.org_of(Asn(396982)), Some(google));
        assert_eq!(a2o.org_of(Asn(1)), None);
        assert_eq!(a2o.len(), 2);
    }

    #[test]
    fn prefix2as_more_specific_wins() {
        let mut p2a = Prefix2As::new();
        p2a.announce(net("8.0.0.0/8"), Asn(3356)); // covering aggregate
        p2a.announce(net("8.8.8.0/24"), Asn(15169)); // Google more-specific
        assert_eq!(p2a.asn_of(ip("8.8.8.8")), Some(Asn(15169)));
        assert_eq!(p2a.asn_of(ip("8.1.2.3")), Some(Asn(3356)));
        assert_eq!(p2a.asn_of(ip("9.9.9.9")), None);
        let (route, asn) = p2a.route_of(ip("8.8.8.8")).unwrap();
        assert_eq!(route, net("8.8.8.0/24"));
        assert_eq!(asn, Asn(15169));
    }

    #[test]
    fn routes_dump() {
        let mut p2a = Prefix2As::new();
        p2a.announce(net("1.0.0.0/24"), Asn(13335));
        p2a.announce(net("1.1.1.0/24"), Asn(13335));
        let routes = p2a.routes();
        assert_eq!(routes.len(), 2);
        assert!(routes.iter().all(|(_, a)| *a == Asn(13335)));
    }

    #[test]
    fn pfx2as_parse_and_render() {
        let text = "\
# RouteViews pfx2as snapshot
8.8.8.0\t24\t15169
1.0.0.0 24 13335
195.135.195.0\t24\t20857_199995
203.0.113.0\t24\t64500,64501
";
        let p2a = Prefix2As::from_pfx2as(text).unwrap();
        assert_eq!(p2a.len(), 4);
        assert_eq!(p2a.asn_of(ip("8.8.8.8")), Some(Asn(15169)));
        assert_eq!(p2a.asn_of(ip("1.0.0.1")), Some(Asn(13335)));
        // Multi-origin rows keep the first origin.
        assert_eq!(p2a.asn_of(ip("195.135.195.195")), Some(Asn(20857)));
        assert_eq!(p2a.asn_of(ip("203.0.113.7")), Some(Asn(64500)));
        // Roundtrip through the renderer.
        let back = Prefix2As::from_pfx2as(&p2a.to_pfx2as()).unwrap();
        assert_eq!(back.routes(), p2a.routes());
    }

    #[test]
    fn pfx2as_errors_carry_line_numbers() {
        assert!(Prefix2As::from_pfx2as("not-an-ip\t24\t1\n").unwrap_err().contains("line 1"));
        assert!(Prefix2As::from_pfx2as("8.8.8.0\t99\t1\n").unwrap_err().contains("line 1"));
        assert!(Prefix2As::from_pfx2as("\n8.8.8.0\t24\tx\n").unwrap_err().contains("line 2"));
        assert!(Prefix2As::from_pfx2as("8.8.8.0\t24\n").unwrap_err().contains("3 fields"));
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", Asn(15169)), "AS15169");
        assert_eq!(format!("{:?}", OrgId(3)), "Org#3");
    }
}
