//! IPv4 CIDR prefixes and the /16 and /24 granularities used throughout the
//! paper's joins.

use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// An IPv4 CIDR prefix. The address is stored canonicalized (host bits
/// zeroed).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Ipv4Net {
    addr: u32,
    len: u8,
}

impl Ipv4Net {
    /// Build a prefix, canonicalizing the address to its network base.
    /// Panics if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> Ipv4Net {
        assert!(len <= 32, "prefix length {len} out of range");
        let a = u32::from(addr) & mask(len);
        Ipv4Net { addr: a, len }
    }

    /// The whole IPv4 space, `0.0.0.0/0`.
    pub const ALL: Ipv4Net = Ipv4Net { addr: 0, len: 0 };

    /// A host route (`/32`).
    pub fn host(addr: Ipv4Addr) -> Ipv4Net {
        Ipv4Net { addr: u32::from(addr), len: 32 }
    }

    pub fn addr(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }
    /// The CIDR prefix length (`/len`). A prefix is never "empty", so no
    /// `is_empty` counterpart exists.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> u8 {
        self.len
    }
    pub fn addr_u32(&self) -> u32 {
        self.addr
    }

    /// Number of addresses covered (saturating at `u32::MAX` for /0 would
    /// overflow `u32`, so the count is returned as `u64`).
    pub fn size(&self) -> u64 {
        1u64 << (32 - self.len)
    }

    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        (u32::from(ip) & mask(self.len)) == self.addr
    }

    pub fn contains_net(&self, other: Ipv4Net) -> bool {
        other.len >= self.len && (other.addr & mask(self.len)) == self.addr
    }

    /// The first address of the prefix.
    pub fn first(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr)
    }

    /// The last address of the prefix.
    pub fn last(&self) -> Ipv4Addr {
        Ipv4Addr::from(self.addr | !mask(self.len))
    }

    /// The `i`-th address inside the prefix. Panics if out of range.
    pub fn nth(&self, i: u64) -> Ipv4Addr {
        assert!(i < self.size(), "index {i} out of prefix {self}");
        Ipv4Addr::from(self.addr + i as u32)
    }

    /// Split into the two child prefixes of length `len + 1`.
    /// Panics on a /32.
    pub fn children(&self) -> (Ipv4Net, Ipv4Net) {
        assert!(self.len < 32, "cannot split a host route");
        let l = self.len + 1;
        let left = Ipv4Net { addr: self.addr, len: l };
        let right = Ipv4Net { addr: self.addr | (1 << (32 - l)), len: l };
        (left, right)
    }

    /// Enumerate the /24 sub-prefixes. Panics if `len > 24`.
    pub fn slash24s(&self) -> impl Iterator<Item = Slash24> + '_ {
        assert!(self.len <= 24, "prefix {self} is finer than a /24");
        let count = 1u32 << (24 - self.len);
        (0..count).map(move |i| Slash24((self.addr >> 8) + i))
    }
}

impl fmt::Display for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.addr(), self.len)
    }
}
impl fmt::Debug for Ipv4Net {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// Errors parsing an [`Ipv4Net`] from `a.b.c.d/len` notation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseNetError {
    MissingSlash,
    BadAddr,
    BadLen,
}

impl fmt::Display for ParseNetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseNetError::MissingSlash => write!(f, "missing '/' in prefix"),
            ParseNetError::BadAddr => write!(f, "invalid IPv4 address"),
            ParseNetError::BadLen => write!(f, "invalid prefix length"),
        }
    }
}
impl std::error::Error for ParseNetError {}

impl FromStr for Ipv4Net {
    type Err = ParseNetError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (a, l) = s.split_once('/').ok_or(ParseNetError::MissingSlash)?;
        let addr: Ipv4Addr = a.parse().map_err(|_| ParseNetError::BadAddr)?;
        let len: u8 = l.parse().map_err(|_| ParseNetError::BadLen)?;
        if len > 32 {
            return Err(ParseNetError::BadLen);
        }
        Ok(Ipv4Net::new(addr, len))
    }
}

fn mask(len: u8) -> u32 {
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

/// A /24 prefix identified by its upper 24 bits. This is the paper's unit
/// for "same network infrastructure" (shared L2/upstream) and the anycast
/// census join key.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Slash24(pub u32);

impl Slash24 {
    pub fn of(ip: Ipv4Addr) -> Slash24 {
        Slash24(u32::from(ip) >> 8)
    }
    pub fn net(&self) -> Ipv4Net {
        Ipv4Net { addr: self.0 << 8, len: 24 }
    }
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) >> 8 == self.0
    }
    /// The /16 this /24 sits inside.
    pub fn slash16(&self) -> Slash16 {
        Slash16(self.0 >> 8)
    }
    /// The `i`-th host (0..256).
    pub fn nth(&self, i: u32) -> Ipv4Addr {
        assert!(i < 256);
        Ipv4Addr::from((self.0 << 8) | i)
    }
}

impl fmt::Display for Slash24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.net())
    }
}
impl fmt::Debug for Slash24 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

/// A /16 prefix identified by its upper 16 bits. The RSDoS feed counts how
/// many telescope /16s receive backscatter from a victim.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Slash16(pub u32);

impl Slash16 {
    pub fn of(ip: Ipv4Addr) -> Slash16 {
        Slash16(u32::from(ip) >> 16)
    }
    pub fn net(&self) -> Ipv4Net {
        Ipv4Net { addr: self.0 << 16, len: 16 }
    }
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        u32::from(ip) >> 16 == self.0
    }
}

impl fmt::Display for Slash16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.net())
    }
}
impl fmt::Debug for Slash16 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }

    #[test]
    fn canonicalizes_host_bits() {
        let n = Ipv4Net::new(ip("192.168.13.57"), 16);
        assert_eq!(n.addr(), ip("192.168.0.0"));
        assert_eq!(format!("{n}"), "192.168.0.0/16");
    }

    #[test]
    fn contains_bounds() {
        let n: Ipv4Net = "10.20.0.0/15".parse().unwrap();
        assert!(n.contains(ip("10.20.0.0")));
        assert!(n.contains(ip("10.21.255.255")));
        assert!(!n.contains(ip("10.22.0.0")));
        assert!(!n.contains(ip("10.19.255.255")));
        assert_eq!(n.first(), ip("10.20.0.0"));
        assert_eq!(n.last(), ip("10.21.255.255"));
        assert_eq!(n.size(), 1 << 17);
    }

    #[test]
    fn slash_zero_contains_everything() {
        assert!(Ipv4Net::ALL.contains(ip("0.0.0.0")));
        assert!(Ipv4Net::ALL.contains(ip("255.255.255.255")));
        assert_eq!(Ipv4Net::ALL.size(), 1u64 << 32);
    }

    #[test]
    fn host_route() {
        let h = Ipv4Net::host(ip("1.2.3.4"));
        assert_eq!(h.len(), 32);
        assert!(h.contains(ip("1.2.3.4")));
        assert!(!h.contains(ip("1.2.3.5")));
        assert_eq!(h.size(), 1);
    }

    #[test]
    fn children_split() {
        let n: Ipv4Net = "128.0.0.0/9".parse().unwrap();
        let (l, r) = n.children();
        assert_eq!(format!("{l}"), "128.0.0.0/10");
        assert_eq!(format!("{r}"), "128.64.0.0/10");
        assert!(n.contains_net(l) && n.contains_net(r));
        assert!(!l.contains_net(n));
    }

    #[test]
    fn contains_net_relations() {
        let a: Ipv4Net = "10.0.0.0/8".parse().unwrap();
        let b: Ipv4Net = "10.5.0.0/16".parse().unwrap();
        assert!(a.contains_net(b));
        assert!(!b.contains_net(a));
        assert!(a.contains_net(a));
    }

    #[test]
    fn parse_errors() {
        assert_eq!("10.0.0.0".parse::<Ipv4Net>(), Err(ParseNetError::MissingSlash));
        assert_eq!("10.0.0/8".parse::<Ipv4Net>(), Err(ParseNetError::BadAddr));
        assert_eq!("10.0.0.0/33".parse::<Ipv4Net>(), Err(ParseNetError::BadLen));
        assert_eq!("10.0.0.0/x".parse::<Ipv4Net>(), Err(ParseNetError::BadLen));
    }

    #[test]
    fn slash24_of_and_nth() {
        let s = Slash24::of(ip("203.0.113.77"));
        assert_eq!(format!("{s}"), "203.0.113.0/24");
        assert!(s.contains(ip("203.0.113.0")));
        assert!(!s.contains(ip("203.0.114.0")));
        assert_eq!(s.nth(5), ip("203.0.113.5"));
        assert_eq!(s.slash16(), Slash16::of(ip("203.0.200.1")));
    }

    #[test]
    fn slash16_of() {
        let s = Slash16::of(ip("198.51.100.1"));
        assert_eq!(format!("{s}"), "198.51.0.0/16");
        assert!(s.contains(ip("198.51.255.255")));
        assert!(!s.contains(ip("198.52.0.0")));
    }

    #[test]
    fn slash24_enumeration() {
        let n: Ipv4Net = "10.1.0.0/22".parse().unwrap();
        let subs: Vec<Slash24> = n.slash24s().collect();
        assert_eq!(subs.len(), 4);
        assert_eq!(format!("{}", subs[0]), "10.1.0.0/24");
        assert_eq!(format!("{}", subs[3]), "10.1.3.0/24");
    }

    #[test]
    fn nth_in_prefix() {
        let n: Ipv4Net = "172.16.0.0/30".parse().unwrap();
        assert_eq!(n.nth(0), ip("172.16.0.0"));
        assert_eq!(n.nth(3), ip("172.16.0.3"));
    }

    #[test]
    #[should_panic]
    fn nth_out_of_range_panics() {
        let n: Ipv4Net = "172.16.0.0/30".parse().unwrap();
        n.nth(4);
    }
}
