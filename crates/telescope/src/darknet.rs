//! The darknet: the telescope's announced address space.

use netbase::{Ipv4Net, PrefixTrie, Slash16};
use rand::Rng;
use std::net::Ipv4Addr;

/// The telescope's announced prefixes and derived coverage constants.
///
/// ```
/// use telescope::Darknet;
///
/// let d = Darknet::ucsd_like(); // a /9 + /10, ≈ 1/341 of IPv4
/// assert!((d.scale_factor() - 341.33).abs() < 0.5);
/// // The paper's footnote 2: 21.8 Kppm × 341 / 60 s ≈ 124 Kpps.
/// let victim_pps = 21_800.0 * d.scale_factor() / 60.0;
/// assert!((victim_pps - 124_000.0).abs() < 1_000.0);
/// ```
#[derive(Clone, Debug)]
pub struct Darknet {
    prefixes: Vec<Ipv4Net>,
    trie: PrefixTrie<()>,
    total_addrs: u64,
    slash16s: Vec<Slash16>,
}

impl Darknet {
    /// Build from arbitrary dark prefixes.
    pub fn new(prefixes: Vec<Ipv4Net>) -> Darknet {
        assert!(!prefixes.is_empty());
        let mut trie = PrefixTrie::new();
        let mut total = 0u64;
        let mut slash16s = Vec::new();
        for p in &prefixes {
            assert!(p.len() <= 24, "dark prefixes coarser than /24 expected");
            trie.insert(*p, ());
            total += p.size();
            // Enumerate the /16s the prefix covers (or the one containing
            // it, for prefixes finer than /16).
            if p.len() <= 16 {
                let count = 1u32 << (16 - p.len());
                let base = p.addr_u32() >> 16;
                for i in 0..count {
                    slash16s.push(Slash16(base + i));
                }
            } else {
                slash16s.push(Slash16(p.addr_u32() >> 16));
            }
        }
        slash16s.sort();
        slash16s.dedup();
        Darknet { prefixes, trie, total_addrs: total, slash16s }
    }

    /// The UCSD-NT shape: a /9 plus a /10 — ≈1/341 of IPv4 (the paper's
    /// §3.1). Placed in documentation space-adjacent blocks; the exact
    /// location is irrelevant to the statistics.
    pub fn ucsd_like() -> Darknet {
        Darknet::new(vec!["44.0.0.0/9".parse().unwrap(), "45.128.0.0/10".parse().unwrap()])
    }

    pub fn prefixes(&self) -> &[Ipv4Net] {
        &self.prefixes
    }

    /// Number of dark addresses.
    pub fn size(&self) -> u64 {
        self.total_addrs
    }

    /// Fraction of the IPv4 space covered (≈ 1/341 for the UCSD shape).
    pub fn coverage(&self) -> f64 {
        self.total_addrs as f64 / 2f64.powi(32)
    }

    /// `1 / coverage` — the factor used to extrapolate telescope rates to
    /// the full address space (the paper's footnote 2: `21.8 kppm × 341 /
    /// 60 s ≈ 124 Kpps`).
    pub fn scale_factor(&self) -> f64 {
        1.0 / self.coverage()
    }

    /// Whether an address is inside the darknet.
    pub fn covers(&self, ip: Ipv4Addr) -> bool {
        self.trie.covers(ip)
    }

    /// The /16 subnets the darknet spans (the RSDoS feed counts how many
    /// receive backscatter).
    pub fn slash16s(&self) -> &[Slash16] {
        &self.slash16s
    }

    /// A uniformly random dark address (for synthesizing packet captures).
    pub fn random_addr<R: Rng + ?Sized>(&self, rng: &mut R) -> Ipv4Addr {
        let mut i = rng.random_range(0..self.total_addrs);
        for p in &self.prefixes {
            if i < p.size() {
                return p.nth(i);
            }
            i -= p.size();
        }
        unreachable!("index within total_addrs");
    }

    /// Expected number of distinct /16s hit by `packets` uniform packets:
    /// `n · (1 − (1 − 1/n)^k)`.
    pub fn expected_distinct_slash16s(&self, packets: u64) -> f64 {
        let n = self.slash16s.len() as f64;
        n * (1.0 - (1.0 - 1.0 / n).powf(packets as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn ucsd_coverage_is_one_in_341() {
        let d = Darknet::ucsd_like();
        // /9 = 2^23, /10 = 2^22 → 3·2^22 / 2^32 = 3/1024 ≈ 1/341.33.
        assert_eq!(d.size(), 3 * (1 << 22));
        assert!((d.scale_factor() - 341.33).abs() < 0.5, "{}", d.scale_factor());
    }

    #[test]
    fn covers_only_dark_space() {
        let d = Darknet::ucsd_like();
        assert!(d.covers("44.0.0.1".parse().unwrap()));
        assert!(d.covers("44.127.255.255".parse().unwrap()));
        assert!(!d.covers("44.128.0.0".parse().unwrap()));
        assert!(d.covers("45.128.0.1".parse().unwrap()));
        assert!(d.covers("45.191.255.255".parse().unwrap()));
        assert!(!d.covers("45.192.0.0".parse().unwrap()));
        assert!(!d.covers("8.8.8.8".parse().unwrap()));
    }

    #[test]
    fn slash16_enumeration() {
        let d = Darknet::ucsd_like();
        // /9 spans 128 /16s, /10 spans 64.
        assert_eq!(d.slash16s().len(), 192);
    }

    #[test]
    fn random_addrs_inside() {
        let d = Darknet::ucsd_like();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut seen_second = false;
        for _ in 0..2_000 {
            let a = d.random_addr(&mut rng);
            assert!(d.covers(a), "{a} escaped the darknet");
            if a.octets()[0] == 45 {
                seen_second = true;
            }
        }
        assert!(seen_second, "both prefixes get sampled");
    }

    #[test]
    fn expected_distinct_slash16s_behaviour() {
        let d = Darknet::ucsd_like();
        assert!(d.expected_distinct_slash16s(0) < 1e-9);
        assert!((d.expected_distinct_slash16s(1) - 1.0).abs() < 1e-9);
        // Large counts approach full coverage of 192 subnets.
        assert!(d.expected_distinct_slash16s(100_000) > 191.9);
        // Monotone.
        let a = d.expected_distinct_slash16s(10);
        let b = d.expected_distinct_slash16s(100);
        assert!(b > a);
    }

    #[test]
    fn custom_darknet() {
        let d = Darknet::new(vec!["192.0.2.0/24".parse().unwrap()]);
        assert_eq!(d.size(), 256);
        assert_eq!(d.slash16s().len(), 1);
        assert!(d.covers("192.0.2.200".parse().unwrap()));
    }
}
