//! Columnar (struct-of-arrays) episode table.
//!
//! The row-oriented [`AttackEpisode`](crate::rsdos::AttackEpisode) carries
//! its victim address inline; at paper scale the join touches millions of
//! episodes, so the columnar hot path works over parallel arrays instead,
//! with victims interned into a `u32` arena ([`simcore::Interner`]). The
//! arena is built in a single sequential pass over the feed, so victim ids
//! are first-come deterministic and independent of `--jobs`.

use crate::rsdos::AttackEpisode;
use attack::Protocol;
use simcore::time::Window;
use simcore::Interner;
use std::net::Ipv4Addr;

/// The episode feed as parallel arrays, one entry per episode, in feed
/// order. `victim_ids[i]` indexes the `victims` arena.
#[derive(Clone, Debug, Default)]
pub struct EpisodeColumns {
    pub victims: Interner<Ipv4Addr>,
    pub victim_ids: Vec<u32>,
    pub first_windows: Vec<Window>,
    pub last_windows: Vec<Window>,
    pub packets: Vec<u64>,
    pub peak_ppm: Vec<f64>,
    pub protocols: Vec<Protocol>,
    pub first_ports: Vec<u16>,
    pub unique_ports: Vec<u16>,
    pub slash16s: Vec<u32>,
}

impl EpisodeColumns {
    /// Transpose the row-oriented feed into columns, interning victims in
    /// feed order.
    pub fn from_episodes(episodes: &[AttackEpisode]) -> EpisodeColumns {
        let mut cols = EpisodeColumns::default();
        cols.victim_ids.reserve(episodes.len());
        cols.first_windows.reserve(episodes.len());
        cols.last_windows.reserve(episodes.len());
        cols.packets.reserve(episodes.len());
        cols.peak_ppm.reserve(episodes.len());
        cols.protocols.reserve(episodes.len());
        cols.first_ports.reserve(episodes.len());
        cols.unique_ports.reserve(episodes.len());
        cols.slash16s.reserve(episodes.len());
        for e in episodes {
            cols.push_episode(e);
        }
        cols
    }

    /// Append one episode, interning its victim. The incremental form of
    /// [`from_episodes`](EpisodeColumns::from_episodes): pushing a feed
    /// episode-by-episode yields byte-identical columns (victim ids stay
    /// first-come), which is what lets a streaming consumer grow the
    /// table without rebuilding it per batch.
    pub fn push_episode(&mut self, e: &AttackEpisode) {
        self.victim_ids.push(self.victims.intern(e.victim));
        self.first_windows.push(e.first_window);
        self.last_windows.push(e.last_window);
        self.packets.push(e.packets);
        self.peak_ppm.push(e.peak_ppm);
        self.protocols.push(e.protocol);
        self.first_ports.push(e.first_port);
        self.unique_ports.push(e.unique_ports);
        self.slash16s.push(e.slash16s);
    }

    /// Append a whole arena-backed block of episodes. Equivalent to
    /// pushing each decoded row through
    /// [`push_episode`](EpisodeColumns::push_episode) — the block is the
    /// transport form, the columns stay the analysis form.
    pub fn push_block(&mut self, block: &crate::block::EpisodeBlock) {
        for e in block.iter() {
            self.push_episode(&e);
        }
    }

    pub fn len(&self) -> usize {
        self.victim_ids.len()
    }

    pub fn is_empty(&self) -> bool {
        self.victim_ids.is_empty()
    }

    /// The victim address of episode `i`.
    pub fn victim(&self, i: usize) -> Ipv4Addr {
        *self.victims.resolve(self.victim_ids[i])
    }

    /// Reconstruct the row form of episode `i` (differential tests).
    pub fn episode(&self, i: usize) -> AttackEpisode {
        AttackEpisode {
            victim: self.victim(i),
            first_window: self.first_windows[i],
            last_window: self.last_windows[i],
            packets: self.packets[i],
            peak_ppm: self.peak_ppm[i],
            protocol: self.protocols[i],
            first_port: self.first_ports[i],
            unique_ports: self.unique_ports[i],
            slash16s: self.slash16s[i],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn episode(victim: &str, w0: u64, w1: u64) -> AttackEpisode {
        AttackEpisode {
            victim: victim.parse().unwrap(),
            first_window: Window(w0),
            last_window: Window(w1),
            packets: 1_000,
            peak_ppm: 200.0,
            protocol: Protocol::Tcp,
            first_port: 80,
            unique_ports: 1,
            slash16s: 12,
        }
    }

    #[test]
    fn transpose_round_trips_and_interns_repeat_victims() {
        let rows = vec![
            episode("10.0.0.1", 0, 2),
            episode("10.0.0.2", 5, 6),
            episode("10.0.0.1", 50, 51), // repeat victim: same arena id
        ];
        let cols = EpisodeColumns::from_episodes(&rows);
        assert_eq!(cols.len(), 3);
        assert!(!cols.is_empty());
        assert_eq!(cols.victims.len(), 2, "repeat victim shares one arena slot");
        assert_eq!(cols.victim_ids[0], cols.victim_ids[2]);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(&cols.episode(i), row, "episode {i} must round-trip");
            assert_eq!(cols.victim(i), row.victim);
        }
    }

    #[test]
    fn incremental_push_matches_bulk_transpose() {
        let rows =
            vec![episode("10.0.0.1", 0, 2), episode("10.0.0.2", 5, 6), episode("10.0.0.1", 50, 51)];
        let bulk = EpisodeColumns::from_episodes(&rows);
        let mut inc = EpisodeColumns::default();
        for r in &rows {
            inc.push_episode(r);
        }
        assert_eq!(format!("{inc:?}"), format!("{bulk:?}"), "push path is byte-identical");
    }

    #[test]
    fn block_ingest_matches_row_ingest() {
        let rows =
            vec![episode("10.0.0.1", 0, 2), episode("10.0.0.2", 5, 6), episode("10.0.0.1", 50, 51)];
        let mut block_builder = crate::block::EpisodeBlockBuilder::new();
        for r in &rows {
            block_builder.push(r);
        }
        let block = block_builder.finish();
        let mut via_block = EpisodeColumns::default();
        via_block.push_block(&block);
        let via_rows = EpisodeColumns::from_episodes(&rows);
        assert_eq!(format!("{via_block:?}"), format!("{via_rows:?}"), "block ingest diverged");
    }

    #[test]
    fn empty_feed_transposes_to_empty_columns() {
        let cols = EpisodeColumns::from_episodes(&[]);
        assert!(cols.is_empty());
        assert_eq!(cols.victims.len(), 0);
    }
}
