//! Backscatter sampling: thinning victim responses into the darknet.

use crate::darknet::Darknet;
use attack::{Attack, Protocol, VectorKind};
use rand::rngs::SmallRng;
use simcore::dist::poisson;
use simcore::rng::RngFactory;
use simcore::time::Window;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// What the telescope aggregates for one victim in one 5-minute window.
#[derive(Clone, Debug, PartialEq)]
pub struct BackscatterObs {
    pub victim: Ipv4Addr,
    pub window: Window,
    /// Backscatter packets captured in the window.
    pub packets: u64,
    /// Distinct telescope /16s that received packets.
    pub slash16s: u32,
    /// Protocol of the dominant visible vector.
    pub protocol: Protocol,
    /// First destination port observed on the victim (source port of the
    /// backscatter).
    pub first_port: u16,
    /// Distinct targeted ports observed.
    pub unique_ports: u16,
    /// Peak packet rate within the window, packets/minute (the feed's
    /// `max_ppm`; approximated as the mean ppm with Poisson spread).
    pub max_ppm: f64,
}

/// Samples backscatter observations from an attack population.
pub struct BackscatterSampler<'a> {
    pub darknet: &'a Darknet,
    /// Victims answer at most this many packets per second (a saturated
    /// host stops producing backscatter — one reason successful attacks can
    /// *shorten* inferred durations, §6.5).
    pub victim_response_cap_pps: f64,
}

impl<'a> BackscatterSampler<'a> {
    pub fn new(darknet: &'a Darknet) -> BackscatterSampler<'a> {
        BackscatterSampler { darknet, victim_response_cap_pps: 2_000_000.0 }
    }

    /// Sample the telescope's view of `attacks`. Only randomly-spoofed
    /// vectors generate backscatter toward the darknet.
    pub fn sample(&self, attacks: &[Attack], rngs: &RngFactory) -> Vec<BackscatterObs> {
        let mut out = Vec::new();
        for a in attacks {
            let mut rng = rngs.stream_indexed("backscatter", a.id.0);
            self.sample_attack(a, &mut rng, &mut out);
        }
        // Multiple attacks on the same victim in the same window merge, as
        // the real aggregation cannot tell them apart.
        merge_same_cell(out)
    }

    fn sample_attack(&self, a: &Attack, rng: &mut SmallRng, out: &mut Vec<BackscatterObs>) {
        // A NaN/infinite rate would poison the pps sum and the dominant-vector
        // comparison; such a vector cannot deliver packets, so it is simply
        // not visible.
        let visible: Vec<_> = a
            .vectors
            .iter()
            .filter(|v| v.kind == VectorKind::RandomSpoofed && v.victim_pps.is_finite())
            .collect();
        let Some(dominant) = visible.iter().max_by(|x, y| x.victim_pps.total_cmp(&y.victim_pps))
        else {
            return; // nothing spoofed → nothing reaches the telescope
        };
        let spoofed_pps: f64 = visible.iter().map(|v| v.victim_pps).sum();
        let response_pps = spoofed_pps.min(self.victim_response_cap_pps);
        let unique_ports: u16 = visible.iter().map(|v| v.ports.len() as u16).sum::<u16>().max(1);
        for (w, frac) in a.window_overlaps() {
            let mean_pkts = response_pps * frac * 300.0 * self.darknet.coverage();
            let packets = poisson(rng, mean_pkts);
            if packets == 0 {
                continue;
            }
            let slash16s = self.sample_distinct_slash16s(packets, rng);
            // Peak rate within the window: mean ppm inflated by Poisson
            // relative spread (bounded below by the mean).
            let mean_ppm = packets as f64 / (5.0 * frac.max(1e-9));
            let max_ppm = mean_ppm * (1.0 + 1.0 / (packets as f64).sqrt());
            out.push(BackscatterObs {
                victim: a.target,
                window: w,
                packets,
                slash16s,
                protocol: dominant.protocol,
                first_port: dominant.first_port(),
                unique_ports,
                max_ppm,
            });
        }
    }

    /// Distinct /16s via the exact expectation + binomial noise (cheap and
    /// accurate for both tiny and huge packet counts).
    fn sample_distinct_slash16s(&self, packets: u64, rng: &mut SmallRng) -> u32 {
        let n = self.darknet.slash16s().len() as f64;
        let expect = self.darknet.expected_distinct_slash16s(packets);
        // Variance of distinct-bins is ≤ expectation; approximate with a
        // small binomial jitter around the expectation.
        let p = (expect / n).clamp(0.0, 1.0);
        let sampled = simcore::dist::binomial(rng, n as u64, p);
        (sampled.max(1)).min(packets) as u32
    }
}

fn merge_same_cell(mut obs: Vec<BackscatterObs>) -> Vec<BackscatterObs> {
    let mut map: HashMap<(Ipv4Addr, Window), BackscatterObs> = HashMap::new();
    for o in obs.drain(..) {
        match map.entry((o.victim, o.window)) {
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(o);
            }
            std::collections::hash_map::Entry::Occupied(mut e) => {
                let m = e.get_mut();
                m.packets += o.packets;
                m.slash16s = m.slash16s.max(o.slash16s);
                m.unique_ports = m.unique_ports.saturating_add(o.unique_ports);
                m.max_ppm += o.max_ppm;
                // Keep the dominant vector's protocol/first-port (larger
                // packet count wins; the merge keeps the existing one when
                // it is at least as large).
                if o.packets > m.packets / 2 {
                    // o contributed the majority of the merged packets.
                }
            }
        }
    }
    let mut out: Vec<BackscatterObs> = map.into_values().collect();
    out.sort_by_key(|o| (o.window, u32::from(o.victim)));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack::{AttackId, VectorSpec};
    use simcore::time::{SimDuration, SimTime};

    fn spoofed_attack(pps: f64, mins: u64) -> Attack {
        Attack {
            id: AttackId(1),
            target: "203.0.113.5".parse().unwrap(),
            start: SimTime(0),
            duration: SimDuration::from_mins(mins),
            vectors: vec![VectorSpec {
                kind: VectorKind::RandomSpoofed,
                protocol: Protocol::Tcp,
                ports: vec![53],
                victim_pps: pps,
                source_count: 1_000,
            }],
        }
    }

    #[test]
    fn sampling_rate_matches_coverage() {
        let d = Darknet::ucsd_like();
        let s = BackscatterSampler::new(&d);
        // 124 kpps victim-side (TransIP December) → ≈21.8 kppm telescope.
        let obs = s.sample(&[spoofed_attack(124_000.0, 60)], &RngFactory::new(1));
        assert_eq!(obs.len(), 12, "every window observed at this rate");
        let mean_ppm: f64 =
            obs.iter().map(|o| o.packets as f64 / 5.0).sum::<f64>() / obs.len() as f64;
        assert!(
            (mean_ppm - 21_800.0).abs() / 21_800.0 < 0.05,
            "telescope ppm {mean_ppm} vs expected ≈21800"
        );
    }

    #[test]
    fn invisible_attack_produces_nothing() {
        let d = Darknet::ucsd_like();
        let s = BackscatterSampler::new(&d);
        let mut a = spoofed_attack(1_000_000.0, 60);
        a.vectors[0].kind = VectorKind::Reflection;
        assert!(s.sample(&[a], &RngFactory::new(1)).is_empty());
    }

    #[test]
    fn tiny_attack_often_missed() {
        let d = Darknet::ucsd_like();
        let s = BackscatterSampler::new(&d);
        // 1 pps → expected 0.88 packets/window: many windows empty.
        let obs = s.sample(&[spoofed_attack(1.0, 60)], &RngFactory::new(2));
        assert!(obs.len() < 12, "sub-threshold attacks are partially invisible");
    }

    #[test]
    fn response_cap_limits_backscatter() {
        let d = Darknet::ucsd_like();
        let mut s = BackscatterSampler::new(&d);
        s.victim_response_cap_pps = 10_000.0;
        let obs = s.sample(&[spoofed_attack(10_000_000.0, 30)], &RngFactory::new(3));
        let mean_ppm: f64 =
            obs.iter().map(|o| o.packets as f64 / 5.0).sum::<f64>() / obs.len() as f64;
        let expect = 10_000.0 * 60.0 * d.coverage();
        assert!((mean_ppm - expect).abs() / expect < 0.1, "{mean_ppm} vs {expect}");
    }

    #[test]
    fn slash16s_grow_with_rate() {
        let d = Darknet::ucsd_like();
        let s = BackscatterSampler::new(&d);
        let small = s.sample(&[spoofed_attack(300.0, 60)], &RngFactory::new(4));
        let big = s.sample(&[spoofed_attack(500_000.0, 60)], &RngFactory::new(4));
        let avg16 = |v: &[BackscatterObs]| {
            v.iter().map(|o| o.slash16s as f64).sum::<f64>() / v.len() as f64
        };
        assert!(avg16(&big) > avg16(&small));
        assert!(avg16(&big) > 150.0, "large attacks light up most /16s: {}", avg16(&big));
        for o in big.iter().chain(&small) {
            assert!(o.slash16s >= 1 && o.slash16s as usize <= d.slash16s().len());
        }
    }

    #[test]
    fn same_victim_same_window_merges() {
        let d = Darknet::ucsd_like();
        let s = BackscatterSampler::new(&d);
        let a1 = spoofed_attack(50_000.0, 10);
        let mut a2 = spoofed_attack(50_000.0, 10);
        a2.id = AttackId(2);
        let obs = s.sample(&[a1, a2], &RngFactory::new(5));
        // Two attacks, same victim, same 2 windows → 2 merged cells.
        assert_eq!(obs.len(), 2);
        // Merged packet counts are roughly double a single attack's.
        let single = s.sample(&[spoofed_attack(50_000.0, 10)], &RngFactory::new(5));
        assert!(obs[0].packets > single[0].packets * 3 / 2);
    }

    #[test]
    fn nan_rate_vector_never_aborts_sampling() {
        let d = Darknet::ucsd_like();
        let s = BackscatterSampler::new(&d);
        // One poisoned vector plus one healthy one: the healthy vector must
        // still be sampled (previously the NaN comparison aborted).
        let mut a = spoofed_attack(50_000.0, 30);
        a.vectors.push(VectorSpec {
            kind: VectorKind::RandomSpoofed,
            protocol: Protocol::Udp,
            ports: vec![123],
            victim_pps: f64::NAN,
            source_count: 10,
        });
        let obs = s.sample(&[a], &RngFactory::new(6));
        assert!(!obs.is_empty(), "healthy vector still observed");
        assert!(obs.iter().all(|o| o.packets > 0 && o.max_ppm.is_finite()));
        // An attack whose only vector is poisoned is invisible, not fatal.
        let mut lone = spoofed_attack(1.0, 10);
        lone.vectors[0].victim_pps = f64::NAN;
        assert!(s.sample(&[lone], &RngFactory::new(6)).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let d = Darknet::ucsd_like();
        let s = BackscatterSampler::new(&d);
        let a = vec![spoofed_attack(10_000.0, 30)];
        assert_eq!(s.sample(&a, &RngFactory::new(9)), s.sample(&a, &RngFactory::new(9)));
    }
}
