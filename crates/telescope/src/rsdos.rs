//! RSDoS inference: thresholds over backscatter observations, and episode
//! (attack) extraction.
//!
//! Follows the Moore et al. backscatter methodology the CAIDA feed uses:
//! a victim qualifies as "under randomly-spoofed attack" in a window only
//! if the backscatter is strong and spread enough to rule out scanning
//! noise and misconfiguration. Consecutive qualifying windows (with a small
//! gap tolerance) form one *attack episode* — the unit Table 1 and Table 3
//! count.

use crate::backscatter::BackscatterObs;
use crate::block::{RecordBlock, RecordBlockBuilder};
use crate::feed::RsdosRecord;
use attack::Protocol;
use simcore::time::{SimDuration, Window};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Classifier thresholds (defaults follow the conservative Moore-style
/// criteria).
#[derive(Clone, Copy, Debug)]
pub struct RsdosThresholds {
    /// Minimum backscatter packets in a 5-minute window.
    pub min_packets: u64,
    /// Minimum distinct telescope /16s reached (uniform spoofing sprays
    /// widely; scans and misconfigurations don't).
    pub min_slash16s: u32,
    /// Maximum number of silent windows bridged inside one episode.
    pub max_gap_windows: u64,
}

impl Default for RsdosThresholds {
    fn default() -> RsdosThresholds {
        RsdosThresholds { min_packets: 25, min_slash16s: 2, max_gap_windows: 1 }
    }
}

/// An inferred attack: a maximal run of qualifying windows for one victim.
#[derive(Clone, Debug, PartialEq)]
pub struct AttackEpisode {
    pub victim: Ipv4Addr,
    pub first_window: Window,
    pub last_window: Window,
    /// Total backscatter packets over the episode.
    pub packets: u64,
    /// Peak per-window `max_ppm`.
    pub peak_ppm: f64,
    /// Dominant protocol over the episode.
    pub protocol: Protocol,
    /// First port of the first qualifying window.
    pub first_port: u16,
    /// Max distinct ports seen in any window.
    pub unique_ports: u16,
    /// Max distinct /16s seen in any window.
    pub slash16s: u32,
}

impl AttackEpisode {
    /// Inferred duration: number of windows × 5 minutes.
    pub fn duration(&self) -> SimDuration {
        SimDuration::from_secs((self.last_window.0 - self.first_window.0 + 1) * 300)
    }

    /// Whether the episode overlaps `w`.
    pub fn covers_window(&self, w: Window) -> bool {
        w >= self.first_window && w <= self.last_window
    }
}

/// The classifier.
#[derive(Clone, Debug, Default)]
pub struct RsdosClassifier {
    pub thresholds: RsdosThresholds,
}

impl RsdosClassifier {
    pub fn new(thresholds: RsdosThresholds) -> RsdosClassifier {
        RsdosClassifier { thresholds }
    }

    /// Filter observations into qualifying feed records.
    pub fn classify(&self, obs: &[BackscatterObs]) -> Vec<RsdosRecord> {
        obs.iter()
            .filter(|o| {
                o.packets >= self.thresholds.min_packets
                    && o.slash16s >= self.thresholds.min_slash16s
            })
            .map(RsdosRecord::from_obs)
            .collect()
    }

    /// Classify observations straight into an arena-backed block: the
    /// same filter as [`classify`](RsdosClassifier::classify), but
    /// qualifying records are packed into one shared buffer instead of a
    /// `Vec` of row structs. Block-fed and row-fed paths are held
    /// identical by the differential tests below.
    pub fn classify_into_block(&self, obs: &[BackscatterObs]) -> RecordBlock {
        let mut b = RecordBlockBuilder::new();
        for o in obs {
            if o.packets >= self.thresholds.min_packets
                && o.slash16s >= self.thresholds.min_slash16s
            {
                b.push(&RsdosRecord::from_obs(o));
            }
        }
        b.finish()
    }

    /// Group qualifying records into per-victim episodes.
    pub fn episodes(&self, records: &[RsdosRecord]) -> Vec<AttackEpisode> {
        self.episodes_from_rows(records.iter().cloned())
    }

    /// Episode extraction over an arena-backed block — rows decode on the
    /// fly out of the shared buffer; output is identical to
    /// [`episodes`](RsdosClassifier::episodes) over the same rows.
    pub fn episodes_from_block(&self, block: &RecordBlock) -> Vec<AttackEpisode> {
        self.episodes_from_rows(block.iter())
    }

    fn episodes_from_rows<I: Iterator<Item = RsdosRecord>>(&self, rows: I) -> Vec<AttackEpisode> {
        let mut per_victim: HashMap<Ipv4Addr, Vec<RsdosRecord>> = HashMap::new();
        for r in rows {
            per_victim.entry(r.victim).or_default().push(r);
        }
        let mut out = Vec::new();
        for (victim, mut recs) in per_victim {
            recs.sort_by_key(|r| r.window);
            let mut current: Option<AttackEpisode> = None;
            for r in recs {
                match current.as_mut() {
                    Some(ep)
                        if r.window.0 - ep.last_window.0 <= self.thresholds.max_gap_windows + 1 =>
                    {
                        ep.last_window = r.window;
                        ep.packets += r.packets;
                        ep.peak_ppm = ep.peak_ppm.max(r.max_ppm);
                        ep.unique_ports = ep.unique_ports.max(r.unique_ports);
                        ep.slash16s = ep.slash16s.max(r.slash16s);
                    }
                    _ => {
                        if let Some(done) = current.take() {
                            out.push(done);
                        }
                        current = Some(AttackEpisode {
                            victim,
                            first_window: r.window,
                            last_window: r.window,
                            packets: r.packets,
                            peak_ppm: r.max_ppm,
                            protocol: r.protocol,
                            first_port: r.first_port,
                            unique_ports: r.unique_ports,
                            slash16s: r.slash16s,
                        });
                    }
                }
            }
            if let Some(done) = current.take() {
                out.push(done);
            }
        }
        out.sort_by_key(|e| (e.first_window, u32::from(e.victim)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(victim: &str, w: u64, packets: u64, slash16s: u32) -> BackscatterObs {
        BackscatterObs {
            victim: victim.parse().unwrap(),
            window: Window(w),
            packets,
            slash16s,
            protocol: Protocol::Tcp,
            first_port: 53,
            unique_ports: 1,
            max_ppm: packets as f64 / 5.0,
        }
    }

    #[test]
    fn thresholds_filter_noise() {
        let c = RsdosClassifier::default();
        let records = c.classify(&[
            obs("1.1.1.1", 0, 24, 10), // too few packets
            obs("2.2.2.2", 0, 25, 1),  // too concentrated
            obs("3.3.3.3", 0, 25, 2),  // qualifies exactly
            obs("4.4.4.4", 0, 10_000, 150),
        ]);
        assert_eq!(records.len(), 2);
        assert_eq!(records[0].victim, "3.3.3.3".parse::<Ipv4Addr>().unwrap());
    }

    #[test]
    fn consecutive_windows_form_one_episode() {
        let c = RsdosClassifier::default();
        let records = c.classify(&[
            obs("9.9.9.9", 10, 100, 5),
            obs("9.9.9.9", 11, 200, 8),
            obs("9.9.9.9", 12, 150, 6),
        ]);
        let eps = c.episodes(&records);
        assert_eq!(eps.len(), 1);
        let e = &eps[0];
        assert_eq!(e.first_window, Window(10));
        assert_eq!(e.last_window, Window(12));
        assert_eq!(e.packets, 450);
        assert_eq!(e.duration(), SimDuration::from_mins(15));
        assert!((e.peak_ppm - 40.0).abs() < 1e-9);
        assert!(e.covers_window(Window(11)));
        assert!(!e.covers_window(Window(13)));
    }

    #[test]
    fn single_gap_bridged_double_gap_splits() {
        let c = RsdosClassifier::default();
        let records = c.classify(&[
            obs("9.9.9.9", 10, 100, 5),
            obs("9.9.9.9", 12, 100, 5), // one silent window bridged
            obs("9.9.9.9", 15, 100, 5), // two silent windows: new episode
        ]);
        let eps = c.episodes(&records);
        assert_eq!(eps.len(), 2);
        assert_eq!(eps[0].last_window, Window(12));
        assert_eq!(eps[1].first_window, Window(15));
    }

    #[test]
    fn distinct_victims_distinct_episodes() {
        let c = RsdosClassifier::default();
        let records = c.classify(&[obs("1.1.1.1", 5, 100, 5), obs("2.2.2.2", 5, 100, 5)]);
        let eps = c.episodes(&records);
        assert_eq!(eps.len(), 2);
    }

    #[test]
    fn custom_thresholds() {
        let c = RsdosClassifier::new(RsdosThresholds {
            min_packets: 1,
            min_slash16s: 1,
            max_gap_windows: 0,
        });
        let records = c.classify(&[obs("1.1.1.1", 0, 1, 1)]);
        assert_eq!(records.len(), 1);
        // Zero gap tolerance: windows 0 and 2 split.
        let recs = c.classify(&[obs("1.1.1.1", 0, 5, 1), obs("1.1.1.1", 2, 5, 1)]);
        assert_eq!(c.episodes(&recs).len(), 2);
    }

    #[test]
    fn episode_duration_single_window() {
        let c = RsdosClassifier::default();
        let recs = c.classify(&[obs("1.1.1.1", 7, 100, 5)]);
        let eps = c.episodes(&recs);
        assert_eq!(eps[0].duration(), SimDuration::from_mins(5));
    }

    #[test]
    fn block_path_matches_row_path() {
        let c = RsdosClassifier::default();
        let observations = vec![
            obs("1.1.1.1", 0, 24, 10), // filtered
            obs("9.9.9.9", 10, 100, 5),
            obs("9.9.9.9", 11, 200, 8),
            obs("9.9.9.9", 14, 150, 6), // gap splits
            obs("2.2.2.2", 10, 500, 9),
        ];
        let records = c.classify(&observations);
        let block = c.classify_into_block(&observations);
        assert_eq!(block.iter().collect::<Vec<_>>(), records, "classification differs");
        assert_eq!(c.episodes_from_block(&block), c.episodes(&records), "episodes differ");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    fn arb_obs() -> impl Strategy<Value = BackscatterObs> {
        // Small victim/window pools force collisions: multi-window
        // episodes, gap bridging, and same-window multi-victim cases.
        (0u32..6, 0u64..12, 0u64..80, 0u32..6, 0u8..3, any::<u16>(), 1u16..5).prop_map(
            |(v, w, packets, slash16s, proto, first_port, unique_ports)| BackscatterObs {
                victim: Ipv4Addr::from(0x0A00_0000 | v),
                window: Window(w),
                packets,
                slash16s,
                protocol: [Protocol::Tcp, Protocol::Udp, Protocol::Icmp][proto as usize],
                first_port,
                unique_ports,
                max_ppm: packets as f64 / 5.0,
            },
        )
    }

    proptest! {
        /// classify→block→episodes ≡ classify→rows→episodes on arbitrary
        /// observation mixes: the arena path may never change the feed.
        #[test]
        fn block_and_row_paths_agree(observations in prop::collection::vec(arb_obs(), 0..60)) {
            let c = RsdosClassifier::new(RsdosThresholds {
                min_packets: 10,
                min_slash16s: 2,
                max_gap_windows: 1,
            });
            let records = c.classify(&observations);
            let block = c.classify_into_block(&observations);
            prop_assert_eq!(block.len(), records.len());
            prop_assert_eq!(block.iter().collect::<Vec<_>>(), records.clone());
            prop_assert_eq!(c.episodes_from_block(&block), c.episodes(&records));
        }
    }
}
