//! An AmpPot-style honeypot sensor (Krämer et al., cited in §7): the
//! complementary view to the darknet.
//!
//! Reflection attacks never produce darknet backscatter (§2.1) — they are
//! observed instead by *honeypot amplifiers* that attackers unknowingly
//! recruit. §4.3 cites Jonker et al.'s two-year comparison: ≈60% of
//! attacks appeared in RSDoS data, ≈40% in AmpPot data. This module lets
//! the workspace reproduce that two-sensor coverage analysis over one
//! synthetic attack population.

use attack::{Attack, VectorKind};
use rand::Rng;
use simcore::rng::RngFactory;
use simcore::time::Window;
use std::net::Ipv4Addr;

/// One reflection attack as the honeypot fleet reconstructs it.
#[derive(Clone, Debug, PartialEq)]
pub struct AmpPotEvent {
    pub victim: Ipv4Addr,
    pub first_window: Window,
    pub last_window: Window,
    /// Honeypots (of the fleet) this attack recruited.
    pub honeypots_hit: u32,
}

/// The honeypot fleet.
#[derive(Clone, Copy, Debug)]
pub struct AmpPotSensor {
    /// Deployed honeypot amplifiers.
    pub honeypots: u32,
    /// Size of the open-amplifier population attackers scan and draw
    /// reflectors from.
    pub amplifier_population: u32,
}

impl AmpPotSensor {
    /// Krämer et al. operated ~21 AmpPot instances. The *effective*
    /// amplifier population attackers draw from is far smaller than the
    /// raw open-resolver count — scanners preferentially recruit
    /// well-behaved, high-amplification reflectors, which is exactly what
    /// the honeypots impersonate.
    pub fn paper_like() -> AmpPotSensor {
        AmpPotSensor { honeypots: 21, amplifier_population: 200_000 }
    }

    /// Probability an attack recruiting `reflectors` amplifiers hits at
    /// least one honeypot: `1 − (1 − h/N)^reflectors`.
    pub fn detection_probability(&self, reflectors: u64) -> f64 {
        let p_miss_one = 1.0 - self.honeypots as f64 / self.amplifier_population as f64;
        1.0 - p_miss_one.powf(reflectors as f64)
    }

    /// Observe an attack population: every attack with a reflection vector
    /// is detected with the recruitment-dependent probability.
    pub fn observe(&self, attacks: &[Attack], rngs: &RngFactory) -> Vec<AmpPotEvent> {
        let mut out = Vec::new();
        for a in attacks {
            let reflectors: u64 = a
                .vectors
                .iter()
                .filter(|v| v.kind == VectorKind::Reflection)
                .map(|v| v.source_count)
                .sum();
            if reflectors == 0 {
                continue;
            }
            let mut rng = rngs.stream_indexed("amppot", a.id.0);
            let p = self.detection_probability(reflectors);
            if rng.random::<f64>() >= p {
                continue;
            }
            let windows = a.window_overlaps();
            let (Some(first), Some(last)) = (windows.first(), windows.last()) else {
                continue;
            };
            // Expected honeypots recruited, at least one (we detected it).
            let expect = (reflectors as f64 * self.honeypots as f64
                / self.amplifier_population as f64)
                .round() as u32;
            out.push(AmpPotEvent {
                victim: a.target,
                first_window: first.0,
                last_window: last.0,
                honeypots_hit: expect.max(1),
            });
        }
        out.sort_by_key(|e| (e.first_window, u32::from(e.victim)));
        out
    }
}

/// Two-sensor coverage of an attack population (the Jonker et al. §4.3
/// comparison): which attacks each sensor saw.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct SensorCoverage {
    pub total: usize,
    pub telescope_only: usize,
    pub amppot_only: usize,
    pub both: usize,
    pub neither: usize,
}

impl SensorCoverage {
    /// Share of *observed* attacks seen by the telescope (Jonker et al.:
    /// ≈60%) vs the honeypots (≈40%), counting dual observations in both.
    pub fn telescope_share(&self) -> f64 {
        let seen = self.total - self.neither;
        if seen == 0 {
            return 0.0;
        }
        (self.telescope_only + self.both) as f64 / seen as f64
    }
}

/// Classify every attack by which sensor(s) would observe it. Telescope
/// observation uses visibility (a spoofed vector) as ground truth;
/// honeypot observation uses `sensor`'s detection model.
pub fn coverage(attacks: &[Attack], sensor: &AmpPotSensor, rngs: &RngFactory) -> SensorCoverage {
    let amppot_victims: std::collections::HashSet<(Ipv4Addr, Window)> =
        sensor.observe(attacks, rngs).into_iter().map(|e| (e.victim, e.first_window)).collect();
    let mut cov = SensorCoverage { total: attacks.len(), ..SensorCoverage::default() };
    for a in attacks {
        let scope = a.telescope_visible();
        let amp = a
            .window_overlaps()
            .first()
            .is_some_and(|(w, _)| amppot_victims.contains(&(a.target, *w)));
        match (scope, amp) {
            (true, true) => cov.both += 1,
            (true, false) => cov.telescope_only += 1,
            (false, true) => cov.amppot_only += 1,
            (false, false) => cov.neither += 1,
        }
    }
    cov
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack::{AttackId, Protocol, ScheduleConfig, TargetPool, VectorSpec};
    use simcore::time::{SimDuration, SimTime};

    fn reflection_attack(id: u64, reflectors: u64) -> Attack {
        Attack {
            id: AttackId(id),
            target: "203.0.113.9".parse().unwrap(),
            start: SimTime::from_days(1),
            duration: SimDuration::from_mins(30),
            vectors: vec![VectorSpec {
                kind: VectorKind::Reflection,
                protocol: Protocol::Udp,
                ports: vec![53],
                victim_pps: 100_000.0,
                source_count: reflectors,
            }],
        }
    }

    #[test]
    fn detection_probability_grows_with_recruitment() {
        let s = AmpPotSensor::paper_like();
        assert!(s.detection_probability(0) == 0.0);
        let small = s.detection_probability(100);
        let big = s.detection_probability(500_000);
        assert!(small < 0.05, "tiny attacks usually missed: {small}");
        assert!(big > 0.99, "big recruitment ≈ certain detection: {big}");
        assert!(small < big);
    }

    #[test]
    fn observe_only_reflection_attacks() {
        let s = AmpPotSensor::paper_like();
        let rngs = RngFactory::new(1);
        let mut spoofed = reflection_attack(0, 1_000_000);
        spoofed.vectors[0].kind = VectorKind::RandomSpoofed;
        let events = s.observe(&[spoofed, reflection_attack(1, 1_000_000)], &rngs);
        assert_eq!(events.len(), 1);
        assert!(events[0].honeypots_hit >= 1);
        assert_eq!(events[0].first_window, SimTime::from_days(1).window());
    }

    #[test]
    fn coverage_split_matches_jonker_structure() {
        // Build a population straight from the calibrated generator and
        // check the two-sensor decomposition is sane: the telescope sees
        // the spoofed (visible) attacks, AmpPot sees reflection vectors,
        // multi-vector attacks land in `both`.
        let rngs = RngFactory::new(3);
        let months = simcore::time::Month::new(2021, 1).through(simcore::time::Month::new(2021, 1));
        let cfg = ScheduleConfig {
            attacks_per_month: vec![4_000],
            dns_share_per_month: vec![0.0],
            months,
            ..ScheduleConfig::default()
        };
        let attacks =
            attack::AttackScheduler::new(cfg).generate(&TargetPool::uniform(vec![], vec![]), &rngs);
        let cov = coverage(&attacks, &AmpPotSensor::paper_like(), &rngs);
        assert_eq!(cov.total, cov.telescope_only + cov.amppot_only + cov.both + cov.neither);
        // ~90% of attacks carry a spoofed vector.
        let visible = cov.telescope_only + cov.both;
        assert!(
            (visible as f64 / cov.total as f64 - 0.90).abs() < 0.02,
            "visible share {}",
            visible as f64 / cov.total as f64
        );
        // Reflection-only attacks exist and are (mostly) AmpPot's alone.
        assert!(cov.amppot_only > 0);
        // The telescope dominates overall, as in Jonker et al.
        let share = cov.telescope_share();
        assert!((0.5..0.98).contains(&share), "telescope share {share}");
    }

    #[test]
    fn deterministic_observation() {
        let s = AmpPotSensor::paper_like();
        let attacks = vec![reflection_attack(0, 40_000), reflection_attack(1, 40_000)];
        let a = s.observe(&attacks, &RngFactory::new(9));
        let b = s.observe(&attacks, &RngFactory::new(9));
        assert_eq!(a, b);
    }
}
