//! Seeded telescope-feed gap model.
//!
//! The UCSD telescope's RSDoS feed has outage windows: the collector goes
//! down for minutes-to-hours and either loses records outright or delivers
//! the backlog late, once it recovers. This module produces a deterministic
//! gap schedule so downstream consumers (the reactive platform above all)
//! can be exercised against realistic degraded feeds: records inside a gap
//! are delayed until the gap closes, and a configurable fraction of them is
//! lost entirely.
//!
//! All decisions are pure functions of `(seed, window)` — reproducible, and
//! independent of thread count.

use crate::feed::RsdosRecord;
use simcore::rng::{hash_label, splitmix64, RngFactory};
use simcore::time::{SimTime, Window, WINDOWS_PER_DAY};

/// A deterministic schedule of feed gaps: at most one gap per day-block.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FeedGapModel {
    seed: u64,
    /// Probability that a given day contains a feed gap.
    pub gap_prob: f64,
    /// Longest gap, in 5-minute windows.
    pub max_gap_windows: u32,
    /// Fraction of in-gap records lost outright (the rest arrive late,
    /// when the collector recovers).
    pub loss_frac: f64,
}

impl FeedGapModel {
    pub fn new(
        rngs: &RngFactory,
        gap_prob: f64,
        max_gap_windows: u32,
        loss_frac: f64,
    ) -> FeedGapModel {
        FeedGapModel { seed: rngs.fork("feed-gap").seed(), gap_prob, max_gap_windows, loss_frac }
    }

    pub fn from_seed(
        seed: u64,
        gap_prob: f64,
        max_gap_windows: u32,
        loss_frac: f64,
    ) -> FeedGapModel {
        FeedGapModel::new(&RngFactory::new(seed), gap_prob, max_gap_windows, loss_frac)
    }

    fn unit(&self, tag: &str, a: u64) -> f64 {
        let mut s = self.seed ^ hash_label(tag) ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The gap on `day`, as a window range `[start, end)`, if any.
    fn day_gap(&self, day: u64) -> Option<(u64, u64)> {
        if self.max_gap_windows == 0 || self.unit("gap?", day) >= self.gap_prob {
            return None;
        }
        let len = 1 + (self.unit("gap-len", day) * self.max_gap_windows as f64) as u64;
        let offset = (self.unit("gap-off", day) * WINDOWS_PER_DAY as f64) as u64;
        let start = day * WINDOWS_PER_DAY + offset.min(WINDOWS_PER_DAY - 1);
        Some((start, start + len))
    }

    /// Is window `w` inside a feed gap?
    pub fn in_gap(&self, w: Window) -> bool {
        // A gap can spill past its day's end, so check this day and the
        // previous one.
        let day = w.day();
        for d in day.saturating_sub(1)..=day {
            if let Some((start, end)) = self.day_gap(d) {
                if (start..end).contains(&w.0) {
                    return true;
                }
            }
        }
        false
    }

    /// When a record generated in window `w` actually reaches consumers:
    /// the window's close normally, or the end of the surrounding gap when
    /// the collector was down (backlog delivery).
    pub fn arrival_of(&self, w: Window) -> SimTime {
        let day = w.day();
        for d in day.saturating_sub(1)..=day {
            if let Some((start, end)) = self.day_gap(d) {
                if (start..end).contains(&w.0) {
                    return Window(end).start();
                }
            }
        }
        w.end()
    }

    /// Is this record lost outright (rather than merely delayed)?
    pub fn record_lost(&self, r: &RsdosRecord) -> bool {
        self.in_gap(r.window)
            && self.unit("lost?", r.window.0 ^ u64::from(u32::from(r.victim)).rotate_left(32))
                < self.loss_frac
    }

    /// Apply the model to a feed: returns `(record, arrival time)` pairs for
    /// the surviving records (ordered by arrival, then feed order) and the
    /// count of records lost to gaps.
    pub fn apply(&self, records: &[RsdosRecord]) -> (Vec<(RsdosRecord, SimTime)>, u64) {
        let mut lost = 0u64;
        let mut late = 0u64;
        let mut gap_windows = 0u64;
        let mut out: Vec<(RsdosRecord, SimTime)> = Vec::with_capacity(records.len());
        for r in records {
            if self.record_lost(r) {
                lost += 1;
                continue;
            }
            let arrival = self.arrival_of(r.window);
            if arrival > r.window.end() {
                late += 1;
                // Delay from window close to backlog delivery, in whole
                // 5-minute windows.
                gap_windows += (arrival.secs() - r.window.end().secs()) / 300;
            }
            out.push((r.clone(), arrival));
        }
        // Out-of-band accounting (see `obs`): pure function of (seed, feed),
        // so these are deterministic for a fixed experiment.
        obs::counter("feedgap.records_lost").add(lost);
        obs::counter("feedgap.records_late").add(late);
        obs::counter("feedgap.gap_minutes").add(gap_windows * 5);
        // Stable by arrival: late backlog records slot in after the on-time
        // records that precede the gap's close.
        out.sort_by_key(|(_, at)| *at);
        (out, lost)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use attack::Protocol;
    use std::net::Ipv4Addr;

    fn rec(window: u64) -> RsdosRecord {
        RsdosRecord {
            window: Window(window),
            victim: Ipv4Addr::new(203, 0, 113, 7),
            slash16s: 10,
            protocol: Protocol::Tcp,
            first_port: 53,
            unique_ports: 1,
            max_ppm: 1000.0,
            packets: 5000,
        }
    }

    fn model(gap_prob: f64) -> FeedGapModel {
        FeedGapModel::from_seed(13, gap_prob, 24, 0.25)
    }

    #[test]
    fn schedule_is_deterministic_and_seed_sensitive() {
        let a = model(0.5);
        let b = model(0.5);
        let windows: Vec<bool> = (0..5000).map(|w| a.in_gap(Window(w))).collect();
        assert_eq!(windows, (0..5000).map(|w| b.in_gap(Window(w))).collect::<Vec<_>>());
        let c = FeedGapModel::from_seed(14, 0.5, 24, 0.25);
        assert_ne!(windows, (0..5000).map(|w| c.in_gap(Window(w))).collect::<Vec<_>>());
        assert!(windows.iter().any(|g| *g), "gaps exist at 50% day probability");
        assert!(windows.iter().any(|g| !*g), "feed is not all gap");
    }

    #[test]
    fn gapless_model_changes_nothing() {
        let m = model(0.0);
        let feed: Vec<RsdosRecord> = (0..100).map(rec).collect();
        let (out, lost) = m.apply(&feed);
        assert_eq!(lost, 0);
        assert_eq!(out.len(), 100);
        for (r, at) in &out {
            assert_eq!(*at, r.window.end(), "on-time arrival at window close");
        }
    }

    #[test]
    fn in_gap_records_arrive_late_or_die() {
        let m = model(1.0);
        let feed: Vec<RsdosRecord> = (0..2000).map(rec).collect();
        let (out, lost) = m.apply(&feed);
        assert!(lost > 0, "some in-gap records lost at loss_frac 0.25");
        assert_eq!(out.len() + lost as usize, feed.len());
        let late = out.iter().filter(|(r, at)| *at > r.window.end()).count();
        assert!(late > 0, "surviving in-gap records are delayed");
        for (r, at) in &out {
            assert!(*at >= r.window.end(), "arrival never precedes the window close");
            if m.in_gap(r.window) {
                assert!(!m.record_lost(r));
            }
        }
        // Arrival order is monotone.
        assert!(out.windows(2).all(|p| p[0].1 <= p[1].1));
    }
}
