//! Arena-backed feed-record blocks.
//!
//! The row path moves `Vec<RsdosRecord>` / `Vec<AttackEpisode>` through
//! the pipeline — one heap object per record, cloned per topic subscriber.
//! A block packs many records into one contiguous, refcounted byte arena
//! ([`bytes::Bytes`]): building appends fixed-width big-endian rows into a
//! [`bytes::BytesMut`], freezing makes the block immutable, and every
//! clone afterwards (topic fan-out, daemon ingest, columnar append) is a
//! refcount bump on the same arena. Rows decode on the fly during
//! iteration; the row structs stay the differential reference — a block
//! round-trips to exactly the rows it was built from, and the block-fed
//! classifier/columnar paths are locked against the row-fed ones by the
//! tests below and in `rsdos.rs`/`columns.rs`.

use crate::rsdos::AttackEpisode;
use crate::RsdosRecord;
use attack::Protocol;
use bytes::{Bytes, BytesMut};
use simcore::time::Window;
use std::net::Ipv4Addr;

/// Packed size of one [`RsdosRecord`] row.
pub const RECORD_ROW_BYTES: usize = 37;
/// Packed size of one [`AttackEpisode`] row.
pub const EPISODE_ROW_BYTES: usize = 45;

fn protocol_from_number(n: u8) -> Protocol {
    match n {
        1 => Protocol::Icmp,
        6 => Protocol::Tcp,
        17 => Protocol::Udp,
        other => panic!("corrupt block: unknown protocol number {other}"),
    }
}

fn u16_at(b: &[u8], i: usize) -> u16 {
    u16::from_be_bytes([b[i], b[i + 1]])
}

fn u32_at(b: &[u8], i: usize) -> u32 {
    u32::from_be_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]])
}

fn u64_at(b: &[u8], i: usize) -> u64 {
    u64::from_be_bytes([b[i], b[i + 1], b[i + 2], b[i + 3], b[i + 4], b[i + 5], b[i + 6], b[i + 7]])
}

fn decode_record_row(row: &[u8]) -> RsdosRecord {
    RsdosRecord {
        window: Window(u64_at(row, 0)),
        victim: Ipv4Addr::from(u32_at(row, 8)),
        slash16s: u32_at(row, 12),
        protocol: protocol_from_number(row[16]),
        first_port: u16_at(row, 17),
        unique_ports: u16_at(row, 19),
        max_ppm: f64::from_bits(u64_at(row, 21)),
        packets: u64_at(row, 29),
    }
}

fn decode_episode_row(row: &[u8]) -> AttackEpisode {
    AttackEpisode {
        victim: Ipv4Addr::from(u32_at(row, 0)),
        first_window: Window(u64_at(row, 4)),
        last_window: Window(u64_at(row, 12)),
        packets: u64_at(row, 20),
        peak_ppm: f64::from_bits(u64_at(row, 28)),
        protocol: protocol_from_number(row[36]),
        first_port: u16_at(row, 37),
        unique_ports: u16_at(row, 39),
        slash16s: u32_at(row, 41),
    }
}

/// Builder accumulating [`RsdosRecord`]s into one arena.
#[derive(Default)]
pub struct RecordBlockBuilder {
    arena: BytesMut,
    len: usize,
}

impl RecordBlockBuilder {
    pub fn new() -> RecordBlockBuilder {
        RecordBlockBuilder::default()
    }

    pub fn with_capacity(records: usize) -> RecordBlockBuilder {
        RecordBlockBuilder { arena: BytesMut::with_capacity(records * RECORD_ROW_BYTES), len: 0 }
    }

    pub fn push(&mut self, r: &RsdosRecord) {
        // One stack-assembled row, one arena append: the per-field
        // append calls were the packing hot spot at feed scale.
        let mut row = [0u8; RECORD_ROW_BYTES];
        row[0..8].copy_from_slice(&r.window.0.to_be_bytes());
        row[8..12].copy_from_slice(&u32::from(r.victim).to_be_bytes());
        row[12..16].copy_from_slice(&r.slash16s.to_be_bytes());
        row[16] = r.protocol.number();
        row[17..19].copy_from_slice(&r.first_port.to_be_bytes());
        row[19..21].copy_from_slice(&r.unique_ports.to_be_bytes());
        row[21..29].copy_from_slice(&r.max_ppm.to_bits().to_be_bytes());
        row[29..37].copy_from_slice(&r.packets.to_be_bytes());
        self.arena.extend_from_slice(&row);
        self.len += 1;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Freeze into an immutable, cheap-to-clone block.
    pub fn finish(self) -> RecordBlock {
        RecordBlock { arena: self.arena.freeze(), len: self.len }
    }
}

/// An immutable batch of [`RsdosRecord`]s in one shared arena. `Clone` is
/// a refcount bump; the arena is never copied.
#[derive(Clone, PartialEq)]
pub struct RecordBlock {
    arena: Bytes,
    len: usize,
}

impl RecordBlock {
    pub fn from_records<'a, I: IntoIterator<Item = &'a RsdosRecord>>(records: I) -> RecordBlock {
        let mut b = RecordBlockBuilder::new();
        for r in records {
            b.push(r);
        }
        b.finish()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bytes of the backing arena.
    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Decode row `i`.
    pub fn get(&self, i: usize) -> RsdosRecord {
        assert!(i < self.len, "row {i} out of bounds (len {})", self.len);
        decode_record_row(&self.arena[i * RECORD_ROW_BYTES..(i + 1) * RECORD_ROW_BYTES])
    }

    pub fn iter(&self) -> impl Iterator<Item = RsdosRecord> + '_ {
        self.arena.chunks_exact(RECORD_ROW_BYTES).map(decode_record_row)
    }

    /// Whether two blocks share one arena allocation (zero-copy clones).
    pub fn same_arena(a: &RecordBlock, b: &RecordBlock) -> bool {
        Bytes::same_storage(&a.arena, &b.arena)
    }
}

impl std::fmt::Debug for RecordBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RecordBlock")
            .field("len", &self.len)
            .field("arena_bytes", &self.arena.len())
            .finish()
    }
}

/// Builder accumulating [`AttackEpisode`]s into one arena.
#[derive(Default)]
pub struct EpisodeBlockBuilder {
    arena: BytesMut,
    len: usize,
}

impl EpisodeBlockBuilder {
    pub fn new() -> EpisodeBlockBuilder {
        EpisodeBlockBuilder::default()
    }

    pub fn with_capacity(episodes: usize) -> EpisodeBlockBuilder {
        EpisodeBlockBuilder { arena: BytesMut::with_capacity(episodes * EPISODE_ROW_BYTES), len: 0 }
    }

    pub fn push(&mut self, e: &AttackEpisode) {
        let mut row = [0u8; EPISODE_ROW_BYTES];
        row[0..4].copy_from_slice(&u32::from(e.victim).to_be_bytes());
        row[4..12].copy_from_slice(&e.first_window.0.to_be_bytes());
        row[12..20].copy_from_slice(&e.last_window.0.to_be_bytes());
        row[20..28].copy_from_slice(&e.packets.to_be_bytes());
        row[28..36].copy_from_slice(&e.peak_ppm.to_bits().to_be_bytes());
        row[36] = e.protocol.number();
        row[37..39].copy_from_slice(&e.first_port.to_be_bytes());
        row[39..41].copy_from_slice(&e.unique_ports.to_be_bytes());
        row[41..45].copy_from_slice(&e.slash16s.to_be_bytes());
        self.arena.extend_from_slice(&row);
        self.len += 1;
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn finish(self) -> EpisodeBlock {
        EpisodeBlock { arena: self.arena.freeze(), len: self.len }
    }
}

/// An immutable batch of [`AttackEpisode`]s in one shared arena.
#[derive(Clone, PartialEq)]
pub struct EpisodeBlock {
    arena: Bytes,
    len: usize,
}

impl EpisodeBlock {
    pub fn from_episodes<'a, I: IntoIterator<Item = &'a AttackEpisode>>(
        episodes: I,
    ) -> EpisodeBlock {
        let mut b = EpisodeBlockBuilder::new();
        for e in episodes {
            b.push(e);
        }
        b.finish()
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn arena_bytes(&self) -> usize {
        self.arena.len()
    }

    /// Decode row `i`.
    pub fn get(&self, i: usize) -> AttackEpisode {
        assert!(i < self.len, "row {i} out of bounds (len {})", self.len);
        decode_episode_row(&self.arena[i * EPISODE_ROW_BYTES..(i + 1) * EPISODE_ROW_BYTES])
    }

    pub fn iter(&self) -> impl Iterator<Item = AttackEpisode> + '_ {
        self.arena.chunks_exact(EPISODE_ROW_BYTES).map(decode_episode_row)
    }

    pub fn same_arena(a: &EpisodeBlock, b: &EpisodeBlock) -> bool {
        Bytes::same_storage(&a.arena, &b.arena)
    }
}

impl std::fmt::Debug for EpisodeBlock {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EpisodeBlock")
            .field("len", &self.len)
            .field("arena_bytes", &self.arena.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(victim: &str, w: u64, packets: u64, proto: Protocol) -> RsdosRecord {
        RsdosRecord {
            window: Window(w),
            victim: victim.parse().unwrap(),
            slash16s: 7,
            protocol: proto,
            first_port: 443,
            unique_ports: 3,
            max_ppm: 1234.5,
            packets,
        }
    }

    fn episode(victim: &str, w0: u64, w1: u64) -> AttackEpisode {
        AttackEpisode {
            victim: victim.parse().unwrap(),
            first_window: Window(w0),
            last_window: Window(w1),
            packets: 10_000,
            peak_ppm: 987.25,
            protocol: Protocol::Udp,
            first_port: 53,
            unique_ports: 2,
            slash16s: 19,
        }
    }

    #[test]
    fn record_block_round_trips_rows() {
        let rows = vec![
            record("10.0.0.1", 3, 100, Protocol::Tcp),
            record("192.0.2.7", 4, 2_000, Protocol::Udp),
            record("203.0.113.9", 5, 31, Protocol::Icmp),
        ];
        let block = RecordBlock::from_records(&rows);
        assert_eq!(block.len(), 3);
        assert_eq!(block.arena_bytes(), 3 * RECORD_ROW_BYTES);
        let back: Vec<RsdosRecord> = block.iter().collect();
        assert_eq!(back, rows);
        assert_eq!(block.get(1), rows[1]);
    }

    #[test]
    fn episode_block_round_trips_rows() {
        let rows = vec![episode("10.0.0.1", 0, 4), episode("10.9.8.7", 11, 11)];
        let block = EpisodeBlock::from_episodes(&rows);
        assert_eq!(block.len(), 2);
        assert_eq!(block.arena_bytes(), 2 * EPISODE_ROW_BYTES);
        let back: Vec<AttackEpisode> = block.iter().collect();
        assert_eq!(back, rows);
    }

    #[test]
    fn clones_share_the_arena() {
        let block = RecordBlock::from_records(&[record("10.0.0.1", 1, 5, Protocol::Tcp)]);
        let fanout: Vec<RecordBlock> = (0..4).map(|_| block.clone()).collect();
        for c in &fanout {
            assert!(RecordBlock::same_arena(&block, c), "clone copied the arena");
            assert_eq!(c.get(0), block.get(0));
        }
        let rebuilt = RecordBlock::from_records(&[record("10.0.0.1", 1, 5, Protocol::Tcp)]);
        assert!(!RecordBlock::same_arena(&block, &rebuilt));
        assert_eq!(block, rebuilt, "equality is by contents, not storage");
    }

    #[test]
    fn empty_blocks() {
        let rb = RecordBlockBuilder::new().finish();
        assert!(rb.is_empty());
        assert_eq!(rb.iter().count(), 0);
        let eb = EpisodeBlockBuilder::with_capacity(0).finish();
        assert!(eb.is_empty());
    }

    #[test]
    fn builder_len_tracks_pushes() {
        let mut b = RecordBlockBuilder::with_capacity(2);
        assert!(b.is_empty());
        b.push(&record("10.0.0.1", 1, 5, Protocol::Tcp));
        b.push(&record("10.0.0.2", 2, 6, Protocol::Udp));
        assert_eq!(b.len(), 2);
        let mut e = EpisodeBlockBuilder::new();
        e.push(&episode("10.0.0.1", 0, 1));
        assert_eq!(e.len(), 1);
        assert!(!e.is_empty());
        assert_eq!(e.finish().len(), 1);
    }

    #[test]
    fn special_float_values_survive_packing() {
        let mut r = record("10.0.0.1", 1, 5, Protocol::Tcp);
        r.max_ppm = 0.1 + 0.2; // not exactly representable
        let block = RecordBlock::from_records(&[r.clone()]);
        assert_eq!(block.get(0).max_ppm.to_bits(), r.max_ppm.to_bits(), "bit-exact f64");
    }
}
