//! The RSDoS feed: record schema, dataset summary (Table 1), CSV export.

use crate::backscatter::BackscatterObs;
use crate::rsdos::AttackEpisode;
use attack::Protocol;
use netbase::{Prefix2As, Slash24};
use simcore::time::Window;
use std::collections::{HashMap, HashSet};
use std::fmt::Write as _;
use std::net::Ipv4Addr;

/// One feed entry: aggregated backscatter statistics for one victim in one
/// 5-minute window (the schema of §3.1).
#[derive(Clone, Debug, PartialEq)]
pub struct RsdosRecord {
    pub window: Window,
    pub victim: Ipv4Addr,
    /// Telescope /16 subnets that received packets from the victim.
    pub slash16s: u32,
    pub protocol: Protocol,
    /// First destination port observed under attack.
    pub first_port: u16,
    /// Number of distinct targeted ports.
    pub unique_ports: u16,
    /// Peak observed packet rate in the window (packets/minute).
    pub max_ppm: f64,
    /// Total packets in the window (used for episode statistics).
    pub packets: u64,
}

impl RsdosRecord {
    pub fn from_obs(o: &BackscatterObs) -> RsdosRecord {
        RsdosRecord {
            window: o.window,
            victim: o.victim,
            slash16s: o.slash16s,
            protocol: o.protocol,
            first_port: o.first_port,
            unique_ports: o.unique_ports,
            max_ppm: o.max_ppm,
            packets: o.packets,
        }
    }

    /// Extrapolate the telescope rate to the whole IPv4 space:
    /// `ppm × scale / 60` → victim-side pps (footnote 2 of the paper).
    pub fn inferred_victim_pps(&self, scale_factor: f64) -> f64 {
        self.max_ppm * scale_factor / 60.0
    }
}

/// The assembled feed over an analysis interval.
#[derive(Clone, Debug, Default)]
pub struct RsdosFeed {
    pub records: Vec<RsdosRecord>,
    pub episodes: Vec<AttackEpisode>,
}

/// Dataset summary in the shape of the paper's Table 1.
#[derive(Clone, Debug, PartialEq)]
pub struct FeedSummary {
    pub attacks: usize,
    pub unique_ips: usize,
    pub unique_slash24s: usize,
    pub unique_asns: usize,
}

impl RsdosFeed {
    pub fn new(records: Vec<RsdosRecord>, episodes: Vec<AttackEpisode>) -> RsdosFeed {
        RsdosFeed { records, episodes }
    }

    /// Table-1 style summary. Attacks are episodes; IPs//24s/ASes count the
    /// distinct victims.
    pub fn summary(&self, prefix2as: &Prefix2As) -> FeedSummary {
        let ips: HashSet<Ipv4Addr> = self.episodes.iter().map(|e| e.victim).collect();
        let slash24s: HashSet<Slash24> = ips.iter().map(|&ip| Slash24::of(ip)).collect();
        let asns: HashSet<_> = ips.iter().filter_map(|&ip| prefix2as.asn_of(ip)).collect();
        FeedSummary {
            attacks: self.episodes.len(),
            unique_ips: ips.len(),
            unique_slash24s: slash24s.len(),
            unique_asns: asns.len(),
        }
    }

    /// Episodes whose victim passes `pred` (e.g. "is a nameserver IP").
    pub fn episodes_where<'a>(
        &'a self,
        mut pred: impl FnMut(Ipv4Addr) -> bool + 'a,
    ) -> impl Iterator<Item = &'a AttackEpisode> {
        self.episodes.iter().filter(move |e| pred(e.victim))
    }

    /// Emit one `AttackOnset` trace event per episode, attributed to the
    /// feed `scope` (`rsdos`, `milru`, …). The episode's index in this
    /// feed becomes its causal id (`scope/idx`) for the rest of the
    /// pipeline. Pure function of the feed, so the emitted stream is
    /// identical for any `--jobs` or chaos seed.
    pub fn trace_onsets(&self, scope: &str) {
        for (idx, e) in self.episodes.iter().enumerate() {
            obs::trace::emit(
                obs::EventKind::AttackOnset,
                scope,
                Some(idx as u64),
                Some(e.first_window.start().secs()),
                format!(
                    "victim {} {:?} port {} peak {:.0} ppm",
                    e.victim, e.protocol, e.first_port, e.peak_ppm
                ),
                Some(e.duration().secs() / 60),
            );
        }
    }

    /// Build the victim → episode lookup that attributes downstream
    /// events (feed arrivals, triggers, probes) back to episode ids.
    pub fn episode_index(&self) -> EpisodeIndex {
        EpisodeIndex::new(&self.episodes)
    }

    /// Render the per-window records as CSV.
    pub fn records_csv(&self) -> String {
        let mut s = String::from(
            "window,start,victim,slash16s,protocol,first_port,unique_ports,max_ppm,packets\n",
        );
        for r in &self.records {
            let _ = writeln!(
                s,
                "{},{},{},{},{:?},{},{},{:.1},{}",
                r.window.0,
                r.window.start(),
                r.victim,
                r.slash16s,
                r.protocol,
                r.first_port,
                r.unique_ports,
                r.max_ppm,
                r.packets
            );
        }
        s
    }

    /// Render the episodes as CSV.
    pub fn episodes_csv(&self) -> String {
        let mut s = String::from(
            "victim,first_window,last_window,start,duration_min,packets,peak_ppm,protocol,first_port,unique_ports,slash16s\n",
        );
        for e in &self.episodes {
            let _ = writeln!(
                s,
                "{},{},{},{},{},{},{:.1},{:?},{},{},{}",
                e.victim,
                e.first_window.0,
                e.last_window.0,
                e.first_window.start(),
                e.duration().secs() / 60,
                e.packets,
                e.peak_ppm,
                e.protocol,
                e.first_port,
                e.unique_ports,
                e.slash16s
            );
        }
        s
    }
}

/// Victim → episode lookup for trace attribution: maps a feed record's
/// `(victim, window)` to the episode index it belongs to. A record can
/// trail its episode's `last_window` (the trigger path extends plans on
/// every sighting), so the lookup picks the *latest* episode of the
/// victim whose first window is ≤ the record's window rather than
/// requiring containment.
#[derive(Clone, Debug, Default)]
pub struct EpisodeIndex {
    /// Per victim: `(first_window, episode idx)`, sorted by first window.
    by_victim: HashMap<Ipv4Addr, Vec<(u64, u64)>>,
}

impl EpisodeIndex {
    pub fn new(episodes: &[AttackEpisode]) -> EpisodeIndex {
        let mut by_victim: HashMap<Ipv4Addr, Vec<(u64, u64)>> = HashMap::new();
        for (idx, e) in episodes.iter().enumerate() {
            by_victim.entry(e.victim).or_default().push((e.first_window.0, idx as u64));
        }
        for spans in by_victim.values_mut() {
            spans.sort_unstable();
        }
        EpisodeIndex { by_victim }
    }

    /// The episode a record of `victim` in window `w` belongs to, if any.
    pub fn lookup(&self, victim: Ipv4Addr, w: Window) -> Option<u64> {
        let spans = self.by_victim.get(&victim)?;
        let at = spans.partition_point(|&(first, _)| first <= w.0);
        at.checked_sub(1).map(|i| spans[i].1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netbase::{Asn, Ipv4Net};

    fn record(victim: &str, w: u64) -> RsdosRecord {
        RsdosRecord {
            window: Window(w),
            victim: victim.parse().unwrap(),
            slash16s: 10,
            protocol: Protocol::Tcp,
            first_port: 53,
            unique_ports: 1,
            max_ppm: 120.0,
            packets: 600,
        }
    }

    fn episode(victim: &str, w0: u64, w1: u64) -> AttackEpisode {
        AttackEpisode {
            victim: victim.parse().unwrap(),
            first_window: Window(w0),
            last_window: Window(w1),
            packets: 1_000,
            peak_ppm: 200.0,
            protocol: Protocol::Tcp,
            first_port: 80,
            unique_ports: 1,
            slash16s: 12,
        }
    }

    #[test]
    fn summary_counts_unique_dimensions() {
        let mut p2a = Prefix2As::new();
        p2a.announce("10.0.0.0/8".parse::<Ipv4Net>().unwrap(), Asn(100));
        p2a.announce("20.0.0.0/8".parse::<Ipv4Net>().unwrap(), Asn(200));
        let feed = RsdosFeed::new(
            vec![],
            vec![
                episode("10.0.0.1", 0, 2),
                episode("10.0.0.2", 5, 6),   // same /24, same AS
                episode("10.0.1.1", 8, 8),   // same AS, new /24
                episode("20.0.0.1", 9, 9),   // new AS
                episode("10.0.0.1", 50, 51), // repeat victim: new attack, same ip
            ],
        );
        let s = feed.summary(&p2a);
        assert_eq!(s.attacks, 5);
        assert_eq!(s.unique_ips, 4);
        assert_eq!(s.unique_slash24s, 3);
        assert_eq!(s.unique_asns, 2);
    }

    #[test]
    fn extrapolation_matches_paper_footnote() {
        // 21.8 kppm × 341.33 / 60 ≈ 124 kpps.
        let r = RsdosRecord { max_ppm: 21_800.0, ..record("1.2.3.4", 0) };
        let pps = r.inferred_victim_pps(341.33);
        assert!((pps - 124_000.0).abs() < 1_000.0, "{pps}");
    }

    #[test]
    fn filtering_by_predicate() {
        let feed =
            RsdosFeed::new(vec![], vec![episode("10.0.0.1", 0, 1), episode("99.0.0.1", 0, 1)]);
        let dns: Vec<_> = feed.episodes_where(|ip| ip.octets()[0] == 10).collect();
        assert_eq!(dns.len(), 1);
    }

    #[test]
    fn csv_exports_have_headers_and_rows() {
        let feed = RsdosFeed::new(vec![record("1.2.3.4", 3)], vec![episode("1.2.3.4", 3, 4)]);
        let rc = feed.records_csv();
        assert!(rc.starts_with("window,start,victim"));
        assert_eq!(rc.lines().count(), 2);
        assert!(rc.contains("1.2.3.4"));
        let ec = feed.episodes_csv();
        assert_eq!(ec.lines().count(), 2);
        assert!(ec.contains("duration_min"));
        assert!(ec.contains(",10,")); // duration 2 windows = 10 min
    }

    #[test]
    fn episode_index_attributes_records() {
        let feed = RsdosFeed::new(
            vec![],
            vec![
                episode("10.0.0.1", 10, 12),
                episode("10.0.0.1", 50, 51), // second attack on the same ip
                episode("10.0.0.2", 20, 21),
            ],
        );
        let ix = feed.episode_index();
        let ip: Ipv4Addr = "10.0.0.1".parse().unwrap();
        assert_eq!(ix.lookup(ip, Window(10)), Some(0));
        // Trailing records (plan extensions) still attribute to episode 0.
        assert_eq!(ix.lookup(ip, Window(30)), Some(0));
        assert_eq!(ix.lookup(ip, Window(50)), Some(1));
        assert_eq!(ix.lookup(ip, Window(9)), None, "before the first onset");
        assert_eq!(ix.lookup("10.9.9.9".parse().unwrap(), Window(10)), None);
        assert_eq!(ix.lookup("10.0.0.2".parse().unwrap(), Window(25)), Some(2));
    }

    #[test]
    fn empty_feed_summary() {
        let feed = RsdosFeed::default();
        let s = feed.summary(&Prefix2As::new());
        assert_eq!(
            s,
            FeedSummary { attacks: 0, unique_ips: 0, unique_slash24s: 0, unique_asns: 0 }
        );
    }
}
