//! The network-telescope substrate: a UCSD-NT-style darknet, backscatter
//! sampling, and the RSDoS (Randomly and uniformly Spoofed DoS) attack
//! inference that produces the feed the paper joins against.
//!
//! The real telescope passively captures traffic to a /9 + /10 (≈1/341 of
//! IPv4). Victims of randomly-spoofed attacks answer spoofed sources all
//! over the address space, so the darknet receives a 1/341 thinning of the
//! victim's responses. We reproduce that chain:
//!
//! attack (spoofed pps) → victim responses → binomial thinning into the
//! darknet → per-window observations → threshold classifier → feed records
//! and attack episodes.
//!
//! - [`darknet`]: the announced dark prefixes and coverage math.
//! - [`backscatter`]: per-window sampling of backscatter observations.
//! - [`rsdos`]: the threshold classifier and episode (attack) extraction.
//! - [`feed`]: the feed record schema, summary statistics (Table 1), and
//!   CSV export.
//! - [`block`]: arena-backed record/episode blocks — many rows packed in
//!   one refcounted buffer, so topic fan-out and daemon ingest clone a
//!   refcount instead of boxing each record.
//! - [`columns`]: the feed's episodes as a columnar (struct-of-arrays)
//!   table with interned victims — the scale-sweep hot path's input form.
//! - [`export`]: pcap export of sampled backscatter packets.
//! - [`amppot`]: the complementary honeypot-amplifier sensor for
//!   reflection attacks, and the two-sensor coverage analysis of §4.3.

pub mod amppot;
pub mod backscatter;
pub mod block;
pub mod columns;
pub mod darknet;
pub mod export;
pub mod feed;
pub mod outage;
pub mod rsdos;

pub use amppot::{AmpPotEvent, AmpPotSensor, SensorCoverage};
pub use backscatter::{BackscatterObs, BackscatterSampler};
pub use block::{EpisodeBlock, EpisodeBlockBuilder, RecordBlock, RecordBlockBuilder};
pub use columns::EpisodeColumns;
pub use darknet::Darknet;
pub use feed::{EpisodeIndex, FeedSummary, RsdosFeed, RsdosRecord};
pub use outage::FeedGapModel;
pub use rsdos::{AttackEpisode, RsdosClassifier, RsdosThresholds};
