//! pcap export of sampled backscatter.
//!
//! For each backscatter observation we synthesize a bounded sample of the
//! actual packets the darknet would have captured: SYN-ACKs (TCP floods),
//! ICMP port-unreachable (UDP floods), ICMP echo replies (ICMP floods),
//! sourced from the victim toward random dark addresses. Exports open
//! cleanly in Wireshark.

use crate::backscatter::BackscatterObs;
use crate::darknet::Darknet;
use attack::Protocol;
use pcap::{EthernetFrame, Icmpv4, IpProto, Ipv4Header, PcapWriter, TcpSegment, UdpDatagram};
use rand::rngs::SmallRng;
use rand::Rng;
use std::io::Write;

/// Cap on synthesized packets per observation (keeps exports bounded while
/// preserving timing structure).
pub const MAX_PACKETS_PER_OBS: u64 = 64;

/// Write a packet-level rendering of `obs` into `out` as a pcap stream.
/// Returns the number of packets written.
pub fn export_pcap<W: Write>(
    darknet: &Darknet,
    obs: &[BackscatterObs],
    rng: &mut SmallRng,
    out: W,
) -> std::io::Result<u64> {
    let mut w = PcapWriter::new(out)?;
    // Scratch buffers reused across every packet: `l3` holds the transport
    // bytes, `inner` the quoted probe packet, `frame` the finished Ethernet
    // frame. The RNG draw order matches the old per-packet-allocation path
    // exactly, so exports stay byte-identical (locked by a test below).
    let mut l3 = Vec::new();
    let mut inner = Vec::new();
    let mut frame = Vec::new();
    let eth = EthernetFrame::ipv4(Vec::new());
    for o in obs {
        let n = o.packets.min(MAX_PACKETS_PER_OBS);
        for k in 0..n {
            // Spread packets across the 5-minute window.
            let offset_us = (k as f64 / n.max(1) as f64 * 300e6) as u64;
            let ts_sec = o.window.start().secs() as u32 + (offset_us / 1_000_000) as u32;
            let ts_usec = (offset_us % 1_000_000) as u32;
            let dark_dst = darknet.random_addr(rng);
            l3.clear();
            frame.clear();
            eth.encode_header_into(&mut frame);
            match o.protocol {
                Protocol::Tcp => {
                    // Victim's SYN-ACK: source port = attacked service port.
                    let t = TcpSegment::syn_ack(
                        o.first_port,
                        rng.random_range(1024..u16::MAX),
                        rng.random(),
                        rng.random(),
                    );
                    t.encode_into(o.victim, dark_dst, &mut l3);
                    Ipv4Header::encode_packet_into(
                        o.victim,
                        dark_dst,
                        IpProto::Tcp,
                        64,
                        0,
                        &l3,
                        &mut frame,
                    );
                }
                Protocol::Udp => {
                    // ICMP port-unreachable quoting the spoofed probe.
                    let quoted = UdpDatagram::new(
                        rng.random_range(1024..u16::MAX),
                        o.first_port,
                        vec![0; 8],
                    );
                    quoted.encode_into(dark_dst, o.victim, &mut l3);
                    inner.clear();
                    Ipv4Header::encode_packet_into(
                        dark_dst,
                        o.victim,
                        IpProto::Udp,
                        64,
                        0,
                        &l3,
                        &mut inner,
                    );
                    let icmp = Icmpv4::port_unreachable(&inner);
                    l3.clear();
                    icmp.encode_into(&mut l3);
                    Ipv4Header::encode_packet_into(
                        o.victim,
                        dark_dst,
                        IpProto::Icmp,
                        64,
                        0,
                        &l3,
                        &mut frame,
                    );
                }
                Protocol::Icmp => {
                    let icmp = Icmpv4::echo_reply(rng.random(), k as u16);
                    icmp.encode_into(&mut l3);
                    Ipv4Header::encode_packet_into(
                        o.victim,
                        dark_dst,
                        IpProto::Icmp,
                        64,
                        0,
                        &l3,
                        &mut frame,
                    );
                }
            };
            w.write_frame(ts_sec, ts_usec, &frame)?;
        }
    }
    let n = w.packet_count();
    w.finish()?;
    Ok(n)
}

#[cfg(test)]
mod tests {
    use super::*;
    use pcap::PcapReader;
    use rand::SeedableRng;
    use simcore::time::Window;
    use std::io::Cursor;

    fn obs(proto: Protocol, packets: u64) -> BackscatterObs {
        BackscatterObs {
            victim: "203.0.113.9".parse().unwrap(),
            window: Window(12),
            packets,
            slash16s: 5,
            protocol: proto,
            first_port: 53,
            unique_ports: 1,
            max_ppm: packets as f64 / 5.0,
        }
    }

    #[test]
    fn export_roundtrips_through_reader() {
        let d = Darknet::ucsd_like();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = Vec::new();
        let n = export_pcap(&d, &[obs(Protocol::Tcp, 10)], &mut rng, &mut buf).unwrap();
        assert_eq!(n, 10);
        let mut r = PcapReader::new(Cursor::new(buf)).unwrap();
        let pkts = r.read_all().unwrap();
        assert_eq!(pkts.len(), 10);
        // Every packet is a valid Ethernet(IPv4(TCP SYN-ACK)) from the
        // victim into the darknet, source port 53.
        for p in &pkts {
            let eth = EthernetFrame::decode(&p.data).unwrap();
            let ip = Ipv4Header::decode(&eth.payload).unwrap();
            assert_eq!(ip.src, "203.0.113.9".parse::<std::net::Ipv4Addr>().unwrap());
            assert!(d.covers(ip.dst), "backscatter lands in the darknet");
            let tcp = TcpSegment::decode(&ip.payload, ip.src, ip.dst).unwrap();
            assert_eq!(tcp.src_port, 53);
            assert!(tcp.flags.syn && tcp.flags.ack);
        }
    }

    #[test]
    fn udp_flood_exports_icmp_unreachable() {
        let d = Darknet::ucsd_like();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut buf = Vec::new();
        export_pcap(&d, &[obs(Protocol::Udp, 3)], &mut rng, &mut buf).unwrap();
        let mut r = PcapReader::new(Cursor::new(buf)).unwrap();
        for p in r.read_all().unwrap() {
            let eth = EthernetFrame::decode(&p.data).unwrap();
            let ip = Ipv4Header::decode(&eth.payload).unwrap();
            assert_eq!(ip.proto, IpProto::Icmp);
            let icmp = Icmpv4::decode(&ip.payload).unwrap();
            assert_eq!((icmp.icmp_type, icmp.code), (3, 3));
        }
    }

    #[test]
    fn packet_cap_bounds_export() {
        let d = Darknet::ucsd_like();
        let mut rng = SmallRng::seed_from_u64(3);
        let mut buf = Vec::new();
        let n = export_pcap(&d, &[obs(Protocol::Icmp, 1_000_000)], &mut rng, &mut buf).unwrap();
        assert_eq!(n, MAX_PACKETS_PER_OBS);
    }

    /// The naive per-packet-allocation composition the scratch-buffer
    /// rewrite replaced. Kept verbatim as the reference for the
    /// byte-identity differential below.
    fn export_pcap_naive<W: Write>(
        darknet: &Darknet,
        obs: &[BackscatterObs],
        rng: &mut SmallRng,
        out: W,
    ) -> std::io::Result<u64> {
        use pcap::PcapPacket;
        let mut w = PcapWriter::new(out)?;
        for o in obs {
            let n = o.packets.min(MAX_PACKETS_PER_OBS);
            for k in 0..n {
                let offset_us = (k as f64 / n.max(1) as f64 * 300e6) as u64;
                let ts_sec = o.window.start().secs() as u32 + (offset_us / 1_000_000) as u32;
                let ts_usec = (offset_us % 1_000_000) as u32;
                let dark_dst = darknet.random_addr(rng);
                let payload = match o.protocol {
                    Protocol::Tcp => {
                        let t = TcpSegment::syn_ack(
                            o.first_port,
                            rng.random_range(1024..u16::MAX),
                            rng.random(),
                            rng.random(),
                        );
                        let body = t.encode(o.victim, dark_dst);
                        Ipv4Header::new(o.victim, dark_dst, IpProto::Tcp, body).encode()
                    }
                    Protocol::Udp => {
                        let quoted = UdpDatagram::new(
                            rng.random_range(1024..u16::MAX),
                            o.first_port,
                            vec![0; 8],
                        )
                        .encode(dark_dst, o.victim);
                        let inner =
                            Ipv4Header::new(dark_dst, o.victim, IpProto::Udp, quoted).encode();
                        let icmp = Icmpv4::port_unreachable(&inner);
                        Ipv4Header::new(o.victim, dark_dst, IpProto::Icmp, icmp.encode()).encode()
                    }
                    Protocol::Icmp => {
                        let icmp = Icmpv4::echo_reply(rng.random(), k as u16);
                        Ipv4Header::new(o.victim, dark_dst, IpProto::Icmp, icmp.encode()).encode()
                    }
                };
                let frame = EthernetFrame::ipv4(payload);
                w.write_packet(&PcapPacket::new(ts_sec, ts_usec, frame.encode()))?;
            }
        }
        let n = w.packet_count();
        w.finish()?;
        Ok(n)
    }

    #[test]
    fn scratch_buffer_export_is_byte_identical_to_naive() {
        let d = Darknet::ucsd_like();
        let mixed = [obs(Protocol::Tcp, 10), obs(Protocol::Udp, 7), obs(Protocol::Icmp, 5)];
        let mut fast = Vec::new();
        let mut naive = Vec::new();
        let n1 = export_pcap(&d, &mixed, &mut SmallRng::seed_from_u64(99), &mut fast).unwrap();
        let n2 =
            export_pcap_naive(&d, &mixed, &mut SmallRng::seed_from_u64(99), &mut naive).unwrap();
        assert_eq!(n1, n2);
        assert_eq!(fast, naive, "scratch-buffer export changed the capture bytes");
    }

    #[test]
    fn timestamps_stay_inside_window() {
        let d = Darknet::ucsd_like();
        let mut rng = SmallRng::seed_from_u64(4);
        let mut buf = Vec::new();
        export_pcap(&d, &[obs(Protocol::Tcp, 50)], &mut rng, &mut buf).unwrap();
        let mut r = PcapReader::new(Cursor::new(buf)).unwrap();
        let start = Window(12).start().secs() as u32;
        for p in r.read_all().unwrap() {
            assert!(p.ts_sec >= start && p.ts_sec < start + 300);
        }
    }
}
