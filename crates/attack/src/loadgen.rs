//! Conversion of attacks into per-window offered load.
//!
//! Kept free of a `dnssim` dependency: the output is a plain
//! `(address, window, pps)` stream that the caller feeds into
//! `dnssim::LoadBook::add` (or anything else).

use crate::spec::Attack;
use simcore::time::Window;
use std::net::Ipv4Addr;

/// Flatten attacks into `(target, window, average_pps_over_window)` cells.
/// All vectors contribute load (including telescope-invisible ones — the
/// victim's queue doesn't care whether the darknet can see the traffic).
/// Partial window overlap prorates the rate.
pub fn accumulate_windows(attacks: &[Attack]) -> Vec<(Ipv4Addr, Window, f64)> {
    let mut out = Vec::new();
    for a in attacks {
        let pps = a.total_pps();
        for (w, frac) in a.window_overlaps() {
            out.push((a.target, w, pps * frac));
        }
    }
    out
}

/// As [`accumulate_windows`], but only the telescope-visible (randomly
/// spoofed) component — what backscatter-based rate inference would
/// credit the attack with.
pub fn accumulate_visible_windows(attacks: &[Attack]) -> Vec<(Ipv4Addr, Window, f64)> {
    let mut out = Vec::new();
    for a in attacks {
        let pps = a.spoofed_pps();
        if pps <= 0.0 {
            continue;
        }
        for (w, frac) in a.window_overlaps() {
            out.push((a.target, w, pps * frac));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{AttackId, VectorSpec};
    use crate::vector::{Protocol, VectorKind};
    use simcore::time::{SimDuration, SimTime};

    fn attack(visible_pps: f64, invisible_pps: f64) -> Attack {
        let mut vectors = Vec::new();
        if visible_pps > 0.0 {
            vectors.push(VectorSpec {
                kind: VectorKind::RandomSpoofed,
                protocol: Protocol::Tcp,
                ports: vec![53],
                victim_pps: visible_pps,
                source_count: 100,
            });
        }
        if invisible_pps > 0.0 {
            vectors.push(VectorSpec {
                kind: VectorKind::Reflection,
                protocol: Protocol::Udp,
                ports: vec![53],
                victim_pps: invisible_pps,
                source_count: 10,
            });
        }
        Attack {
            id: AttackId(0),
            target: "192.0.2.1".parse().unwrap(),
            start: SimTime(0),
            duration: SimDuration::from_mins(10),
            vectors,
        }
    }

    #[test]
    fn total_load_includes_invisible_vectors() {
        let cells = accumulate_windows(&[attack(1_000.0, 9_000.0)]);
        assert_eq!(cells.len(), 2);
        for (_, _, pps) in &cells {
            assert!((pps - 10_000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn visible_load_excludes_invisible_vectors() {
        let cells = accumulate_visible_windows(&[attack(1_000.0, 9_000.0)]);
        for (_, _, pps) in &cells {
            assert!((pps - 1_000.0).abs() < 1e-9);
        }
    }

    #[test]
    fn invisible_only_attack_has_no_visible_cells() {
        let cells = accumulate_visible_windows(&[attack(0.0, 5_000.0)]);
        assert!(cells.is_empty());
        let all = accumulate_windows(&[attack(0.0, 5_000.0)]);
        assert_eq!(all.len(), 2);
    }

    #[test]
    fn energy_conserved_under_prorating() {
        // A misaligned attack spreads the same packet budget across cells.
        let mut a = attack(600.0, 0.0);
        a.start = SimTime(150);
        a.duration = SimDuration::from_secs(450);
        let cells = accumulate_windows(&[a]);
        let total_packets: f64 = cells.iter().map(|(_, _, pps)| pps * 300.0).sum();
        assert!((total_packets - 600.0 * 450.0).abs() < 1e-6);
    }
}
