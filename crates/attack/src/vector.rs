//! Attack vectors, protocols, and the calibrated port mix.

use rand::Rng;

/// Transport protocol of an attack vector, as the RSDoS feed reports it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Protocol {
    Tcp,
    Udp,
    Icmp,
}

impl Protocol {
    /// IANA protocol number (matches `pcap::IpProto`).
    pub fn number(self) -> u8 {
        match self {
            Protocol::Icmp => 1,
            Protocol::Tcp => 6,
            Protocol::Udp => 17,
        }
    }
}

/// How an attack vector sources its traffic — which decides whether the
/// telescope can see it (§2.1).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum VectorKind {
    /// Randomly-and-uniformly spoofed sources. The victim's responses
    /// (SYN-ACK, RST, ICMP) spray across IPv4 and the darknet samples them:
    /// **telescope-visible**.
    RandomSpoofed,
    /// Reflection/amplification off third parties: backscatter goes to the
    /// victim, not the darknet: **invisible**.
    Reflection,
    /// Direct (botnet, unspoofed): **invisible**.
    Direct,
}

impl VectorKind {
    pub fn telescope_visible(self) -> bool {
        matches!(self, VectorKind::RandomSpoofed)
    }
}

/// Sample the protocol of a DNS-infrastructure attack, per §6.2:
/// 90.4% TCP, 8.4% UDP, 1.2% ICMP.
pub fn sample_protocol<R: Rng + ?Sized>(rng: &mut R) -> Protocol {
    let u: f64 = rng.random();
    if u < 0.904 {
        Protocol::Tcp
    } else if u < 0.904 + 0.084 {
        Protocol::Udp
    } else {
        Protocol::Icmp
    }
}

/// Sample the destination port given the protocol, per §6.2:
/// TCP: 37% :80, 30% :53, 18% :443, rest spread;
/// UDP: one-third :53, rest spread.
pub fn sample_port<R: Rng + ?Sized>(rng: &mut R, proto: Protocol) -> u16 {
    match proto {
        Protocol::Tcp => {
            let u: f64 = rng.random();
            if u < 0.37 {
                80
            } else if u < 0.67 {
                53
            } else if u < 0.85 {
                443
            } else {
                // A long tail of scanned/odd ports.
                rng.random_range(1..=u16::MAX)
            }
        }
        Protocol::Udp => {
            let u: f64 = rng.random();
            if u < 1.0 / 3.0 {
                53
            } else {
                rng.random_range(1..=u16::MAX)
            }
        }
        Protocol::Icmp => 0,
    }
}

/// Sample how many distinct destination ports an attack touches. 80.7% of
/// attacks were single-port (§6.2); the remainder carpet a handful.
pub fn sample_port_count<R: Rng + ?Sized>(rng: &mut R) -> u16 {
    if rng.random::<f64>() < 0.807 {
        1
    } else {
        // 2..=64 with a geometric-ish tail.
        let mut n = 2u16;
        while n < 64 && rng.random::<f64>() < 0.5 {
            n *= 2;
        }
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn protocol_numbers() {
        assert_eq!(Protocol::Tcp.number(), 6);
        assert_eq!(Protocol::Udp.number(), 17);
        assert_eq!(Protocol::Icmp.number(), 1);
    }

    #[test]
    fn visibility() {
        assert!(VectorKind::RandomSpoofed.telescope_visible());
        assert!(!VectorKind::Reflection.telescope_visible());
        assert!(!VectorKind::Direct.telescope_visible());
    }

    #[test]
    fn protocol_mix_matches_paper() {
        let mut r = rng();
        let n = 100_000;
        let mut tcp = 0;
        let mut udp = 0;
        let mut icmp = 0;
        for _ in 0..n {
            match sample_protocol(&mut r) {
                Protocol::Tcp => tcp += 1,
                Protocol::Udp => udp += 1,
                Protocol::Icmp => icmp += 1,
            }
        }
        assert!((tcp as f64 / n as f64 - 0.904).abs() < 0.01);
        assert!((udp as f64 / n as f64 - 0.084).abs() < 0.01);
        assert!((icmp as f64 / n as f64 - 0.012).abs() < 0.005);
    }

    #[test]
    fn tcp_port_mix_matches_paper() {
        let mut r = rng();
        let n = 100_000;
        let mut p80 = 0;
        let mut p53 = 0;
        let mut p443 = 0;
        for _ in 0..n {
            match sample_port(&mut r, Protocol::Tcp) {
                80 => p80 += 1,
                53 => p53 += 1,
                443 => p443 += 1,
                _ => {}
            }
        }
        assert!((p80 as f64 / n as f64 - 0.37).abs() < 0.02, "p80 {p80}");
        assert!((p53 as f64 / n as f64 - 0.30).abs() < 0.02, "p53 {p53}");
        assert!((p443 as f64 / n as f64 - 0.18).abs() < 0.02, "p443 {p443}");
        assert!(p80 > p53 && p53 > p443, "paper ordering 80 > 53 > 443");
    }

    #[test]
    fn udp_port_mix() {
        let mut r = rng();
        let n = 60_000;
        let p53 = (0..n).filter(|_| sample_port(&mut r, Protocol::Udp) == 53).count();
        assert!((p53 as f64 / n as f64 - 1.0 / 3.0).abs() < 0.02);
    }

    #[test]
    fn icmp_has_no_port() {
        let mut r = rng();
        assert_eq!(sample_port(&mut r, Protocol::Icmp), 0);
    }

    #[test]
    fn single_port_dominates() {
        let mut r = rng();
        let n = 50_000;
        let single = (0..n).filter(|_| sample_port_count(&mut r) == 1).count();
        assert!((single as f64 / n as f64 - 0.807).abs() < 0.01);
        for _ in 0..1_000 {
            let c = sample_port_count(&mut r);
            assert!((1..=64).contains(&c));
        }
    }
}
