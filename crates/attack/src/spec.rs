//! The attack record: one (possibly multi-vector) attack against one IPv4
//! address.

use crate::vector::{Protocol, VectorKind};
use simcore::time::{SimDuration, SimTime, Window};
use std::net::Ipv4Addr;

/// Unique attack identifier.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct AttackId(pub u64);

/// One traffic vector of an attack.
#[derive(Clone, Debug, PartialEq)]
pub struct VectorSpec {
    pub kind: VectorKind,
    pub protocol: Protocol,
    /// Destination ports hit by this vector (first element = "first port"
    /// in the RSDoS feed sense). Empty for ICMP.
    pub ports: Vec<u16>,
    /// Packet rate arriving at the victim, packets per second.
    pub victim_pps: f64,
    /// Number of distinct (spoofed or real) source addresses.
    pub source_count: u64,
}

impl VectorSpec {
    pub fn first_port(&self) -> u16 {
        self.ports.first().copied().unwrap_or(0)
    }
}

/// A scheduled attack.
#[derive(Clone, Debug, PartialEq)]
pub struct Attack {
    pub id: AttackId,
    pub target: Ipv4Addr,
    pub start: SimTime,
    pub duration: SimDuration,
    pub vectors: Vec<VectorSpec>,
}

impl Attack {
    pub fn end(&self) -> SimTime {
        self.start + self.duration
    }

    /// Total packet rate at the victim across all vectors.
    pub fn total_pps(&self) -> f64 {
        self.vectors.iter().map(|v| v.victim_pps).sum()
    }

    /// Packet rate of the telescope-visible (randomly spoofed) vectors
    /// only — what backscatter inference can be based on.
    pub fn spoofed_pps(&self) -> f64 {
        self.vectors.iter().filter(|v| v.kind.telescope_visible()).map(|v| v.victim_pps).sum()
    }

    /// Whether any vector is visible to the telescope.
    pub fn telescope_visible(&self) -> bool {
        self.vectors.iter().any(|v| v.kind.telescope_visible())
    }

    /// The 5-minute windows `[first, last]` the attack overlaps, with the
    /// fraction of each window the attack is active.
    pub fn window_overlaps(&self) -> Vec<(Window, f64)> {
        let mut out = Vec::new();
        let start = self.start;
        let end = self.end();
        if end <= start {
            return out;
        }
        let mut w = start.window();
        let last = if end.secs().is_multiple_of(simcore::time::WINDOW_SECS) {
            Window(end.window().0.saturating_sub(1))
        } else {
            end.window()
        };
        while w <= last {
            let ws = w.start().secs().max(start.secs());
            let we = w.end().secs().min(end.secs());
            let frac = (we.saturating_sub(ws)) as f64 / simcore::time::WINDOW_SECS as f64;
            if frac > 0.0 {
                out.push((w, frac));
            }
            w = w.next();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mk(start_s: u64, dur_s: u64) -> Attack {
        Attack {
            id: AttackId(1),
            target: "192.0.2.1".parse().unwrap(),
            start: SimTime(start_s),
            duration: SimDuration::from_secs(dur_s),
            vectors: vec![
                VectorSpec {
                    kind: VectorKind::RandomSpoofed,
                    protocol: Protocol::Tcp,
                    ports: vec![53, 80],
                    victim_pps: 10_000.0,
                    source_count: 1_000_000,
                },
                VectorSpec {
                    kind: VectorKind::Reflection,
                    protocol: Protocol::Udp,
                    ports: vec![53],
                    victim_pps: 5_000.0,
                    source_count: 2_000,
                },
            ],
        }
    }

    #[test]
    fn rates_split_by_visibility() {
        let a = mk(0, 600);
        assert_eq!(a.total_pps(), 15_000.0);
        assert_eq!(a.spoofed_pps(), 10_000.0);
        assert!(a.telescope_visible());
        assert_eq!(a.vectors[0].first_port(), 53);
    }

    #[test]
    fn invisible_attack() {
        let mut a = mk(0, 600);
        a.vectors.retain(|v| v.kind == VectorKind::Reflection);
        assert!(!a.telescope_visible());
        assert_eq!(a.spoofed_pps(), 0.0);
        assert_eq!(a.total_pps(), 5_000.0);
    }

    #[test]
    fn aligned_attack_fills_whole_windows() {
        // 10 minutes starting exactly at a window edge = 2 full windows.
        let a = mk(300, 600);
        let w = a.window_overlaps();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0], (Window(1), 1.0));
        assert_eq!(w[1], (Window(2), 1.0));
    }

    #[test]
    fn misaligned_attack_prorates_edges() {
        // Start 150 s into window 0, run 450 s → half of W0, all of W1.
        let a = mk(150, 450);
        let w = a.window_overlaps();
        assert_eq!(w.len(), 2);
        assert_eq!(w[0].0, Window(0));
        assert!((w[0].1 - 0.5).abs() < 1e-12);
        assert_eq!(w[1], (Window(1), 1.0));
    }

    #[test]
    fn sub_window_attack() {
        let a = mk(60, 60);
        let w = a.window_overlaps();
        assert_eq!(w.len(), 1);
        assert!((w[0].1 - 0.2).abs() < 1e-12);
    }

    #[test]
    fn zero_duration_has_no_windows() {
        let a = mk(100, 0);
        assert!(a.window_overlaps().is_empty());
    }

    #[test]
    fn fifteen_minute_attack_spans_three_windows_aligned() {
        let a = mk(0, 900);
        let w = a.window_overlaps();
        assert_eq!(w.len(), 3);
        assert!(w.iter().all(|(_, f)| (*f - 1.0).abs() < 1e-12));
        let total: f64 = w.iter().map(|(_, f)| f).sum();
        assert!((total * 300.0 - 900.0).abs() < 1e-9, "fractions conserve duration");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Window overlap fractions conserve the attack's total duration
        /// and the windows are contiguous and in order.
        #[test]
        fn overlaps_conserve_duration(start in 0u64..1_000_000, dur in 1u64..200_000) {
            let a = Attack {
                id: AttackId(0),
                target: "192.0.2.1".parse().unwrap(),
                start: SimTime(start),
                duration: SimDuration::from_secs(dur),
                vectors: vec![],
            };
            let w = a.window_overlaps();
            prop_assert!(!w.is_empty());
            let covered: f64 =
                w.iter().map(|(_, f)| f * simcore::time::WINDOW_SECS as f64).sum();
            prop_assert!((covered - dur as f64).abs() < 1e-6);
            for pair in w.windows(2) {
                prop_assert_eq!(pair[0].0.next(), pair[1].0, "contiguous windows");
            }
            for (_, f) in &w {
                prop_assert!(*f > 0.0 && *f <= 1.0 + 1e-12);
            }
            prop_assert_eq!(w[0].0, SimTime(start).window());
        }
    }
}
