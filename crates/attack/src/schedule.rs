//! The calibrated attack scheduler.
//!
//! Generates a 17-month attack population whose marginals match the paper's
//! published distributions (see crate docs). The absolute monthly volumes
//! are configurable so experiments can run at feed scale (hundreds of
//! thousands of records are cheap) or scaled down.

use crate::spec::{Attack, AttackId, VectorSpec};
use crate::vector::{sample_port, sample_port_count, sample_protocol, Protocol, VectorKind};
use rand::rngs::SmallRng;
use rand::Rng;
use simcore::dist::{pareto, BimodalLogNormal};
use simcore::rng::RngFactory;
use simcore::time::{Month, SimDuration, SimTime};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// The address pools attacks choose targets from.
#[derive(Clone, Debug, Default)]
pub struct TargetPool {
    /// Nameserver service addresses (including open-resolver addresses that
    /// misconfigured domains list as authoritatives).
    pub dns_addrs: Vec<Ipv4Addr>,
    /// Relative attack attractiveness of each DNS address (larger providers
    /// attract more attacks — Table 4's Google/Cloudflare spikes).
    pub dns_weights: Vec<f64>,
    /// Non-nameserver addresses inside nameserver /24s (collateral targets:
    /// the web server next to the mil.ru nameservers).
    pub collateral_addrs: Vec<Ipv4Addr>,
    /// Nameserver groupings (one group per provider NSSet). A *campaign*
    /// attack hits every member of a group simultaneously — the
    /// TransIP/mil.ru/RDZ pattern that produces the paper's
    /// complete-failure and 100x-RTT events.
    pub dns_groups: Vec<Vec<Ipv4Addr>>,
}

impl TargetPool {
    pub fn uniform(dns_addrs: Vec<Ipv4Addr>, collateral_addrs: Vec<Ipv4Addr>) -> TargetPool {
        let dns_weights = vec![1.0; dns_addrs.len()];
        TargetPool { dns_addrs, dns_weights, collateral_addrs, dns_groups: Vec::new() }
    }

    /// The group containing `addr`, if any.
    pub fn group_of(&self, addr: Ipv4Addr) -> Option<&[Ipv4Addr]> {
        self.dns_groups.iter().find(|g| g.contains(&addr)).map(|g| g.as_slice())
    }
}

/// Scheduler configuration. Defaults reproduce the paper's marginals.
#[derive(Clone, Debug)]
pub struct ScheduleConfig {
    pub months: Vec<Month>,
    /// Total attacks per month (same length as `months`). Table 3's real
    /// volumes run 145K–360K/month.
    pub attacks_per_month: Vec<u32>,
    /// Fraction of each month's attacks aimed directly at DNS nameserver
    /// IPs (Table 3: 0.57%–2.12%).
    pub dns_share_per_month: Vec<f64>,
    /// Of DNS-related attacks, the share that hits a collateral address in
    /// the nameserver's /24 instead of the nameserver itself.
    pub collateral_share: f64,
    /// Attack duration distribution, in minutes (§6.5: modes 15 and 60).
    pub duration_minutes: BimodalLogNormal,
    /// Telescope-observed intensity distribution, packets/minute at the
    /// darknet (§6.4: modes ≈50 and ≈6000 ppm).
    pub intensity_ppm: BimodalLogNormal,
    /// Probability of an extra heavy-tail intensity draw (the TransIP-class
    /// events), multiplying the sampled rate by a Pareto factor.
    pub heavy_tail_prob: f64,
    /// Probability an attack carries an additional telescope-invisible
    /// vector (reflection or direct).
    pub multi_vector_prob: f64,
    /// Probability an attack is *only* invisible vectors (never enters the
    /// RSDoS feed at all).
    pub invisible_only_prob: f64,
    /// Probability that a DNS-targeted attack is a *campaign* hitting
    /// every nameserver of the chosen provider group simultaneously (the
    /// case-study pattern; requires `TargetPool::dns_groups`).
    pub campaign_prob: f64,
    /// Within a campaign, probability each member attack aims at port 53
    /// (application-aware attackers going after the DNS itself — §6.3.1's
    /// successful attacks skew to 53).
    pub campaign_dns_port_prob: f64,
    /// Inverse telescope coverage: the darknet sees 1/341 of IPv4, so
    /// victim-side pps = ppm × 341 / 60.
    pub telescope_scale: f64,
}

impl Default for ScheduleConfig {
    fn default() -> ScheduleConfig {
        let months = Month::paper_interval();
        let n = months.len();
        ScheduleConfig {
            months,
            // Scaled-down default (≈1/40 of Table 3): big enough for stable
            // shares, small enough for CI.
            attacks_per_month: vec![6_000; n],
            dns_share_per_month: vec![0.012; n],
            collateral_share: 0.15,
            duration_minutes: BimodalLogNormal::from_modes(0.55, 15.0, 0.45, 60.0, 0.55),
            intensity_ppm: BimodalLogNormal::from_modes(0.6, 50.0, 0.9, 6_000.0, 0.7),
            heavy_tail_prob: 0.01,
            multi_vector_prob: 0.35,
            invisible_only_prob: 0.10,
            campaign_prob: 0.3,
            campaign_dns_port_prob: 0.10,
            telescope_scale: 341.0,
        }
    }
}

/// Deterministic attack-population generator.
pub struct AttackScheduler {
    pub config: ScheduleConfig,
}

impl AttackScheduler {
    pub fn new(config: ScheduleConfig) -> AttackScheduler {
        assert_eq!(config.months.len(), config.attacks_per_month.len());
        assert_eq!(config.months.len(), config.dns_share_per_month.len());
        AttackScheduler { config }
    }

    /// Generate the full attack population, sorted by start time.
    pub fn generate(&self, pool: &TargetPool, rngs: &RngFactory) -> Vec<Attack> {
        let mut rng = rngs.stream("attack-schedule");
        let dns_cdf = cumulative(&pool.dns_weights);
        let mut out = Vec::new();
        let mut next_id = 0u64;
        for (mi, month) in self.config.months.iter().enumerate() {
            let count = self.config.attacks_per_month[mi];
            let dns_share = self.config.dns_share_per_month[mi];
            let span = (month.end() - month.start()).secs();
            for _ in 0..count {
                let offset = rng.random_range(0..span);
                let start = month.start() + SimDuration::from_secs(offset);
                let target = self.pick_target(pool, &dns_cdf, dns_share, &mut rng);
                // Campaigns: hit every nameserver of the provider group.
                let group = pool.group_of(target).filter(|g| g.len() > 1).map(<[Ipv4Addr]>::to_vec);
                match group {
                    Some(members) if rng.random::<f64>() < self.config.campaign_prob => {
                        let base = self.one_attack(AttackId(next_id), target, start, &mut rng);
                        next_id += 1;
                        let dns_port = rng.random::<f64>() < self.config.campaign_dns_port_prob;
                        for &member in &members {
                            let mut a = base.clone();
                            a.id = AttackId(next_id);
                            next_id += 1;
                            a.target = member;
                            // Per-member intensity jitter (the December
                            // TransIP attack hit A far harder than B/C).
                            let jitter = simcore::dist::log_normal(&mut rng, 0.0, 0.4);
                            // Application-aware (port 53) campaigns are the
                            // effective ones (§6.3.1): they bring real
                            // firepower against the DNS itself.
                            let aware_boost = if dns_port { 4.0 } else { 1.0 };
                            for v in &mut a.vectors {
                                v.victim_pps *= jitter * aware_boost;
                                v.source_count = ((v.source_count as f64) * jitter) as u64;
                                if dns_port && v.protocol != Protocol::Icmp {
                                    v.ports = vec![53];
                                }
                            }
                            out.push(a);
                        }
                    }
                    _ => {
                        out.push(self.one_attack(AttackId(next_id), target, start, &mut rng));
                        next_id += 1;
                    }
                }
            }
        }
        out.sort_by_key(|a| (a.start, a.id));
        out
    }

    fn pick_target(
        &self,
        pool: &TargetPool,
        dns_cdf: &[f64],
        dns_share: f64,
        rng: &mut SmallRng,
    ) -> Ipv4Addr {
        let u: f64 = rng.random();
        if u < dns_share && !pool.dns_addrs.is_empty() {
            if rng.random::<f64>() < self.config.collateral_share
                && !pool.collateral_addrs.is_empty()
            {
                pool.collateral_addrs[rng.random_range(0..pool.collateral_addrs.len())]
            } else {
                pool.dns_addrs[pick_weighted(dns_cdf, rng)]
            }
        } else {
            random_background_addr(rng, pool)
        }
    }

    /// Build one attack at `target` starting at `start`.
    pub fn one_attack(
        &self,
        id: AttackId,
        target: Ipv4Addr,
        start: SimTime,
        rng: &mut SmallRng,
    ) -> Attack {
        let cfg = &self.config;
        let minutes = cfg.duration_minutes.sample(rng).clamp(1.0, 48.0 * 60.0);
        let duration = SimDuration::from_secs((minutes * 60.0) as u64);
        let mut ppm = cfg.intensity_ppm.sample(rng);
        if rng.random::<f64>() < cfg.heavy_tail_prob {
            ppm *= pareto(rng, 1.0, 1.2);
        }
        let victim_pps = ppm * cfg.telescope_scale / 60.0;
        let protocol = sample_protocol(rng);
        let nports = sample_port_count(rng) as usize;
        let mut ports: Vec<u16> = Vec::with_capacity(nports);
        if protocol != Protocol::Icmp {
            let mut seen = HashSet::new();
            while ports.len() < nports {
                let p = sample_port(rng, protocol);
                if seen.insert(p) {
                    ports.push(p);
                }
            }
        }
        let total_packets = victim_pps * duration.secs() as f64;
        let source_count = spoofed_source_count(total_packets);
        let invisible_only = rng.random::<f64>() < cfg.invisible_only_prob;
        let mut vectors = Vec::new();
        if !invisible_only {
            vectors.push(VectorSpec {
                kind: VectorKind::RandomSpoofed,
                protocol,
                ports: ports.clone(),
                victim_pps,
                source_count,
            });
        }
        if invisible_only || rng.random::<f64>() < cfg.multi_vector_prob {
            // The invisible component can dwarf the visible one, which is
            // why telescope intensity fails to predict impact (§6.4).
            let mult = pareto(rng, 0.5, 1.1).min(50.0);
            let kind =
                if rng.random::<f64>() < 0.7 { VectorKind::Reflection } else { VectorKind::Direct };
            vectors.push(VectorSpec {
                kind,
                protocol: Protocol::Udp,
                ports: vec![53],
                victim_pps: victim_pps * mult,
                // Reflection recruits thousands of amplifiers (the AmpPot
                // regime); direct botnets are counted in bots.
                source_count: if kind == VectorKind::Reflection {
                    simcore::dist::log_normal(rng, 8.0, 1.0).max(1.0) as u64
                } else {
                    (source_count / 100).max(1)
                },
            });
        }
        Attack { id, target, start, duration, vectors }
    }
}

/// Estimate the number of distinct spoofed sources the victim's responses
/// reveal. Calibrated so a TransIP-December-class attack (≈6.5 G packets)
/// yields ≈5.8 M sources (Table 2).
pub fn spoofed_source_count(total_packets: f64) -> u64 {
    (total_packets / 1_120.0).clamp(1.0, u32::MAX as f64) as u64
}

fn cumulative(weights: &[f64]) -> Vec<f64> {
    let mut acc = 0.0;
    let total: f64 = weights.iter().sum();
    weights
        .iter()
        .map(|w| {
            acc += w;
            if total > 0.0 {
                acc / total
            } else {
                1.0
            }
        })
        .collect()
}

fn pick_weighted(cdf: &[f64], rng: &mut SmallRng) -> usize {
    let u: f64 = rng.random();
    match cdf.binary_search_by(|c| c.total_cmp(&u)) {
        Ok(i) => i + 1,
        Err(i) => i,
    }
    .min(cdf.len() - 1)
}

/// A background (non-DNS) victim drawn uniformly from routable-looking
/// space, avoiding the DNS pool itself.
fn random_background_addr(rng: &mut SmallRng, pool: &TargetPool) -> Ipv4Addr {
    loop {
        let v: u32 = rng.random();
        let addr = Ipv4Addr::from(v);
        let first = v >> 24;
        // Skip obviously unroutable space: 0/8, 10/8, 127/8, multicast+.
        if first == 0 || first == 10 || first == 127 || first >= 224 {
            continue;
        }
        if !pool.dns_addrs.contains(&addr) {
            return addr;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> TargetPool {
        let dns: Vec<Ipv4Addr> = (0..50).map(|i| Ipv4Addr::new(195, 135, i as u8, 53)).collect();
        let collateral: Vec<Ipv4Addr> =
            (0..10).map(|i| Ipv4Addr::new(195, 135, i as u8, 80)).collect();
        TargetPool::uniform(dns, collateral)
    }

    fn small_config() -> ScheduleConfig {
        let months = Month::new(2020, 11).through(Month::new(2021, 1));
        ScheduleConfig {
            attacks_per_month: vec![2_000; months.len()],
            dns_share_per_month: vec![0.02; months.len()],
            months,
            ..ScheduleConfig::default()
        }
    }

    #[test]
    fn generates_requested_counts_sorted() {
        let sched = AttackScheduler::new(small_config());
        let attacks = sched.generate(&pool(), &RngFactory::new(7));
        assert_eq!(attacks.len(), 6_000);
        assert!(attacks.windows(2).all(|w| w[0].start <= w[1].start));
        // Ids unique.
        let ids: HashSet<u64> = attacks.iter().map(|a| a.id.0).collect();
        assert_eq!(ids.len(), attacks.len());
    }

    #[test]
    fn deterministic_given_seed() {
        let sched = AttackScheduler::new(small_config());
        let a = sched.generate(&pool(), &RngFactory::new(7));
        let b = sched.generate(&pool(), &RngFactory::new(7));
        assert_eq!(a, b);
        let c = sched.generate(&pool(), &RngFactory::new(8));
        assert_ne!(a, c);
    }

    #[test]
    fn dns_share_close_to_config() {
        let sched = AttackScheduler::new(small_config());
        let p = pool();
        let attacks = sched.generate(&p, &RngFactory::new(1));
        let dns_set: HashSet<Ipv4Addr> = p.dns_addrs.iter().copied().collect();
        let coll_set: HashSet<Ipv4Addr> = p.collateral_addrs.iter().copied().collect();
        let dns_related = attacks
            .iter()
            .filter(|a| dns_set.contains(&a.target) || coll_set.contains(&a.target))
            .count();
        let share = dns_related as f64 / attacks.len() as f64;
        assert!((share - 0.02).abs() < 0.005, "share {share}");
    }

    #[test]
    fn attacks_fall_inside_their_month() {
        let cfg = small_config();
        let first = cfg.months[0].start();
        let last = cfg.months.last().unwrap().end();
        let sched = AttackScheduler::new(cfg);
        for a in sched.generate(&pool(), &RngFactory::new(2)) {
            assert!(a.start >= first && a.start < last);
        }
    }

    #[test]
    fn invisible_only_fraction() {
        let sched = AttackScheduler::new(small_config());
        let attacks = sched.generate(&pool(), &RngFactory::new(3));
        let invisible = attacks.iter().filter(|a| !a.telescope_visible()).count();
        let share = invisible as f64 / attacks.len() as f64;
        assert!((share - 0.10).abs() < 0.02, "invisible share {share}");
    }

    #[test]
    fn durations_bimodal_and_bounded() {
        let sched = AttackScheduler::new(small_config());
        let attacks = sched.generate(&pool(), &RngFactory::new(4));
        let mut short = 0;
        let mut hour = 0;
        for a in &attacks {
            let m = a.duration.secs() as f64 / 60.0;
            assert!((1.0..=48.0 * 60.0).contains(&m));
            if (8.0..25.0).contains(&m) {
                short += 1;
            }
            if (40.0..90.0).contains(&m) {
                hour += 1;
            }
        }
        assert!(short > attacks.len() / 5, "15-min mode populated: {short}");
        assert!(hour > attacks.len() / 8, "1-hour mode populated: {hour}");
    }

    #[test]
    fn source_count_calibration() {
        // TransIP December: ≈6.5e9 packets → ≈5.8M sources.
        let s = spoofed_source_count(6.5e9);
        assert!((5_000_000..7_000_000).contains(&s), "source count {s}");
        assert_eq!(spoofed_source_count(0.0), 1);
        assert_eq!(spoofed_source_count(f64::MAX), u32::MAX as u64);
    }

    #[test]
    fn background_targets_avoid_reserved_space() {
        let sched = AttackScheduler::new(small_config());
        let p = pool();
        for a in sched.generate(&p, &RngFactory::new(5)) {
            let first = a.target.octets()[0];
            if !p.dns_addrs.contains(&a.target) && !p.collateral_addrs.contains(&a.target) {
                assert!(first != 0 && first != 10 && first != 127 && first < 224);
            }
        }
    }

    #[test]
    fn campaigns_hit_whole_groups() {
        let mut p = pool();
        // Two provider groups of 3 nameservers each.
        p.dns_groups = vec![p.dns_addrs[0..3].to_vec(), p.dns_addrs[3..6].to_vec()];
        let cfg = ScheduleConfig {
            dns_share_per_month: vec![0.5; 3], // lots of DNS attacks
            campaign_prob: 1.0,                // every group hit becomes a campaign
            ..small_config()
        };
        let sched = AttackScheduler::new(cfg);
        let attacks = sched.generate(&p, &RngFactory::new(31));
        // Campaign attacks come in (start, duration)-aligned sibling sets
        // covering all group members.
        let mut by_start: std::collections::HashMap<(u64, u64), HashSet<Ipv4Addr>> =
            std::collections::HashMap::new();
        for a in &attacks {
            if p.dns_groups[0].contains(&a.target) {
                by_start.entry((a.start.secs(), a.duration.secs())).or_default().insert(a.target);
            }
        }
        let full = by_start.values().filter(|s| s.len() == 3).count();
        assert!(full > 0, "at least one full-group campaign on group 0");
        // Sibling vectors share ports when the campaign is port-53 biased.
        let port53 = attacks
            .iter()
            .filter(|a| p.group_of(a.target).is_some())
            .filter(|a| a.vectors.iter().any(|v| v.ports == vec![53]))
            .count();
        assert!(port53 > 0, "campaigns bias toward port 53");
        // Ids stay unique.
        let ids: HashSet<u64> = attacks.iter().map(|a| a.id.0).collect();
        assert_eq!(ids.len(), attacks.len());
    }

    #[test]
    fn icmp_attacks_have_no_ports() {
        let sched = AttackScheduler::new(small_config());
        for a in sched.generate(&pool(), &RngFactory::new(6)) {
            for v in &a.vectors {
                if v.protocol == Protocol::Icmp {
                    assert!(v.ports.is_empty());
                } else if v.kind == VectorKind::RandomSpoofed {
                    assert!(!v.ports.is_empty());
                    // Ports are distinct.
                    let set: HashSet<u16> = v.ports.iter().copied().collect();
                    assert_eq!(set.len(), v.ports.len());
                }
            }
        }
    }
}
