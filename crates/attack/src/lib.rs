//! DDoS workload generation.
//!
//! Synthesizes the attack population the telescope observes (and the part
//! it cannot observe). Calibrated against the paper's published shapes:
//!
//! - monthly attack volumes and the 0.57–2.12% share aimed at DNS
//!   infrastructure (Table 3);
//! - single-port dominance and the TCP(80) > TCP(53) > TCP(443) port mix
//!   (§6.2, Figure 6);
//! - bimodal durations with modes at 15 minutes and 1 hour (§6.5,
//!   Figure 10);
//! - bimodal telescope-observed intensities with modes near 50 and
//!   6000 packets/minute (§6.4, Figure 9);
//! - multi-vector attacks whose reflection/direct components are invisible
//!   to the telescope (§4.3), which is one reason intensity does not
//!   predict impact.
//!
//! - [`vector`]: attack vectors, protocols and port selection.
//! - [`spec`]: the attack record (target, time span, vectors, rates).
//! - [`schedule`]: the calibrated generator.
//! - [`loadgen`]: conversion of attacks into per-window `(addr, window,
//!   pps)` cells consumed by `dnssim`'s `LoadBook` (kept generic here to
//!   avoid a dependency cycle).

pub mod loadgen;
pub mod schedule;
pub mod spec;
pub mod vector;

pub use loadgen::accumulate_windows;
pub use schedule::{AttackScheduler, ScheduleConfig, TargetPool};
pub use spec::{Attack, AttackId, VectorSpec};
pub use vector::{Protocol, VectorKind};
