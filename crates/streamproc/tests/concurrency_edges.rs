//! Concurrency edge cases of the streaming layer: topic lifecycle misuse,
//! multi-consumer fan-out under threads, panic propagation through stage
//! handles, and worker-pool shutdown on an empty queue.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use streamproc::{sink_to_vec, spawn_pool, spawn_stage, Topic};

#[test]
fn publish_after_close_panics_with_topic_name() {
    let t: Topic<u32> = Topic::new("lifecycle");
    t.publish(1);
    t.close();
    let err = catch_unwind(AssertUnwindSafe(|| t.publish(2))).unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("lifecycle"), "panic names the topic: {msg}");
    assert_eq!(t.published(), 1, "the rejected publish is not counted");
}

#[test]
fn multiple_consumers_each_see_the_full_stream() {
    // Broadcast semantics: every subscriber gets every message, in order,
    // even when the consumers drain concurrently from their own threads.
    let t: Topic<u64> = Topic::new("broadcast");
    let consumers: Vec<_> = (0..4).map(|_| t.subscribe()).collect();
    let drainers: Vec<_> =
        consumers.into_iter().map(|c| thread::spawn(move || c.drain())).collect();
    let producer = {
        let t = t.clone();
        thread::spawn(move || {
            for i in 0..2_000u64 {
                t.publish(i);
            }
            t.close();
        })
    };
    producer.join().unwrap();
    for d in drainers {
        let got = d.join().unwrap();
        assert_eq!(got.len(), 2_000);
        assert!(got.windows(2).all(|w| w[0] + 1 == w[1]), "in publish order");
    }
    assert_eq!(t.published(), 2_000);
}

#[test]
fn stage_panic_propagates_through_join() {
    let src: Topic<u32> = Topic::new("src");
    let out: Topic<u32> = Topic::new("out");
    let stage = spawn_stage("faulty", src.subscribe(), out, |x| {
        if x == 3 {
            panic!("stage choked on {x}");
        }
        vec![x]
    });
    for i in 0..10 {
        src.publish(i);
    }
    src.close();
    let err = catch_unwind(AssertUnwindSafe(move || stage.join())).unwrap_err();
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(msg.contains("stage choked"), "payload survives the handoff: {msg}");
}

#[test]
fn pool_worker_panic_propagates_through_join() {
    let src: Topic<u32> = Topic::new("src");
    let out: Topic<u32> = Topic::new("out");
    let pool = spawn_pool("fragile", 3, src.subscribe(), out, |x| {
        if x == 7 {
            panic!("worker down");
        }
        vec![x]
    });
    for i in 0..32 {
        src.publish(i);
    }
    src.close();
    assert!(catch_unwind(AssertUnwindSafe(move || pool.join())).is_err());
}

#[test]
fn pool_empty_queue_shuts_down_cleanly() {
    // Closing the input before any message arrives must release every
    // blocked worker, close the output, and report zero emissions.
    let src: Topic<u8> = Topic::new("src");
    let out: Topic<u8> = Topic::new("out");
    let pool = spawn_pool("idle", 4, src.subscribe(), out.clone(), |x| vec![x]);
    let sink = sink_to_vec(out.subscribe());
    src.close();
    assert_eq!(pool.join(), 0, "no messages, no emissions");
    assert!(sink.join().unwrap().is_empty(), "output closed and empty");
    assert!(out.is_closed(), "last worker out closed the output topic");
}

#[test]
fn pool_distributes_work_without_duplication_or_loss() {
    // Each message goes to exactly one worker; a per-worker side effect
    // totals exactly the input count.
    let processed = Arc::new(AtomicU64::new(0));
    let src: Topic<u64> = Topic::new("src");
    let out: Topic<u64> = Topic::new("out");
    let pool = {
        let processed = Arc::clone(&processed);
        spawn_pool("count", 4, src.subscribe(), out.clone(), move |x| {
            processed.fetch_add(1, Ordering::Relaxed);
            vec![x]
        })
    };
    let sink = sink_to_vec(out.subscribe());
    for i in 0..5_000 {
        src.publish(i);
    }
    src.close();
    assert_eq!(pool.join(), 5_000);
    assert_eq!(processed.load(Ordering::Relaxed), 5_000, "exactly-once processing");
    let mut got = sink.join().unwrap();
    got.sort();
    assert_eq!(got, (0..5_000).collect::<Vec<_>>());
}
