//! Property tests for the chaos/supervision invariant: for *arbitrary*
//! fault plans, the supervised stream pipeline's sink output equals the
//! fault-free sequential output (dedup + reorder + restart correctness).

use proptest::prelude::*;
use simcore::rng::RngFactory;
use streamproc::fault::{ChaosConfig, FaultPlan};
use streamproc::parallel_map_supervised;
use streamproc::supervise::{reliable_stream, supervised_flat_map, SupervisorConfig};

fn arb_config() -> impl Strategy<Value = ChaosConfig> {
    (0.0f64..0.4, 0.0f64..0.4, 0.0f64..0.4, 1u32..16, 0.0f64..1.0, 0u32..4).prop_map(
        |(drop_prob, dup_prob, hold_prob, max_hold, crash_prob, max_crashes)| ChaosConfig {
            drop_prob,
            dup_prob,
            hold_prob,
            max_hold,
            crash_prob,
            max_crashes,
        },
    )
}

fn fast_supervisor() -> SupervisorConfig {
    SupervisorConfig { backoff_base_ms: 0, ..SupervisorConfig::default() }
}

proptest! {
    #[test]
    fn reliable_stream_always_restores_the_batch(
        plan_seed in 0u64..u64::MAX,
        cfg in arb_config(),
        len in 0usize..200,
    ) {
        let plan = FaultPlan::new(&RngFactory::new(plan_seed), "prop", cfg);
        let items: Vec<u64> = (0..len as u64).collect();
        let (got, _) = reliable_stream("prop", items.clone(), Some(&plan), &fast_supervisor());
        prop_assert_eq!(got, items);
    }

    #[test]
    fn supervised_sink_output_equals_sequential(
        plan_seed in 0u64..u64::MAX,
        cfg in arb_config(),
        items in prop::collection::vec(0u64..1_000_000, 0..120),
        ack_interval in 1u64..32,
    ) {
        let body = |i: u64, x: &u64| -> Vec<u64> {
            // A flat-map with data-dependent arity, so dedup keys are
            // genuinely exercised: 0, 1, or 2 outputs per input.
            match x % 3 {
                0 => vec![],
                1 => vec![i.wrapping_mul(31).wrapping_add(*x)],
                _ => vec![*x, x.wrapping_add(i)],
            }
        };
        let want: Vec<u64> = items
            .iter()
            .enumerate()
            .flat_map(|(i, x)| body(i as u64, x))
            .collect();
        let plan = FaultPlan::new(&RngFactory::new(plan_seed), "prop", cfg);
        let sup = SupervisorConfig { ack_interval, ..fast_supervisor() };
        let (got, _) = supervised_flat_map("prop", items, Some(&plan), &sup, body);
        prop_assert_eq!(got, want);
    }

    #[test]
    fn supervised_parallel_map_is_jobs_and_fault_invariant(
        plan_seed in 0u64..u64::MAX,
        cfg in arb_config(),
        items in prop::collection::vec(0u64..1_000_000, 0..80),
        jobs in 1usize..9,
    ) {
        let plan = FaultPlan::new(&RngFactory::new(plan_seed), "prop-pool", cfg);
        let want: Vec<u64> = items
            .iter()
            .enumerate()
            .map(|(i, x)| x.wrapping_mul(3).wrapping_add(i as u64))
            .collect();
        let (got, _) = parallel_map_supervised(
            jobs,
            items,
            Some(&plan),
            &fast_supervisor(),
            |i, x| x.wrapping_mul(3).wrapping_add(i as u64),
        );
        prop_assert_eq!(got, want);
    }
}
