//! Atomically hot-swappable snapshot cell.
//!
//! The serving pattern the daemon needs: one writer builds a fresh
//! immutable snapshot off to the side and publishes it in one step;
//! readers grab an `Arc` to whatever was last published and keep using it
//! for as long as they like. No reader ever observes a half-applied
//! update, and publication never blocks behind in-flight readers — the
//! lock is held only for the pointer exchange.

use parking_lot::RwLock;
use std::sync::Arc;

/// A cell holding the current published snapshot.
pub struct SwapCell<T> {
    current: RwLock<Arc<T>>,
}

impl<T> SwapCell<T> {
    pub fn new(initial: T) -> SwapCell<T> {
        SwapCell { current: RwLock::new(Arc::new(initial)) }
    }

    /// The snapshot current at the time of the call. The returned `Arc`
    /// stays valid (and unchanged) across later `store`s.
    pub fn load(&self) -> Arc<T> {
        Arc::clone(&self.current.read())
    }

    /// Publish `next` as the current snapshot. Readers that already
    /// loaded the previous snapshot keep it; new loads see `next`.
    pub fn store(&self, next: T) {
        *self.current.write() = Arc::new(next);
    }

    /// Publish an already-shared snapshot without re-wrapping it.
    pub fn store_arc(&self, next: Arc<T>) {
        *self.current.write() = next;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn readers_keep_their_snapshot_across_swaps() {
        let cell = SwapCell::new(vec![1, 2, 3]);
        let before = cell.load();
        cell.store(vec![9]);
        assert_eq!(*before, vec![1, 2, 3], "held snapshot is immutable");
        assert_eq!(*cell.load(), vec![9], "new loads see the swap");
    }

    #[test]
    fn concurrent_loads_see_whole_snapshots_only() {
        // Writer publishes (n, n, n) triples; readers must never observe
        // a mixed triple, whatever the interleaving.
        let cell = Arc::new(SwapCell::new([0u64; 3]));
        let writer = {
            let cell = Arc::clone(&cell);
            thread::spawn(move || {
                for n in 1..=1000u64 {
                    cell.store([n, n, n]);
                }
            })
        };
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || {
                    for _ in 0..1000 {
                        let s = cell.load();
                        assert!(s[0] == s[1] && s[1] == s[2], "torn snapshot: {s:?}");
                    }
                })
            })
            .collect();
        writer.join().unwrap();
        for r in readers {
            r.join().unwrap();
        }
    }
}
