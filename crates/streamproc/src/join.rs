//! Stream-table joins: enrich an event stream against a mutable keyed
//! table (the KTable pattern). This is the primitive behind "join the
//! attack feed with the list of nameservers observed yesterday" in the
//! reactive pipeline.

use crate::exec::StageHandle;
use crate::topic::{Consumer, Topic};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::hash::Hash;
use std::sync::Arc;
use std::thread;

/// A concurrently readable keyed table, updated by a changelog.
pub struct Table<K, V> {
    inner: Arc<RwLock<HashMap<K, V>>>,
}

impl<K, V> Clone for Table<K, V> {
    fn clone(&self) -> Self {
        Table { inner: Arc::clone(&self.inner) }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Table<K, V> {
    pub fn new() -> Table<K, V> {
        Table { inner: Arc::new(RwLock::new(HashMap::new())) }
    }

    /// Apply one changelog entry: `Some(v)` upserts, `None` deletes.
    pub fn apply(&self, key: K, value: Option<V>) {
        let mut map = self.inner.write();
        match value {
            Some(v) => {
                map.insert(key, v);
            }
            None => {
                map.remove(&key);
            }
        }
    }

    pub fn get(&self, key: &K) -> Option<V> {
        self.inner.read().get(key).cloned()
    }

    pub fn len(&self) -> usize {
        self.inner.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.inner.read().is_empty()
    }
}

impl<K: Eq + Hash + Clone, V: Clone> Default for Table<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

/// Spawn a stage that maintains `table` from a changelog stream of
/// `(key, Option<value>)` entries. Returns when the changelog closes.
pub fn spawn_table_maintainer<K, V>(
    name: &str,
    changelog: Consumer<(K, Option<V>)>,
    table: Table<K, V>,
) -> thread::JoinHandle<u64>
where
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    let name = name.to_string();
    thread::Builder::new()
        .name(name)
        .spawn(move || {
            let mut applied = 0;
            while let Some((k, v)) = changelog.recv() {
                table.apply(k, v);
                applied += 1;
            }
            applied
        })
        .expect("spawn table maintainer")
}

/// Spawn a lookup-join stage: each event is joined against the table's
/// *current* contents; hits are published as `(event, value)`, misses are
/// dropped (inner-join semantics, like the paper's "victim IP ∩
/// nameserver list" step).
pub fn spawn_lookup_join<E, K, V>(
    name: &str,
    events: Consumer<E>,
    table: Table<K, V>,
    out: Topic<(E, V)>,
    key_fn: impl Fn(&E) -> K + Send + 'static,
) -> StageHandle
where
    E: Clone + Send + 'static,
    K: Eq + Hash + Clone + Send + Sync + 'static,
    V: Clone + Send + Sync + 'static,
{
    crate::exec::spawn_stage(name, events, out, move |e: E| match table.get(&key_fn(&e)) {
        Some(v) => vec![(e, v)],
        None => vec![],
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::sink_to_vec;

    #[test]
    fn table_upsert_delete() {
        let t: Table<&str, u32> = Table::new();
        assert!(t.is_empty());
        t.apply("a", Some(1));
        t.apply("b", Some(2));
        t.apply("a", Some(3));
        assert_eq!(t.get(&"a"), Some(3));
        assert_eq!(t.len(), 2);
        t.apply("a", None);
        assert_eq!(t.get(&"a"), None);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn inner_join_drops_misses() {
        let table: Table<u32, &str> = Table::new();
        table.apply(1, Some("ns1.example"));
        table.apply(2, Some("ns2.example"));
        let events: Topic<u32> = Topic::new("events");
        let joined: Topic<(u32, &str)> = Topic::new("joined");
        let stage =
            spawn_lookup_join("join", events.subscribe(), table.clone(), joined.clone(), |e| *e);
        let sink = sink_to_vec(joined.subscribe());
        for e in [1, 9, 2, 1, 7] {
            events.publish(e);
        }
        events.close();
        assert_eq!(stage.join(), 3, "two misses dropped");
        assert_eq!(
            sink.join().unwrap(),
            vec![(1, "ns1.example"), (2, "ns2.example"), (1, "ns1.example")]
        );
    }

    #[test]
    fn changelog_driven_table() {
        let table: Table<&str, u32> = Table::new();
        let changelog: Topic<(&str, Option<u32>)> = Topic::new("changelog");
        let maintainer = spawn_table_maintainer("maintain", changelog.subscribe(), table.clone());
        changelog.publish(("x", Some(10)));
        changelog.publish(("y", Some(20)));
        changelog.publish(("x", None));
        changelog.close();
        assert_eq!(maintainer.join().unwrap(), 3);
        assert_eq!(table.get(&"x"), None);
        assert_eq!(table.get(&"y"), Some(20));
    }

    #[test]
    fn join_sees_live_table_updates() {
        // The table changes between events; the join must see the current
        // state (stream-table, not stream-snapshot, semantics). We
        // serialize by processing one event at a time.
        let table: Table<u32, &str> = Table::new();
        let events: Topic<u32> = Topic::new("events");
        let joined: Topic<(u32, &str)> = Topic::new("joined");
        let stage =
            spawn_lookup_join("join", events.subscribe(), table.clone(), joined.clone(), |e| *e);
        let sink = joined.subscribe();

        table.apply(5, Some("old"));
        events.publish(5);
        assert_eq!(sink.recv(), Some((5, "old")));
        table.apply(5, Some("new"));
        events.publish(5);
        assert_eq!(sink.recv(), Some((5, "new")));
        events.close();
        stage.join();
    }
}
