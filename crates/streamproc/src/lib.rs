//! A minimal stream-processing framework.
//!
//! The paper's reactive pipeline runs on Kafka + Spark Structured
//! Streaming + Flume (§4.3.1). This crate substitutes the primitives that
//! pipeline actually needs, in-process:
//!
//! - [`topic`]: multi-subscriber topics over crossbeam channels (the
//!   Kafka role);
//! - [`window`]: keyed tumbling-window aggregation with watermarks (the
//!   Spark Structured Streaming role);
//! - [`exec`]: threaded pipeline stages wiring topics together (the job
//!   graph);
//! - [`join`]: stream-table (KTable-style) lookup joins — the "victim
//!   IP ∩ yesterday's nameserver list" step;
//! - [`pool`]: work-stealing worker pools over `std::thread::scope` —
//!   order-preserving batch fan-out ([`pool::parallel_map`]) and bounded
//!   multi-worker stages ([`pool::spawn_pool`]);
//! - [`fault`]: deterministic seeded fault injection (drops, duplicates,
//!   reordering, late delivery, stage crashes) for chaos runs;
//! - [`supervise`]: bounded-restart supervision and sequence-numbered
//!   at-least-once delivery with idempotent dedup, so chaos runs produce
//!   byte-identical output to fault-free runs;
//! - [`swap`]: an atomically hot-swappable snapshot cell for serving
//!   paths (readers never see a half-applied update);
//! - [`bounded`]: a fixed-capacity admission queue whose overflow is an
//!   explicit, countable shed rather than unbounded growth.
//!
//! Everything is synchronous-thread based — the workload is CPU-light and
//! bursty, which is the regime where plain threads beat an async runtime in
//! simplicity with no throughput loss.

pub mod bounded;
pub mod exec;
pub mod fault;
pub mod join;
pub mod pool;
pub mod supervise;
pub mod swap;
pub mod topic;
pub mod window;

pub use bounded::{BoundedQueue, PushError};
pub use exec::{sink_to_vec, spawn_stage, StageHandle};
pub use fault::{seq_stamp, spawn_chaos_stage, ChaosConfig, FaultAction, FaultPlan, Seq};
pub use join::{spawn_lookup_join, spawn_table_maintainer, Table};
pub use pool::{
    effective_jobs, parallel_map, parallel_map_supervised, shard_ranges, spawn_pool, PoolHandle,
};
pub use supervise::{reliable_stream, supervised_flat_map, SuperviseStats, SupervisorConfig};
pub use swap::SwapCell;
pub use topic::{Consumer, Topic};
pub use window::TumblingWindows;
