//! Work-stealing worker pools over `std::thread::scope`.
//!
//! Two shapes of parallelism, both determinism-friendly:
//!
//! - [`parallel_map`]: run a closure over a batch of items on up to N
//!   worker threads pulling from a shared queue, and return the results
//!   **in input order**. Thread count and scheduling never affect the
//!   output, only the wall clock — callers derive any randomness from
//!   per-item labels/indices (see `simcore::rng::RngFactory`), never from
//!   shared mutable RNG state.
//! - [`spawn_pool`]: a bounded pool of stage workers draining one
//!   [`Consumer`] and publishing to one [`Topic`] — the multi-worker
//!   generalization of [`crate::spawn_stage`]. Output order across workers
//!   is *not* deterministic; use it for throughput paths where the
//!   downstream aggregation is order-insensitive, or re-sort downstream.

use crate::exec::StageHandle;
use crate::fault::{injected_crash, FaultPlan};
use crate::supervise::{SuperviseStats, SupervisorConfig};
use crate::topic::{Consumer, Topic};
use parking_lot::Mutex;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

/// Resolve a requested worker count: `0` means "use the machine's
/// available parallelism" (falling back to 1 if that is unknown).
pub fn effective_jobs(requested: usize) -> usize {
    if requested == 0 {
        thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        requested
    }
}

/// Cut `0..len` into at most `jobs` contiguous shards of equal ceiling
/// size — the canonical batching the columnar join and sweep stages use.
/// Concatenating the ranges in order always reproduces `0..len`, so any
/// per-shard pass that appends its results in shard order is
/// byte-identical to the sequential pass. `jobs == 0` resolves to the
/// machine's parallelism; `len == 0` yields no shards.
pub fn shard_ranges(len: usize, jobs: usize) -> Vec<std::ops::Range<usize>> {
    let jobs = effective_jobs(jobs);
    if len == 0 {
        return Vec::new();
    }
    let shard_len = len.div_ceil(jobs);
    (0..len.div_ceil(shard_len)).map(|i| i * shard_len..((i + 1) * shard_len).min(len)).collect()
}

/// Apply `f` to every item on up to `jobs` worker threads and return the
/// results in input order.
///
/// Workers share a single queue (a locked enumerated iterator): a free
/// worker pops the next `(index, item)`, computes `f(index, item)`, and
/// tags the result with its index. After all workers finish the results
/// are sorted by index, so the returned `Vec` is byte-for-byte the same
/// whatever `jobs` is. `jobs <= 1` takes a plain sequential path with no
/// threads at all. A panic in `f` propagates to the caller once every
/// worker has stopped.
///
/// ```
/// use streamproc::pool::parallel_map;
///
/// let squares = parallel_map(4, (0u64..100).collect(), |_, x| x * x);
/// assert_eq!(squares, (0u64..100).map(|x| x * x).collect::<Vec<_>>());
/// ```
pub fn parallel_map<T, R, F>(jobs: usize, items: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(usize, T) -> R + Sync,
{
    let jobs = effective_jobs(jobs).min(items.len());
    // Out-of-band accounting (see the `obs` crate): everything here lives
    // in the `time.`/`sched.` namespaces excluded from determinism
    // comparisons — callers batch work differently per worker count (e.g.
    // per-`jobs` sharding), so even the task count is jobs-dependent.
    obs::counter("sched.pool.tasks").add(items.len() as u64);
    obs::gauge("sched.pool.jobs_max").record_max(jobs as u64);
    let task_ms = obs::histogram("time.pool.task_ms");
    if jobs <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let start = Instant::now();
                let r = f(i, t);
                task_ms.record(start.elapsed().as_millis() as u64);
                r
            })
            .collect();
    }
    let n = items.len();
    let queue = Mutex::new(items.into_iter().enumerate());
    let results: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(n));
    thread::scope(|scope| {
        for w in 0..jobs {
            let (queue, results, f) = (&queue, &results, &f);
            scope.spawn(move || {
                let mut busy = Duration::ZERO;
                loop {
                    // Pop under the lock, compute outside it.
                    let next = {
                        let mut q = queue.lock();
                        let depth = q.size_hint().0 as u64;
                        let next = q.next();
                        if next.is_some() {
                            obs::histogram("sched.pool.queue_depth").record(depth);
                            if w > 0 {
                                // Any pop by a non-primary worker is work
                                // that a single-threaded run would not
                                // have given away: count it as a steal.
                                obs::counter("sched.pool.steals").incr();
                            }
                        }
                        next
                    };
                    let Some((idx, item)) = next else { break };
                    let start = Instant::now();
                    let r = f(idx, item);
                    let elapsed = start.elapsed();
                    busy += elapsed;
                    task_ms.record(elapsed.as_millis() as u64);
                    results.lock().push((idx, r));
                }
                obs::histogram("time.pool.worker_busy_ms").record(busy.as_millis() as u64);
            });
        }
    });
    let mut tagged = results.into_inner();
    tagged.sort_by_key(|&(i, _)| i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// [`parallel_map`] under supervision: each task runs in a bounded-restart
/// retry loop, with the plan's injected crashes (and any real panic in `f`)
/// caught, backed off exponentially, and retried. The task index — not the
/// worker thread — keys the crash schedule, so the set of injected faults
/// is independent of `jobs`, and because `f` is deterministic per item, the
/// returned `Vec` is byte-identical to `parallel_map`'s for any plan.
///
/// `f` borrows the item (unlike [`parallel_map`]) so a restarted attempt
/// can re-run it. The panic propagates once `cfg.max_restarts` is spent.
pub fn parallel_map_supervised<T, R, F>(
    jobs: usize,
    items: Vec<T>,
    plan: Option<&FaultPlan>,
    cfg: &SupervisorConfig,
    f: F,
) -> (Vec<R>, SuperviseStats)
where
    T: Send + Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let Some(&plan) = plan else {
        let out = parallel_map(jobs, items, |i, t| f(i, &t));
        return (out, SuperviseStats::default());
    };
    let restarts = AtomicU64::new(0);
    let backoff_ms = AtomicU64::new(0);
    let out = parallel_map(jobs, items, |i, t| {
        let planned = plan.planned_crashes(i as u64);
        let mut attempt: u32 = 0;
        loop {
            let r = catch_unwind(AssertUnwindSafe(|| {
                if attempt < planned {
                    obs::trace::emit(
                        obs::EventKind::FaultInjected,
                        "pool",
                        None,
                        None,
                        format!("crash task={i} attempt={attempt}"),
                        None,
                    );
                    injected_crash();
                }
                f(i, &t)
            }));
            match r {
                Ok(v) => return v,
                Err(e) => {
                    if attempt >= cfg.max_restarts {
                        std::panic::resume_unwind(e);
                    }
                    // The restart is the repair of an injected crash; a
                    // real panic being retried is a restart but not a
                    // repaired fault.
                    if e.downcast_ref::<crate::fault::InjectedCrash>().is_some() {
                        obs::counter("chaos.crashes_repaired").incr();
                        obs::counter("chaos.faults_repaired").incr();
                        obs::trace::emit(
                            obs::EventKind::FaultRepaired,
                            "pool",
                            None,
                            None,
                            format!("crash task={i} attempt={attempt}"),
                            None,
                        );
                    }
                    obs::counter("chaos.restarts").incr();
                    restarts.fetch_add(1, Ordering::Relaxed);
                    let backoff = (cfg.backoff_base_ms << attempt.min(16)).min(cfg.backoff_cap_ms);
                    obs::counter("chaos.backoff_ms").add(backoff);
                    backoff_ms.fetch_add(backoff, Ordering::Relaxed);
                    thread::sleep(Duration::from_millis(backoff));
                    attempt += 1;
                }
            }
        }
    });
    let stats = SuperviseStats {
        restarts: restarts.into_inner(),
        backoff_ms: backoff_ms.into_inner(),
        ..SuperviseStats::default()
    };
    (out, stats)
}

/// Handle to a running worker pool (see [`spawn_pool`]).
pub struct PoolHandle {
    name: String,
    handles: Vec<StageHandle>,
}

impl PoolHandle {
    /// Wait for every worker to finish; returns the total number of
    /// messages the pool emitted. Panics (propagates) if any worker
    /// panicked.
    pub fn join(self) -> u64 {
        self.handles.into_iter().map(StageHandle::join).sum()
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    pub fn workers(&self) -> usize {
        self.handles.len()
    }
}

/// Spawn a flat-map stage running on `workers` threads: the workers share
/// `input` (each message is processed by exactly one worker), and each
/// output of `f` is published to `out`. When the input ends and every
/// worker has drained, the last worker out closes `out`.
///
/// `workers == 0` uses the machine's available parallelism;
/// `workers == 1` is exactly [`crate::spawn_stage`] plus the shared-input
/// plumbing. Cross-worker output order is unspecified.
pub fn spawn_pool<I, O, F>(
    name: &str,
    workers: usize,
    input: Consumer<I>,
    out: Topic<O>,
    f: F,
) -> PoolHandle
where
    I: Send + 'static,
    O: Clone + Send + 'static,
    F: Fn(I) -> Vec<O> + Send + Sync + 'static,
{
    let workers = effective_jobs(workers);
    let input = Arc::new(input);
    let f = Arc::new(f);
    let live = Arc::new(AtomicUsize::new(workers));
    let mut handles = Vec::with_capacity(workers);
    for w in 0..workers {
        let worker_name = format!("{name}[{w}/{workers}]");
        let input = Arc::clone(&input);
        let out = out.clone();
        let f = Arc::clone(&f);
        let live = Arc::clone(&live);
        handles.push(StageHandle::spawn(&worker_name, move || {
            let mut emitted = 0u64;
            let task_ms = obs::histogram("time.pool.stage_task_ms");
            while let Some(msg) = input.recv() {
                obs::counter("pool.stage_messages").incr();
                let start = Instant::now();
                for o in f(msg) {
                    out.publish(o);
                    emitted += 1;
                }
                task_ms.record(start.elapsed().as_millis() as u64);
            }
            // Last worker to drain the (now ended) input closes the
            // output so downstream consumers see end-of-stream.
            if live.fetch_sub(1, Ordering::AcqRel) == 1 {
                out.close();
            }
            emitted
        }));
    }
    PoolHandle { name: name.to_string(), handles }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_ranges_tile_the_input() {
        for len in [0usize, 1, 2, 7, 100, 1001] {
            for jobs in [1usize, 2, 3, 8, 64] {
                let shards = shard_ranges(len, jobs);
                assert!(shards.len() <= jobs.max(1), "len={len} jobs={jobs}");
                let flat: Vec<usize> = shards.iter().cloned().flatten().collect();
                assert_eq!(flat, (0..len).collect::<Vec<_>>(), "len={len} jobs={jobs}");
                if let Some(first) = shards.first() {
                    // Equal ceiling-size shards except possibly the last.
                    for s in &shards[..shards.len() - 1] {
                        assert_eq!(s.len(), first.len());
                    }
                }
            }
        }
    }

    #[test]
    fn parallel_map_preserves_input_order() {
        for jobs in [0, 1, 2, 3, 8, 64] {
            let got = parallel_map(jobs, (0u64..500).collect(), |i, x| {
                assert_eq!(i as u64, x);
                x * 3 + 1
            });
            let want: Vec<u64> = (0..500).map(|x| x * 3 + 1).collect();
            assert_eq!(got, want, "jobs={jobs}");
        }
    }

    #[test]
    fn parallel_map_empty_and_single() {
        let empty: Vec<u32> = parallel_map(8, Vec::<u32>::new(), |_, x| x);
        assert!(empty.is_empty());
        assert_eq!(parallel_map(8, vec![7u32], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_more_jobs_than_items() {
        let got = parallel_map(32, vec![1u32, 2, 3], |_, x| x * 10);
        assert_eq!(got, vec![10, 20, 30]);
    }

    #[test]
    fn parallel_map_panic_propagates() {
        let r = std::panic::catch_unwind(|| {
            parallel_map(4, (0u32..64).collect(), |_, x| {
                if x == 33 {
                    panic!("boom at {x}");
                }
                x
            })
        });
        assert!(r.is_err(), "worker panic must reach the caller");
    }

    #[test]
    fn parallel_map_supervised_matches_plain_for_any_jobs() {
        use crate::fault::ChaosConfig;
        use simcore::rng::RngFactory;
        let plan = FaultPlan::new(&RngFactory::new(3), "pool-test", ChaosConfig::CALIBRATED);
        let cfg = SupervisorConfig { backoff_base_ms: 0, ..Default::default() };
        let want: Vec<u64> = (0..200u64).map(|x| x * 7 + 1).collect();
        let mut all_restarts = Vec::new();
        for jobs in [1, 2, 8] {
            let (got, stats) =
                parallel_map_supervised(jobs, (0..200u64).collect(), Some(&plan), &cfg, |_, x| {
                    x * 7 + 1
                });
            assert_eq!(got, want, "jobs={jobs}");
            all_restarts.push(stats.restarts);
        }
        assert!(all_restarts[0] > 0, "calibrated profile crashes some tasks");
        assert!(
            all_restarts.windows(2).all(|w| w[0] == w[1]),
            "injected crash schedule is independent of jobs: {all_restarts:?}"
        );
    }

    #[test]
    fn parallel_map_supervised_exhausted_budget_propagates() {
        use crate::fault::ChaosConfig;
        use simcore::rng::RngFactory;
        let plan = FaultPlan::new(&RngFactory::new(3), "pool-test", ChaosConfig::DISABLED);
        let cfg = SupervisorConfig { max_restarts: 1, backoff_base_ms: 0, ..Default::default() };
        let r = std::panic::catch_unwind(AssertUnwindSafe(|| {
            parallel_map_supervised(2, vec![1u32], Some(&plan), &cfg, |_, _| -> u32 {
                std::panic::resume_unwind(Box::new("real bug"))
            })
        }));
        assert!(r.is_err(), "real panics escape after the restart budget");
    }

    #[test]
    fn pool_shares_work_exactly_once() {
        let src: Topic<u64> = Topic::new("src");
        let out: Topic<u64> = Topic::new("out");
        let pool = spawn_pool("triple", 4, src.subscribe(), out.clone(), |x| vec![x * 3]);
        assert_eq!(pool.workers(), 4);
        let sink = crate::exec::sink_to_vec(out.subscribe());
        for i in 0..1_000 {
            src.publish(i);
        }
        src.close();
        assert_eq!(pool.join(), 1_000, "every input processed exactly once");
        let mut got = sink.join().unwrap();
        got.sort();
        assert_eq!(got, (0..1_000).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn pool_worker_names_enumerate() {
        let src: Topic<u8> = Topic::new("src");
        let out: Topic<u8> = Topic::new("out");
        let pool = spawn_pool("stage", 2, src.subscribe(), out, |x| vec![x]);
        assert_eq!(pool.name(), "stage");
        src.close();
        pool.join();
    }
}
