//! Supervised stages: bounded restarts, at-least-once delivery, idempotent
//! dedup.
//!
//! Recovery is layered the way the paper's stack layers Kafka under Spark
//! (§4.3.1):
//!
//! 1. **Transport repair** ([`reliable_stream`]): records cross a lossy
//!    chaos channel sequence-stamped; the sink dedups and re-orders, detects
//!    gaps, and retransmits the missing sequences in bounded repair rounds.
//!    The final round is fault-free, so delivery always terminates with the
//!    exact input batch, in order.
//! 2. **Stage supervision** ([`supervised_flat_map`]): the stage body runs
//!    in worker incarnations that are restarted (bounded, with exponential
//!    backoff) when they panic — whether the panic is an injected
//!    [`crate::fault::InjectedCrash`] or a real bug. Restarts resume from an
//!    acknowledged input watermark, so any input processed after the last
//!    ack is redelivered; outputs are keyed `(input seq, output index)` and
//!    deduped at the sink, making redelivery idempotent.
//!
//! Together these give the headline invariant: for a deterministic stage
//! body, *fault-free output ≡ faulted-and-recovered output*.

use crate::exec::{sink_to_vec, spawn_stage};
use crate::fault::{injected_crash, spawn_chaos_stage, FaultPlan, Seq};
use crate::topic::Topic;
use simcore::rng::hash_label;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread;
use std::time::Duration;

/// Restart and delivery policy for supervised stages.
#[derive(Clone, Copy, Debug)]
pub struct SupervisorConfig {
    /// Restart budget per stage; the panic propagates once it is exhausted.
    /// Keep `>= ChaosConfig::max_crashes` so injected crashes always recover.
    pub max_restarts: u32,
    /// Exponential backoff between restarts: `base << attempt`, capped.
    pub backoff_base_ms: u64,
    pub backoff_cap_ms: u64,
    /// Advance the ack watermark every N processed inputs. Smaller means
    /// less redelivery after a crash; larger exercises dedup harder.
    pub ack_interval: u64,
    /// Chaos repair rounds before the transport falls back to a fault-free
    /// retransmission, bounding delivery time.
    pub max_repair_rounds: u32,
}

impl Default for SupervisorConfig {
    fn default() -> SupervisorConfig {
        SupervisorConfig {
            max_restarts: 8,
            backoff_base_ms: 1,
            backoff_cap_ms: 16,
            ack_interval: 16,
            max_repair_rounds: 8,
        }
    }
}

/// What the recovery machinery observed and repaired. All counters are
/// deterministic for a given plan + input (they never depend on thread
/// timing), so chaos runs can assert on them.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SuperviseStats {
    /// Records dropped in transit (each retransmitted later).
    pub dropped: u64,
    /// Duplicate deliveries collapsed by sequence-number dedup.
    pub duplicated: u64,
    /// Records that arrived out of order and were re-sequenced.
    pub reordered: u64,
    /// Transport repair rounds that had to retransmit missing sequences.
    pub repair_rounds: u64,
    /// Stage incarnations restarted after a panic.
    pub restarts: u64,
    /// Outputs redelivered by restarted incarnations and deduped away.
    pub redelivered: u64,
    /// Total restart backoff slept, in milliseconds.
    pub backoff_ms: u64,
}

impl SuperviseStats {
    pub fn merge(&mut self, other: &SuperviseStats) {
        self.dropped += other.dropped;
        self.duplicated += other.duplicated;
        self.reordered += other.reordered;
        self.repair_rounds += other.repair_rounds;
        self.restarts += other.restarts;
        self.redelivered += other.redelivered;
        self.backoff_ms += other.backoff_ms;
    }

    /// True when no fault of any kind was observed.
    pub fn is_clean(&self) -> bool {
        *self == SuperviseStats::default()
    }
}

/// Deliver `items` across a chaos transport with at-least-once semantics
/// and return them exactly, in order, plus what it took to get there.
///
/// With `plan: None` this is free: the batch is returned untouched.
pub fn reliable_stream<T>(
    name: &str,
    items: Vec<T>,
    plan: Option<&FaultPlan>,
    cfg: &SupervisorConfig,
) -> (Vec<T>, SuperviseStats)
where
    T: Clone + Send + 'static,
{
    let mut stats = SuperviseStats::default();
    let Some(&plan) = plan else { return (items, stats) };
    let total = items.len();
    let mut received: BTreeMap<u64, T> = BTreeMap::new();
    let mut pending: Vec<Seq<T>> = crate::fault::seq_stamp(items);
    let mut round = 0u64;
    while !pending.is_empty() {
        if round > 0 {
            // This round's retransmission is the repair of the previous
            // round's drops (records dropped again re-inject and get a
            // further round, so the totals balance exactly).
            obs::counter("chaos.drops_repaired").add(pending.len() as u64);
            obs::counter("chaos.faults_repaired").add(pending.len() as u64);
            for m in &pending {
                obs::trace::emit(
                    obs::EventKind::FaultRepaired,
                    name,
                    None,
                    None,
                    format!("drop seq={}", m.seq),
                    None,
                );
            }
        }
        let src: Topic<Seq<T>> = Topic::new(&format!("{name}:replay"));
        let out: Topic<Seq<T>> = Topic::new(&format!("{name}:delivered"));
        // Bounded repair: after `max_repair_rounds` faulty rounds the
        // retransmission is fault-free, so delivery always terminates.
        let stage = if round < cfg.max_repair_rounds as u64 {
            spawn_chaos_stage(name, plan, round, src.subscribe(), out.clone())
        } else {
            spawn_stage(&format!("replay:{name}"), src.subscribe(), out.clone(), |m| vec![m])
        };
        let sink = sink_to_vec(out.subscribe());
        for m in &pending {
            src.publish(m.clone());
        }
        src.close();
        stage.join();
        // Sink-side dedup + re-sequencing.
        let mut high_water = None;
        for m in sink.join().expect("reliable_stream sink") {
            if high_water.is_some_and(|hw| m.seq < hw) {
                stats.reordered += 1;
                obs::counter("chaos.reordered_observed").incr();
            }
            high_water = Some(high_water.map_or(m.seq, |hw: u64| hw.max(m.seq)));
            if received.insert(m.seq, m.payload).is_some() {
                stats.duplicated += 1;
                // Sink-side dedup repairs exactly the duplicate copies the
                // chaos stage injected.
                obs::counter("chaos.dups_repaired").incr();
                obs::counter("chaos.faults_repaired").incr();
                obs::trace::emit(
                    obs::EventKind::FaultRepaired,
                    name,
                    None,
                    None,
                    format!("dup seq={}", m.seq),
                    None,
                );
            }
        }
        // Gap detection: whatever is still missing goes into the next
        // retransmission round.
        pending.retain(|m| !received.contains_key(&m.seq));
        stats.dropped += pending.len() as u64;
        if !pending.is_empty() {
            stats.repair_rounds += 1;
            obs::counter("chaos.retransmit_rounds").incr();
        }
        round += 1;
    }
    debug_assert_eq!(received.len(), total);
    (received.into_values().collect(), stats)
}

/// Run `f` as a supervised flat-map over `items`: input crosses a repaired
/// chaos transport, the stage body is restarted on panics (resuming from
/// the ack watermark), and sequence-keyed outputs are deduped at the sink.
///
/// `f(i, &item)` must be deterministic in `(i, item)` — the usual rule for
/// this codebase — which is what makes redelivery invisible in the output:
/// the returned `Vec` equals `items.iter().enumerate().flat_map(f)` exactly,
/// for any plan.
pub fn supervised_flat_map<I, O, F>(
    name: &str,
    items: Vec<I>,
    plan: Option<&FaultPlan>,
    cfg: &SupervisorConfig,
    f: F,
) -> (Vec<O>, SuperviseStats)
where
    I: Clone + Send + Sync + 'static,
    O: Clone + Send + 'static,
    F: Fn(u64, &I) -> Vec<O> + Send + Sync + 'static,
{
    // Layer 1: repaired transport.
    let (input, mut stats) = reliable_stream(name, items, plan, cfg);
    let input: Arc<Vec<I>> = Arc::new(input);
    let n = input.len() as u64;
    let task = hash_label(name);
    let plan = plan.copied();

    // Layer 2: supervised incarnations feeding a dedup sink.
    let out: Topic<((u64, u32), O)> = Topic::new(&format!("{name}:out"));
    let sink = sink_to_vec(out.subscribe());
    let acked = Arc::new(AtomicU64::new(0));
    let f = Arc::new(f);
    let mut attempt: u32 = 0;
    loop {
        let start = acked.load(Ordering::Acquire);
        let crash_after = plan.and_then(|p| p.crash_point(task, attempt, n - start));
        let worker = {
            let input = Arc::clone(&input);
            let out = out.clone();
            let acked = Arc::clone(&acked);
            let f = Arc::clone(&f);
            let ack_interval = cfg.ack_interval.max(1);
            let site = name.to_string();
            // A raw thread (not StageHandle) so the supervisor sees the
            // panic as a `Result` instead of propagating it.
            thread::Builder::new()
                .name(format!("{name}#{attempt}"))
                .spawn(move || {
                    let mut since_ack = 0u64;
                    for i in start..n {
                        if crash_after == Some(i - start) {
                            obs::trace::emit(
                                obs::EventKind::FaultInjected,
                                &site,
                                None,
                                None,
                                format!("crash attempt={attempt}"),
                                None,
                            );
                            injected_crash();
                        }
                        for (k, o) in f(i, &input[i as usize]).into_iter().enumerate() {
                            out.publish(((i, k as u32), o));
                        }
                        since_ack += 1;
                        if since_ack >= ack_interval {
                            acked.store(i + 1, Ordering::Release);
                            since_ack = 0;
                        }
                    }
                    if crash_after == Some(n - start) {
                        obs::trace::emit(
                            obs::EventKind::FaultInjected,
                            &site,
                            None,
                            None,
                            format!("crash attempt={attempt}"),
                            None,
                        );
                        injected_crash();
                    }
                })
                .expect("spawn supervised stage")
        };
        match worker.join() {
            Ok(()) => break,
            Err(e) => {
                if attempt >= cfg.max_restarts {
                    out.close();
                    std::panic::resume_unwind(e);
                }
                if e.downcast_ref::<crate::fault::InjectedCrash>().is_some() {
                    obs::counter("chaos.crashes_repaired").incr();
                    obs::counter("chaos.faults_repaired").incr();
                    obs::trace::emit(
                        obs::EventKind::FaultRepaired,
                        name,
                        None,
                        None,
                        format!("crash attempt={attempt}"),
                        None,
                    );
                }
                obs::counter("chaos.restarts").incr();
                stats.restarts += 1;
                let backoff = (cfg.backoff_base_ms << attempt.min(16)).min(cfg.backoff_cap_ms);
                stats.backoff_ms += backoff;
                obs::counter("chaos.backoff_ms").add(backoff);
                thread::sleep(Duration::from_millis(backoff));
                attempt += 1;
            }
        }
    }
    out.close();

    // Idempotent dedup: outputs redelivered after a restart collapse onto
    // their (input seq, output index) key, restoring sequential order.
    let mut deduped: BTreeMap<(u64, u32), O> = BTreeMap::new();
    for (key, o) in sink.join().expect("supervised sink") {
        if deduped.insert(key, o).is_some() {
            stats.redelivered += 1;
            obs::counter("chaos.redelivered").incr();
        }
    }
    (deduped.into_values().collect(), stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fault::ChaosConfig;
    use simcore::rng::RngFactory;

    fn plan(cfg: ChaosConfig) -> FaultPlan {
        FaultPlan::new(&RngFactory::new(11), "supervise-test", cfg)
    }

    #[test]
    fn reliable_stream_is_exactly_once_end_to_end() {
        let items: Vec<u64> = (0..700).collect();
        let p = plan(ChaosConfig::CALIBRATED);
        let (got, stats) =
            reliable_stream("t", items.clone(), Some(&p), &SupervisorConfig::default());
        assert_eq!(got, items, "dedup + reorder + retransmit restores the batch");
        assert!(stats.dropped > 0, "chaos actually dropped records: {stats:?}");
        assert!(stats.duplicated > 0);
        assert!(stats.reordered > 0);
        assert!(stats.repair_rounds > 0);
    }

    #[test]
    fn reliable_stream_stats_are_deterministic() {
        let p = plan(ChaosConfig::CALIBRATED);
        let run =
            || reliable_stream("t", (0..300u64).collect(), Some(&p), &SupervisorConfig::default());
        assert_eq!(run(), run());
    }

    #[test]
    fn reliable_stream_without_plan_is_identity() {
        let (got, stats) = reliable_stream("t", vec![1, 2, 3], None, &SupervisorConfig::default());
        assert_eq!(got, vec![1, 2, 3]);
        assert!(stats.is_clean());
    }

    #[test]
    fn reliable_stream_terminates_even_at_full_drop_rate() {
        // Every chaos round drops everything; the bounded fault-free round
        // must still deliver.
        let cfg = ChaosConfig {
            drop_prob: 1.0,
            dup_prob: 0.0,
            hold_prob: 0.0,
            max_hold: 0,
            crash_prob: 0.0,
            max_crashes: 0,
        };
        let p = plan(cfg);
        let sup = SupervisorConfig { max_repair_rounds: 3, ..SupervisorConfig::default() };
        let (got, stats) = reliable_stream("t", (0..50u32).collect(), Some(&p), &sup);
        assert_eq!(got, (0..50).collect::<Vec<u32>>());
        assert_eq!(stats.repair_rounds, 3);
        assert_eq!(stats.dropped, 150);
    }

    #[test]
    fn supervised_flat_map_equals_sequential_under_chaos() {
        let items: Vec<u64> = (0..400).collect();
        let body = |i: u64, x: &u64| vec![i * 1000 + x, i * 1000 + x + 1];
        let want: Vec<u64> =
            items.iter().enumerate().flat_map(|(i, x)| body(i as u64, x)).collect();
        let p = plan(ChaosConfig::CALIBRATED);
        let (got, stats) =
            supervised_flat_map("t", items, Some(&p), &SupervisorConfig::default(), body);
        assert_eq!(got, want, "recovered output equals fault-free output");
        assert!(stats.restarts > 0, "the calibrated profile crashes this stage: {stats:?}");
    }

    #[test]
    fn supervised_flat_map_without_plan_is_plain_flat_map() {
        let (got, stats) = supervised_flat_map(
            "t",
            vec![10u64, 20, 30],
            None,
            &SupervisorConfig::default(),
            |_, x| vec![x * 2],
        );
        assert_eq!(got, vec![20, 40, 60]);
        assert!(stats.is_clean());
    }

    #[test]
    fn restart_budget_exhaustion_propagates_the_panic() {
        // A body that always really panics must eventually escape, even
        // under supervision.
        let cfg = SupervisorConfig { max_restarts: 2, backoff_base_ms: 0, ..Default::default() };
        let r = std::panic::catch_unwind(|| {
            supervised_flat_map("t", vec![1u32], None, &cfg, |_, _: &u32| -> Vec<u32> {
                std::panic::resume_unwind(Box::new("real bug"))
            })
        });
        assert!(r.is_err(), "panic escapes after the restart budget");
    }

    #[test]
    fn restarts_resume_from_ack_watermark() {
        // Tight ack interval + forced crashes: output still exact.
        let chaos = ChaosConfig { crash_prob: 1.0, max_crashes: 2, ..ChaosConfig::DISABLED };
        let p = plan(chaos);
        let sup = SupervisorConfig { ack_interval: 4, backoff_base_ms: 0, ..Default::default() };
        let items: Vec<u64> = (0..100).collect();
        let (got, stats) = supervised_flat_map("t", items.clone(), Some(&p), &sup, |_, x| vec![*x]);
        assert_eq!(got, items);
        assert_eq!(stats.restarts, p.planned_crashes(hash_label("t")) as u64);
    }
}
