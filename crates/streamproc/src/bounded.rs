//! Bounded MPMC work queue with non-blocking admission.
//!
//! The backpressure primitive for serving paths: producers `try_push` and
//! get an immediate `Err` back when the queue is at capacity (the caller
//! sheds the work — visibly — instead of queueing without bound), while
//! consumers block on `pop` until work or shutdown arrives. Unlike the
//! [`crate::topic`] channels, which are unbounded by design (pipeline
//! stages must never silently drop records), this queue exists precisely
//! to make overload an explicit, countable event.

use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};

/// Queue rejected the item: capacity reached (the item comes back) or the
/// queue was already shut down.
#[derive(Debug, PartialEq, Eq)]
pub enum PushError<T> {
    Full(T),
    Closed(T),
}

struct Inner<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A fixed-capacity queue shared between an admission side and a worker
/// pool. `Default`s are deliberately absent: capacity is a policy choice.
pub struct BoundedQueue<T> {
    inner: Mutex<Inner<T>>,
    ready: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    pub fn new(capacity: usize) -> BoundedQueue<T> {
        assert!(capacity > 0, "a zero-capacity queue sheds everything");
        BoundedQueue {
            inner: Mutex::new(Inner { items: VecDeque::with_capacity(capacity), closed: false }),
            ready: Condvar::new(),
            capacity,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Admit `item`, or hand it back immediately if the queue is full or
    /// closed. Never blocks.
    pub fn try_push(&self, item: T) -> Result<(), PushError<T>> {
        let mut inner = self.lock();
        if inner.closed {
            return Err(PushError::Closed(item));
        }
        if inner.items.len() >= self.capacity {
            return Err(PushError::Full(item));
        }
        inner.items.push_back(item);
        drop(inner);
        self.ready.notify_one();
        Ok(())
    }

    /// Block until an item is available or the queue is closed *and*
    /// drained. `None` means "no more work will ever arrive" — already
    /// admitted items are always delivered before that, so admission
    /// accounting stays exact across shutdown.
    pub fn pop(&self) -> Option<T> {
        let mut inner = self.lock();
        loop {
            if let Some(item) = inner.items.pop_front() {
                return Some(item);
            }
            if inner.closed {
                return None;
            }
            inner = self.ready.wait(inner).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Stop admitting; wake every blocked consumer. Queued items still
    /// drain through `pop`.
    pub fn close(&self) {
        self.lock().closed = true;
        self.ready.notify_all();
    }

    pub fn len(&self) -> usize {
        self.lock().items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.lock().items.is_empty()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, Inner<T>> {
        // A consumer that panicked mid-pop leaves the queue consistent —
        // the guard only ever observes complete push/pop effects.
        self.inner.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn overflow_hands_the_item_back() {
        let q = BoundedQueue::new(2);
        q.try_push(1).unwrap();
        q.try_push(2).unwrap();
        assert_eq!(q.try_push(3), Err(PushError::Full(3)));
        assert_eq!(q.pop(), Some(1));
        q.try_push(3).unwrap();
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn close_drains_admitted_items_then_ends() {
        let q = BoundedQueue::new(4);
        q.try_push("a").unwrap();
        q.try_push("b").unwrap();
        q.close();
        assert_eq!(q.try_push("c"), Err(PushError::Closed("c")));
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn admission_accounting_is_exact_under_concurrency() {
        let q = Arc::new(BoundedQueue::new(8));
        let workers: Vec<_> = (0..4)
            .map(|_| {
                let q = Arc::clone(&q);
                thread::spawn(move || {
                    let mut got = 0u64;
                    while q.pop().is_some() {
                        got += 1;
                    }
                    got
                })
            })
            .collect();
        let mut admitted = 0u64;
        let mut shed = 0u64;
        for i in 0..10_000u64 {
            match q.try_push(i) {
                Ok(()) => admitted += 1,
                Err(PushError::Full(_)) => shed += 1,
                Err(PushError::Closed(_)) => unreachable!("queue not closed yet"),
            }
        }
        q.close();
        let consumed: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
        assert_eq!(admitted + shed, 10_000, "every attempt is accounted for");
        assert_eq!(consumed, admitted, "every admitted item is consumed");
    }
}
