//! Deterministic fault injection ("chaos") for stream stages.
//!
//! The paper's production pipeline (Kafka + Spark + Flume, §4.3.1) is built
//! on the assumption that telemetry transport is lossy: records drop, arrive
//! twice, arrive out of order or long after their window's watermark, and
//! whole stages crash. This module injects exactly those faults — but
//! *deterministically*, from a [`FaultPlan`] derived off the experiment's
//! [`RngFactory`] — so a chaos run is reproducible bit-for-bit and the
//! recovery machinery in [`crate::supervise`] can be held to the invariant
//! *fault-free output ≡ faulted-and-recovered output*.
//!
//! Every fault decision is a pure function of `(plan seed, round, sequence
//! number)` or `(plan seed, task, attempt)` — never of thread timing — which
//! is what makes the injected schedule independent of `--jobs`.

use crate::exec::StageHandle;
use crate::topic::{Consumer, Topic};
use simcore::rng::{hash_label, splitmix64, RngFactory};

/// A sequence-numbered envelope: the unit of at-least-once delivery.
///
/// Sequence numbers are assigned once, at the stream source, and survive
/// duplication/reordering so sinks can dedup and restore order.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Seq<T> {
    pub seq: u64,
    pub payload: T,
}

/// Stamp a batch with consecutive sequence numbers starting at 0.
pub fn seq_stamp<T>(items: impl IntoIterator<Item = T>) -> Vec<Seq<T>> {
    items.into_iter().enumerate().map(|(i, payload)| Seq { seq: i as u64, payload }).collect()
}

/// What the chaos layer does to one delivered record.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultAction {
    /// Deliver normally.
    Deliver,
    /// Drop on the floor (a repair round must retransmit it).
    Drop,
    /// Deliver twice back-to-back (sinks must dedup).
    Duplicate,
    /// Hold back until `lag` further records have passed, then deliver late
    /// — past the watermark if the stream ends first.
    Hold(u32),
}

/// Fault intensity knobs. All probabilities are per-record (or per-attempt
/// for `crash_prob`).
#[derive(Clone, Copy, Debug)]
pub struct ChaosConfig {
    pub drop_prob: f64,
    pub dup_prob: f64,
    pub hold_prob: f64,
    /// Maximum records a held message waits before late delivery.
    pub max_hold: u32,
    /// Probability that a stage incarnation is crashed before finishing.
    pub crash_prob: f64,
    /// Hard cap on planned crashes per task, so the supervisor's bounded
    /// restart budget always suffices and chaos runs always terminate.
    pub max_crashes: u32,
}

impl ChaosConfig {
    /// No faults at all (a plan with this config is a no-op).
    pub const DISABLED: ChaosConfig = ChaosConfig {
        drop_prob: 0.0,
        dup_prob: 0.0,
        hold_prob: 0.0,
        max_hold: 0,
        crash_prob: 0.0,
        max_crashes: 0,
    };

    /// The default intensity for stream transports and coarse-grained task
    /// sets (e.g. the experiment catalog): every fault class fires visibly
    /// on streams of a few hundred records.
    pub const CALIBRATED: ChaosConfig = ChaosConfig {
        drop_prob: 0.06,
        dup_prob: 0.06,
        hold_prob: 0.08,
        max_hold: 12,
        crash_prob: 0.6,
        max_crashes: 2,
    };

    /// A sparse profile for very large task sets (e.g. per-cell measurement
    /// tasks), where per-task restart backoff would otherwise dominate the
    /// wall clock.
    pub const SPARSE: ChaosConfig = ChaosConfig {
        drop_prob: 0.02,
        dup_prob: 0.02,
        hold_prob: 0.03,
        max_hold: 8,
        crash_prob: 0.01,
        max_crashes: 1,
    };
}

/// A deterministic schedule of faults for one named stage/transport.
///
/// The plan is `Copy` and carries only a seed + config; all decisions are
/// recomputed on demand from hashes, so plans can be shared freely across
/// worker threads without any state.
#[derive(Clone, Copy, Debug)]
pub struct FaultPlan {
    seed: u64,
    pub cfg: ChaosConfig,
}

impl FaultPlan {
    /// Derive the plan for the stage named `stage` from an experiment RNG
    /// factory. Distinct stages get independent fault schedules.
    pub fn new(rngs: &RngFactory, stage: &str, cfg: ChaosConfig) -> FaultPlan {
        FaultPlan { seed: rngs.fork_indexed("chaos", hash_label(stage)).seed(), cfg }
    }

    /// Convenience: derive from a bare chaos seed (the `--chaos-seed` flag).
    pub fn from_seed(chaos_seed: u64, stage: &str, cfg: ChaosConfig) -> FaultPlan {
        FaultPlan::new(&RngFactory::new(chaos_seed), stage, cfg)
    }

    /// A sub-plan for the `idx`-th logical sub-stream of this stage.
    pub fn for_substream(&self, idx: u64) -> FaultPlan {
        FaultPlan {
            seed: RngFactory::new(self.seed).fork_indexed("chaos-substream", idx).seed(),
            cfg: self.cfg,
        }
    }

    /// A uniform draw in `[0, 1)`, pure in `(seed, tag, a, b)`.
    fn unit(&self, tag: u64, a: u64, b: u64) -> f64 {
        let mut s = self.seed
            ^ tag
            ^ a.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ b.wrapping_mul(0xE703_7ED1_A0B4_28DB);
        (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64
    }

    /// The fault applied to sequence number `seq` during delivery round
    /// `round` (repair rounds re-roll, so a record dropped in round 0 is
    /// usually delivered in round 1).
    pub fn action(&self, round: u64, seq: u64) -> FaultAction {
        let c = self.cfg;
        let u = self.unit(hash_label("action"), round, seq);
        if u < c.drop_prob {
            FaultAction::Drop
        } else if u < c.drop_prob + c.dup_prob {
            FaultAction::Duplicate
        } else if u < c.drop_prob + c.dup_prob + c.hold_prob && c.max_hold > 0 {
            let lag = 1 + (self.unit(hash_label("hold"), round, seq) * c.max_hold as f64) as u32;
            FaultAction::Hold(lag)
        } else {
            FaultAction::Deliver
        }
    }

    /// How many incarnations of logical task `task` are crashed before one
    /// is allowed to finish. Always `<= cfg.max_crashes`, so a supervisor
    /// with `max_restarts >= max_crashes` is guaranteed to terminate.
    pub fn planned_crashes(&self, task: u64) -> u32 {
        let mut n = 0;
        while n < self.cfg.max_crashes
            && self.unit(hash_label("crash"), task, n as u64) < self.cfg.crash_prob
        {
            n += 1;
        }
        n
    }

    /// For incarnation `attempt` of `task` over `remaining` inputs: the
    /// number of inputs processed before the injected panic, or `None` if
    /// this incarnation runs to completion.
    pub fn crash_point(&self, task: u64, attempt: u32, remaining: u64) -> Option<u64> {
        if attempt >= self.planned_crashes(task) {
            return None;
        }
        let u = self.unit(hash_label("crash-point"), task ^ remaining, attempt as u64);
        Some((u * (remaining + 1) as f64) as u64)
    }
}

/// Marker payload carried by injected panics, so supervisors (and tests)
/// can tell a planned chaos crash from a real stage failure.
#[derive(Clone, Copy, Debug)]
pub struct InjectedCrash;

/// Unwind with an [`InjectedCrash`] payload. Uses `resume_unwind` rather
/// than `panic!` so the process-global panic hook stays quiet — injected
/// crashes are expected and would otherwise spam stderr on every chaos run.
pub fn injected_crash() -> ! {
    obs::counter("chaos.crashes_injected").incr();
    obs::counter("chaos.faults_injected").incr();
    std::panic::resume_unwind(Box::new(InjectedCrash))
}

/// Spawn a chaos transport stage: applies the plan's per-record fault
/// actions to a sequence-stamped stream. Held records are delivered late
/// (after `lag` subsequent deliveries, or at end-of-stream past the
/// watermark); drops simply vanish, for a repair round to retransmit.
///
/// The stage is single-threaded and keyed purely by `(round, seq)`, so its
/// output for a given input batch is deterministic.
pub fn spawn_chaos_stage<T>(
    name: &str,
    plan: FaultPlan,
    round: u64,
    input: Consumer<Seq<T>>,
    out: Topic<Seq<T>>,
) -> StageHandle
where
    T: Clone + Send + 'static,
{
    let site = name.to_string();
    StageHandle::spawn(&format!("chaos:{name}"), move || {
        // Fault accounting (out-of-band, see `obs`): injections counted
        // here at the moment each fault is applied; repairs counted where
        // the recovery machinery undoes them — holds at release (below),
        // drops at retransmission, duplicates at sink dedup, crashes at
        // supervisor restart. For a completed run every class balances, so
        // `chaos.faults_repaired == chaos.faults_injected` exactly. Trace
        // events mirror the counters with matching detail keys, so
        // `obs::trace::check_causality` can pair each injection with its
        // repair per `(site, detail)`.
        let injected = obs::counter("chaos.faults_injected");
        let repaired = obs::counter("chaos.faults_repaired");
        let mut emitted = 0u64;
        let mut held: Vec<(u32, Seq<T>)> = Vec::new();
        while let Some(msg) = input.recv() {
            match plan.action(round, msg.seq) {
                FaultAction::Deliver => {
                    out.publish(msg);
                    emitted += 1;
                }
                FaultAction::Drop => {
                    obs::counter("chaos.drops_injected").incr();
                    injected.incr();
                    obs::trace::emit(
                        obs::EventKind::FaultInjected,
                        &site,
                        None,
                        None,
                        format!("drop seq={}", msg.seq),
                        None,
                    );
                }
                FaultAction::Duplicate => {
                    obs::counter("chaos.dups_injected").incr();
                    injected.incr();
                    obs::trace::emit(
                        obs::EventKind::FaultInjected,
                        &site,
                        None,
                        None,
                        format!("dup seq={}", msg.seq),
                        None,
                    );
                    out.publish(msg.clone());
                    out.publish(msg);
                    emitted += 2;
                }
                FaultAction::Hold(lag) => {
                    obs::counter("chaos.holds_injected").incr();
                    injected.incr();
                    obs::trace::emit(
                        obs::EventKind::FaultInjected,
                        &site,
                        None,
                        None,
                        format!("hold seq={}", msg.seq),
                        Some(lag as u64),
                    );
                    held.push((lag, msg));
                }
            }
            // Age held records; release the due ones (late, out of order).
            let mut due = Vec::new();
            held.retain_mut(|h| {
                h.0 -= 1;
                if h.0 == 0 {
                    due.push(h.1.clone());
                    false
                } else {
                    true
                }
            });
            for m in due {
                obs::counter("chaos.holds_repaired").incr();
                repaired.incr();
                obs::trace::emit(
                    obs::EventKind::FaultRepaired,
                    &site,
                    None,
                    None,
                    format!("hold seq={}", m.seq),
                    None,
                );
                out.publish(m);
                emitted += 1;
            }
        }
        // End of input: whatever is still held arrives past the stream's
        // watermark, in (remaining lag, seq) order.
        held.sort_by_key(|(lag, m)| (*lag, m.seq));
        for (_, m) in held {
            obs::counter("chaos.holds_repaired").incr();
            repaired.incr();
            obs::trace::emit(
                obs::EventKind::FaultRepaired,
                &site,
                None,
                None,
                format!("hold seq={}", m.seq),
                None,
            );
            out.publish(m);
            emitted += 1;
        }
        out.close();
        emitted
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::sink_to_vec;

    fn plan(cfg: ChaosConfig) -> FaultPlan {
        FaultPlan::new(&RngFactory::new(7), "test-stage", cfg)
    }

    #[test]
    fn actions_are_deterministic_and_varied() {
        let p = plan(ChaosConfig::CALIBRATED);
        let a: Vec<FaultAction> = (0..500).map(|s| p.action(0, s)).collect();
        let b: Vec<FaultAction> = (0..500).map(|s| p.action(0, s)).collect();
        assert_eq!(a, b, "same plan, same decisions");
        assert!(a.contains(&FaultAction::Drop));
        assert!(a.contains(&FaultAction::Duplicate));
        assert!(a.iter().any(|x| matches!(x, FaultAction::Hold(_))));
        assert!(a.contains(&FaultAction::Deliver));
        // Repair rounds re-roll: round 1 differs from round 0.
        let r1: Vec<FaultAction> = (0..500).map(|s| p.action(1, s)).collect();
        assert_ne!(a, r1);
    }

    #[test]
    fn distinct_stages_get_distinct_schedules() {
        let rngs = RngFactory::new(7);
        let a = FaultPlan::new(&rngs, "stage-a", ChaosConfig::CALIBRATED);
        let b = FaultPlan::new(&rngs, "stage-b", ChaosConfig::CALIBRATED);
        let sa: Vec<FaultAction> = (0..200).map(|s| a.action(0, s)).collect();
        let sb: Vec<FaultAction> = (0..200).map(|s| b.action(0, s)).collect();
        assert_ne!(sa, sb);
    }

    #[test]
    fn planned_crashes_are_bounded() {
        let p = plan(ChaosConfig::CALIBRATED);
        for task in 0..200 {
            let c = p.planned_crashes(task);
            assert!(c <= ChaosConfig::CALIBRATED.max_crashes);
            // Crash points exist exactly for attempts below the planned count.
            for attempt in 0..c {
                assert!(p.crash_point(task, attempt, 50).is_some());
            }
            assert!(p.crash_point(task, c, 50).is_none());
        }
        assert!(
            (0..200).any(|t| p.planned_crashes(t) > 0),
            "calibrated profile crashes some tasks"
        );
    }

    #[test]
    fn disabled_config_is_a_no_op() {
        let p = plan(ChaosConfig::DISABLED);
        assert!((0..1000).all(|s| p.action(0, s) == FaultAction::Deliver));
        assert!((0..1000).all(|t| p.planned_crashes(t) == 0));
    }

    #[test]
    fn chaos_stage_drops_dups_and_reorders_deterministically() {
        let run = || {
            let p = plan(ChaosConfig::CALIBRATED);
            let src: Topic<Seq<u64>> = Topic::new("src");
            let out: Topic<Seq<u64>> = Topic::new("out");
            let stage = spawn_chaos_stage("t", p, 0, src.subscribe(), out.clone());
            let sink = sink_to_vec(out.subscribe());
            for m in seq_stamp(0..400u64) {
                src.publish(m);
            }
            src.close();
            stage.join();
            sink.join().unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "chaos stage output is reproducible");
        let seqs: Vec<u64> = a.iter().map(|m| m.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort();
        sorted.dedup();
        assert!(sorted.len() < 400, "some records dropped");
        assert!(seqs.len() > sorted.len(), "some records duplicated");
        assert!(seqs.windows(2).any(|w| w[0] > w[1]), "some records reordered");
        // Payloads survive intact.
        assert!(a.iter().all(|m| m.payload == m.seq));
    }

    #[test]
    fn held_records_flush_at_end_of_stream() {
        // With hold probability 1 everything is held and must still come out.
        let cfg = ChaosConfig {
            drop_prob: 0.0,
            dup_prob: 0.0,
            hold_prob: 1.0,
            max_hold: 100,
            crash_prob: 0.0,
            max_crashes: 0,
        };
        let p = plan(cfg);
        let src: Topic<Seq<u32>> = Topic::new("src");
        let out: Topic<Seq<u32>> = Topic::new("out");
        let stage = spawn_chaos_stage("t", p, 0, src.subscribe(), out.clone());
        let sink = sink_to_vec(out.subscribe());
        for m in seq_stamp(0..20u32) {
            src.publish(m);
        }
        src.close();
        stage.join();
        let mut got: Vec<u64> = sink.join().unwrap().iter().map(|m| m.seq).collect();
        got.sort();
        assert_eq!(got, (0..20).collect::<Vec<u64>>(), "nothing lost to the watermark");
    }
}
