//! Threaded pipeline stages: consume one topic, produce another.

use crate::topic::{Consumer, Topic};
use std::thread::{self, JoinHandle};

/// Handle to a running stage thread.
pub struct StageHandle {
    name: String,
    handle: JoinHandle<u64>,
}

impl StageHandle {
    /// Run `body` on a named thread and hand back its handle. `body`
    /// returns the number of messages the stage emitted.
    pub fn spawn<F>(name: &str, body: F) -> StageHandle
    where
        F: FnOnce() -> u64 + Send + 'static,
    {
        let name = name.to_string();
        let handle =
            thread::Builder::new().name(name.clone()).spawn(body).expect("spawn stage thread");
        StageHandle { name, handle }
    }

    /// Wait for the stage to finish; returns the number of messages it
    /// emitted. Panics (propagates) if the stage thread panicked.
    pub fn join(self) -> u64 {
        match self.handle.join() {
            Ok(n) => n,
            Err(e) => std::panic::resume_unwind(e),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }
}

/// Spawn a flat-map stage: for every input message, `f` returns zero or
/// more output messages published to `out`. When the input ends, `out` is
/// closed.
pub fn spawn_stage<I, O, F>(name: &str, input: Consumer<I>, out: Topic<O>, mut f: F) -> StageHandle
where
    I: Send + 'static,
    O: Clone + Send + 'static,
    F: FnMut(I) -> Vec<O> + Send + 'static,
{
    StageHandle::spawn(name, move || {
        let mut emitted = 0u64;
        while let Some(msg) = input.recv() {
            for o in f(msg) {
                out.publish(o);
                emitted += 1;
            }
        }
        out.close();
        emitted
    })
}

/// Spawn a sink that collects everything into a `Vec`, returned by the
/// join handle.
pub fn sink_to_vec<T: Send + 'static>(input: Consumer<T>) -> JoinHandle<Vec<T>> {
    thread::spawn(move || input.drain())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn two_stage_pipeline() {
        let src: Topic<u32> = Topic::new("src");
        let mid: Topic<u32> = Topic::new("mid");
        let out: Topic<String> = Topic::new("out");

        let s1 = spawn_stage("double-evens", src.subscribe(), mid.clone(), |x| {
            if x % 2 == 0 {
                vec![x * 2]
            } else {
                vec![]
            }
        });
        let s2 = spawn_stage("stringify", mid.subscribe(), out.clone(), |x| vec![format!("v{x}")]);
        let sink = sink_to_vec(out.subscribe());

        for i in 0..10 {
            src.publish(i);
        }
        src.close();

        assert_eq!(s1.join(), 5);
        assert_eq!(s2.join(), 5);
        let got = sink.join().unwrap();
        assert_eq!(got, vec!["v0", "v4", "v8", "v12", "v16"]);
    }

    #[test]
    fn fan_out_stage_multiplies() {
        let src: Topic<u32> = Topic::new("src");
        let out: Topic<u32> = Topic::new("out");
        let s = spawn_stage("explode", src.subscribe(), out.clone(), |x| vec![x; 3]);
        let sink = sink_to_vec(out.subscribe());
        src.publish(7);
        src.close();
        assert_eq!(s.join(), 3);
        assert_eq!(sink.join().unwrap(), vec![7, 7, 7]);
    }

    #[test]
    fn empty_input_closes_output() {
        let src: Topic<u32> = Topic::new("src");
        let out: Topic<u32> = Topic::new("out");
        let s = spawn_stage("noop", src.subscribe(), out.clone(), |x| vec![x]);
        let sink = sink_to_vec(out.subscribe());
        src.close();
        assert_eq!(s.join(), 0);
        assert!(sink.join().unwrap().is_empty());
    }

    #[test]
    fn stage_name_is_kept() {
        let src: Topic<u32> = Topic::new("src");
        let out: Topic<u32> = Topic::new("out");
        let s = spawn_stage("my-stage", src.subscribe(), out, |x| vec![x]);
        assert_eq!(s.name(), "my-stage");
        src.close();
        s.join();
    }
}
