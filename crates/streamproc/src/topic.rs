//! Multi-subscriber topics: every message published reaches every consumer
//! subscribed at publish time, in publish order.

use crossbeam::channel::{unbounded, Receiver, Sender, TryRecvError};
use parking_lot::Mutex;
use std::sync::Arc;

struct TopicInner<T> {
    subs: Vec<Sender<T>>,
    closed: bool,
    published: u64,
}

/// A named, multi-subscriber, in-order message topic.
///
/// ```
/// use streamproc::Topic;
///
/// let topic: Topic<u32> = Topic::new("events");
/// let consumer = topic.subscribe();
/// topic.publish(1);
/// topic.publish(2);
/// topic.close();
/// assert_eq!(consumer.drain(), vec![1, 2]);
/// ```
pub struct Topic<T> {
    name: String,
    inner: Arc<Mutex<TopicInner<T>>>,
}

impl<T> Clone for Topic<T> {
    fn clone(&self) -> Self {
        Topic { name: self.name.clone(), inner: Arc::clone(&self.inner) }
    }
}

/// A subscription handle.
pub struct Consumer<T> {
    rx: Receiver<T>,
}

/// The topic closed and all buffered messages were consumed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct EndOfStream;

impl<T: Clone> Topic<T> {
    pub fn new(name: &str) -> Topic<T> {
        Topic {
            name: name.to_string(),
            inner: Arc::new(Mutex::new(TopicInner {
                subs: Vec::new(),
                closed: false,
                published: 0,
            })),
        }
    }

    pub fn name(&self) -> &str {
        &self.name
    }

    /// Subscribe; only messages published *after* this call are delivered.
    pub fn subscribe(&self) -> Consumer<T> {
        let (tx, rx) = unbounded();
        self.inner.lock().subs.push(tx);
        Consumer { rx }
    }

    /// Publish to all current subscribers. Returns the number of consumers
    /// that received the message. Panics if the topic is closed.
    pub fn publish(&self, msg: T) -> usize {
        let mut inner = self.inner.lock();
        assert!(!inner.closed, "publish on closed topic '{}'", self.name);
        inner.published += 1;
        // Drop subscribers whose consumer side is gone.
        inner.subs.retain(|tx| tx.send(msg.clone()).is_ok());
        inner.subs.len()
    }

    /// Close the topic: consumers drain remaining messages then see
    /// end-of-stream.
    pub fn close(&self) {
        let mut inner = self.inner.lock();
        inner.closed = true;
        inner.subs.clear(); // dropping senders ends the channels
    }

    /// Total messages published so far.
    pub fn published(&self) -> u64 {
        self.inner.lock().published
    }

    pub fn is_closed(&self) -> bool {
        self.inner.lock().closed
    }
}

impl<T> Consumer<T> {
    /// Blocking receive; `None` at end-of-stream.
    pub fn recv(&self) -> Option<T> {
        self.rx.recv().ok()
    }

    /// Non-blocking receive; `Ok(None)` when currently empty,
    /// `Err(EndOfStream)` once the topic closed and drained.
    pub fn try_recv(&self) -> Result<Option<T>, EndOfStream> {
        match self.rx.try_recv() {
            Ok(v) => Ok(Some(v)),
            Err(TryRecvError::Empty) => Ok(None),
            Err(TryRecvError::Disconnected) => Err(EndOfStream),
        }
    }

    /// Drain everything until end-of-stream (blocks until the topic
    /// closes).
    pub fn drain(&self) -> Vec<T> {
        let mut out = Vec::new();
        while let Some(v) = self.recv() {
            out.push(v);
        }
        out
    }

    pub fn len(&self) -> usize {
        self.rx.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rx.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn fan_out_in_order() {
        let t: Topic<u32> = Topic::new("numbers");
        let a = t.subscribe();
        let b = t.subscribe();
        for i in 0..100 {
            assert_eq!(t.publish(i), 2);
        }
        t.close();
        assert_eq!(a.drain(), (0..100).collect::<Vec<_>>());
        assert_eq!(b.drain(), (0..100).collect::<Vec<_>>());
        assert_eq!(t.published(), 100);
    }

    #[test]
    fn late_subscriber_misses_history() {
        let t: Topic<u32> = Topic::new("t");
        let early = t.subscribe();
        t.publish(1);
        let late = t.subscribe();
        t.publish(2);
        t.close();
        assert_eq!(early.drain(), vec![1, 2]);
        assert_eq!(late.drain(), vec![2]);
    }

    #[test]
    fn dropped_consumer_is_pruned() {
        let t: Topic<u32> = Topic::new("t");
        let a = t.subscribe();
        drop(a);
        assert_eq!(t.publish(1), 0, "dead subscriber pruned on publish");
    }

    #[test]
    #[should_panic]
    fn publish_after_close_panics() {
        let t: Topic<u32> = Topic::new("t");
        t.close();
        t.publish(1);
    }

    #[test]
    fn cross_thread_delivery() {
        let t: Topic<u64> = Topic::new("t");
        let c = t.subscribe();
        let producer = {
            let t = t.clone();
            thread::spawn(move || {
                for i in 0..1_000 {
                    t.publish(i);
                }
                t.close();
            })
        };
        let got = c.drain();
        producer.join().unwrap();
        assert_eq!(got.len(), 1_000);
        assert!(got.windows(2).all(|w| w[0] < w[1]), "order preserved");
    }

    #[test]
    fn try_recv_states() {
        let t: Topic<u8> = Topic::new("t");
        let c = t.subscribe();
        assert_eq!(c.try_recv(), Ok(None));
        t.publish(9);
        assert_eq!(c.try_recv(), Ok(Some(9)));
        t.close();
        assert_eq!(c.try_recv(), Err(EndOfStream));
    }
}
