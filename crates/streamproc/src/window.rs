//! Keyed tumbling-window aggregation with watermarks — the Spark
//! Structured Streaming role in the paper's reactive pipeline.

use simcore::time::Window;
use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;

/// Keyed tumbling-window state. Events are observed into `(window, key)`
/// cells; advancing the watermark seals and emits all windows strictly
/// before it.
#[derive(Clone, Debug)]
pub struct TumblingWindows<K, A> {
    open: BTreeMap<Window, HashMap<K, A>>,
    watermark: Window,
    late_dropped: u64,
}

impl<K: Eq + Hash + Clone + Ord, A: Default> TumblingWindows<K, A> {
    pub fn new() -> TumblingWindows<K, A> {
        TumblingWindows { open: BTreeMap::new(), watermark: Window(0), late_dropped: 0 }
    }

    /// Fold an event into its `(window, key)` accumulator. Events behind
    /// the watermark are dropped (and counted) — the streaming trade-off
    /// any real pipeline makes.
    pub fn observe(&mut self, w: Window, key: K, fold: impl FnOnce(&mut A)) {
        if w < self.watermark {
            self.late_dropped += 1;
            return;
        }
        fold(self.open.entry(w).or_default().entry(key).or_default());
    }

    /// Advance the watermark to `w`, sealing and returning every cell in a
    /// window strictly before `w`, ordered by (window, key).
    pub fn advance_watermark(&mut self, w: Window) -> Vec<(Window, K, A)> {
        if w <= self.watermark {
            return Vec::new();
        }
        self.watermark = w;
        let mut out = Vec::new();
        let sealed: Vec<Window> = self.open.range(..w).map(|(win, _)| *win).collect();
        for win in sealed {
            let cells = self.open.remove(&win).unwrap();
            let mut cells: Vec<(K, A)> = cells.into_iter().collect();
            cells.sort_by(|a, b| a.0.cmp(&b.0));
            for (k, a) in cells {
                out.push((win, k, a));
            }
        }
        out
    }

    /// Seal everything (end of stream).
    pub fn finish(&mut self) -> Vec<(Window, K, A)> {
        self.advance_watermark(Window(u64::MAX))
    }

    pub fn watermark(&self) -> Window {
        self.watermark
    }
    pub fn open_windows(&self) -> usize {
        self.open.len()
    }
    pub fn late_dropped(&self) -> u64 {
        self.late_dropped
    }
}

impl<K: Eq + Hash + Clone + Ord, A: Default> Default for TumblingWindows<K, A> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregates_per_window_and_key() {
        let mut tw: TumblingWindows<&str, u64> = TumblingWindows::new();
        tw.observe(Window(1), "a", |acc| *acc += 10);
        tw.observe(Window(1), "a", |acc| *acc += 5);
        tw.observe(Window(1), "b", |acc| *acc += 1);
        tw.observe(Window(2), "a", |acc| *acc += 7);
        assert_eq!(tw.open_windows(), 2);
        let sealed = tw.advance_watermark(Window(2));
        assert_eq!(sealed, vec![(Window(1), "a", 15), (Window(1), "b", 1)]);
        assert_eq!(tw.open_windows(), 1);
        let rest = tw.finish();
        assert_eq!(rest, vec![(Window(2), "a", 7)]);
        assert_eq!(tw.open_windows(), 0);
    }

    #[test]
    fn late_events_dropped_and_counted() {
        let mut tw: TumblingWindows<u32, u64> = TumblingWindows::new();
        tw.observe(Window(5), 1, |a| *a += 1);
        tw.advance_watermark(Window(6));
        tw.observe(Window(5), 1, |a| *a += 1); // late
        tw.observe(Window(3), 1, |a| *a += 1); // very late
        assert_eq!(tw.late_dropped(), 2);
        assert!(tw.finish().is_empty());
    }

    #[test]
    fn watermark_never_regresses() {
        let mut tw: TumblingWindows<u32, u64> = TumblingWindows::new();
        tw.advance_watermark(Window(10));
        assert!(tw.advance_watermark(Window(5)).is_empty());
        assert_eq!(tw.watermark(), Window(10));
    }

    #[test]
    fn emission_order_is_window_then_key() {
        let mut tw: TumblingWindows<u32, u64> = TumblingWindows::new();
        tw.observe(Window(2), 9, |a| *a += 1);
        tw.observe(Window(1), 5, |a| *a += 1);
        tw.observe(Window(1), 2, |a| *a += 1);
        let out = tw.finish();
        let keys: Vec<(u64, u32)> = out.iter().map(|(w, k, _)| (w.0, *k)).collect();
        assert_eq!(keys, vec![(1, 2), (1, 5), (2, 9)]);
    }

    #[test]
    fn default_accumulator_is_fresh_per_cell() {
        let mut tw: TumblingWindows<&str, Vec<u32>> = TumblingWindows::new();
        tw.observe(Window(1), "x", |v| v.push(1));
        tw.observe(Window(2), "x", |v| v.push(2));
        let out = tw.finish();
        assert_eq!(out[0].2, vec![1]);
        assert_eq!(out[1].2, vec![2]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::BTreeMap as Map;

    proptest! {
        /// With a monotone watermark, emitted cells equal a naive
        /// group-by over the non-late events, and nothing is emitted
        /// twice.
        #[test]
        fn matches_naive_group_by(
            events in prop::collection::vec((0u64..20, 0u32..4, 1u64..100), 0..200),
            advances in prop::collection::vec(0u64..25, 0..10),
        ) {
            let mut tw: TumblingWindows<u32, u64> = TumblingWindows::new();
            let mut naive: Map<(u64, u32), u64> = Map::new();
            let mut emitted: Vec<(Window, u32, u64)> = Vec::new();
            let mut advance_iter = advances.iter();
            for (chunk_i, chunk) in events.chunks(20).enumerate() {
                for &(w, k, v) in chunk {
                    let win = Window(w);
                    if win >= tw.watermark() {
                        *naive.entry((w, k)).or_insert(0) += v;
                    }
                    tw.observe(win, k, |acc| *acc += v);
                }
                let _ = chunk_i;
                if let Some(&a) = advance_iter.next() {
                    emitted.extend(tw.advance_watermark(Window(a)));
                }
            }
            emitted.extend(tw.finish());
            let got: Map<(u64, u32), u64> =
                emitted.iter().map(|(w, k, v)| ((w.0, *k), *v)).collect();
            prop_assert_eq!(got.len(), emitted.len(), "no cell emitted twice");
            prop_assert_eq!(got, naive);
        }
    }
}
