//! The aggregate (closed-form) measurement fidelity.
//!
//! The per-query path samples each resolution; this module computes the
//! *expected* per-window statistics analytically from the same
//! [`dnssim::ServiceState`]s, by exact enumeration of the resolver's
//! retry process. The two fidelities agree by construction — a statistical
//! test in this module (and the workspace `tests/fidelity.rs`) verifies
//! the sampled path converges to these numbers.
//!
//! Use this path when only expectations are needed (huge parameter sweeps,
//! analytic baselines): it costs O(members²) per (NSSet, window) instead
//! of O(domains × attempts).

use crate::sweep::SweepSchedule;
use dnssim::{Infra, LoadBook, NsSetId, Resolver};
use simcore::time::{Window, WINDOWS_PER_DAY};

/// Expected outcome distribution of one resolution attempt sequence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ExpectedStats {
    pub p_ok: f64,
    pub p_timeout: f64,
    pub p_servfail: f64,
    /// Expected resolver wall-clock per resolution, milliseconds
    /// (including time burned on dead servers, as the store records it).
    pub expected_rtt_ms: f64,
}

impl ExpectedStats {
    /// Expected error fraction.
    pub fn failure_rate(&self) -> f64 {
        self.p_timeout + self.p_servfail
    }
}

/// Exact expectation of the resolver's outcome for `nsset` in `window`.
///
/// Mirrors `Resolver::resolve`: a uniformly random starting member, then
/// sequential attempts over the rotation, up to `max_attempts`; an
/// "answered" reply slower than the per-attempt timeout counts as a
/// timeout; SERVFAIL ends the resolution immediately.
pub fn expected_outcome(
    infra: &Infra,
    resolver: &Resolver,
    nsset: NsSetId,
    window: Window,
    loads: &LoadBook,
) -> ExpectedStats {
    let members = infra.nsset(nsset).members();
    let k = members.len();
    // Per-member terminal probabilities for one attempt.
    struct Attempt {
        p_ok: f64,
        p_servfail: f64,
        rtt_ok: f64,
        rtt_servfail: f64,
    }
    let attempts: Vec<Attempt> = members
        .iter()
        .map(|&ns| {
            let s = infra.service_state(ns, window, loads);
            let n = infra.nameserver(ns);
            let rtt = n.base_rtt_ms * s.rtt_mult;
            let answered_in_time = rtt < resolver.timeout_ms;
            Attempt {
                p_ok: if answered_in_time { s.answer_prob } else { 0.0 },
                p_servfail: s.servfail_prob,
                rtt_ok: rtt,
                rtt_servfail: n.base_rtt_ms * s.rtt_mult.min(10.0),
            }
        })
        .collect();

    let max_attempts = k.min(resolver.max_attempts as usize);
    let mut p_ok = 0.0;
    let mut p_servfail = 0.0;
    let mut e_rtt = 0.0;
    for start in 0..k {
        let p_rotation = 1.0 / k as f64;
        let mut p_alive = 1.0; // probability the resolution is still running
        let mut burned = 0.0; // accumulated timeout time along this path
        for j in 0..max_attempts {
            let a = &attempts[(start + j) % k];
            // Terminal: answered in time.
            p_ok += p_rotation * p_alive * a.p_ok;
            e_rtt += p_rotation * p_alive * a.p_ok * (burned + a.rtt_ok);
            // Terminal: SERVFAIL.
            p_servfail += p_rotation * p_alive * a.p_servfail;
            e_rtt += p_rotation * p_alive * a.p_servfail * (burned + a.rtt_servfail);
            // Continue: this attempt timed out.
            let p_timeout_here = 1.0 - a.p_ok - a.p_servfail;
            p_alive *= p_timeout_here;
            burned += resolver.timeout_ms;
        }
        // Whatever survives every attempt is a timeout with the full
        // burned budget.
        e_rtt += p_rotation * p_alive * burned;
    }
    let p_timeout = (1.0 - p_ok - p_servfail).max(0.0);
    ExpectedStats { p_ok, p_timeout, p_servfail, expected_rtt_ms: e_rtt }
}

/// Analytic Equation 1: expected `Impact_on_RTT` for an attack spanning
/// `[first, last]`, with the previous day as baseline — no sampling, no
/// measurement noise. Weights each window by the number of domains the
/// sweep schedule measures in it, exactly as the sampled pipeline's
/// aggregation does in expectation.
#[allow(clippy::too_many_arguments)]
pub fn expected_impact_on_rtt(
    infra: &Infra,
    schedule: &SweepSchedule,
    resolver: &Resolver,
    nsset: NsSetId,
    first: Window,
    last: Window,
    loads: &LoadBook,
) -> Option<f64> {
    let weighted = |w0: u64, w1: u64| -> (f64, f64) {
        let mut num = 0.0;
        let mut n = 0.0;
        for w in w0..=w1 {
            let d = schedule.domains_in_window(infra, nsset, Window(w)).len() as f64;
            if d > 0.0 {
                let e = expected_outcome(infra, resolver, nsset, Window(w), loads);
                num += e.expected_rtt_ms * d;
                n += d;
            }
        }
        (num, n)
    };
    let (during_sum, during_n) = weighted(first.0, last.0);
    if during_n == 0.0 {
        return None;
    }
    let day_before = first.day().checked_sub(1)?;
    let (base_sum, base_n) =
        weighted(day_before * WINDOWS_PER_DAY, (day_before + 1) * WINDOWS_PER_DAY - 1);
    if base_n == 0.0 || base_sum <= 0.0 {
        return None;
    }
    Some((during_sum / during_n) / (base_sum / base_n))
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::{Deployment, QueryStatus};
    use netbase::Asn;
    use simcore::rng::RngFactory;
    use std::net::Ipv4Addr;

    fn world(k: usize, capacity: f64) -> (Infra, dnssim::DomainId, Vec<Ipv4Addr>) {
        let mut infra = Infra::new();
        let addrs: Vec<Ipv4Addr> =
            (0..k).map(|i| format!("198.51.{i}.53").parse().unwrap()).collect();
        let ids: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                infra.add_nameserver(
                    format!("ns{i}.agg.net").parse().unwrap(),
                    a,
                    Asn(64500),
                    Deployment::Unicast,
                    capacity,
                    1_000.0,
                    20.0,
                )
            })
            .collect();
        let set = infra.intern_nsset(ids);
        let d = infra.add_domain("agg.example".parse().unwrap(), set);
        (infra, d, addrs)
    }

    fn monte_carlo(
        infra: &Infra,
        resolver: &Resolver,
        domain: dnssim::DomainId,
        window: Window,
        loads: &LoadBook,
        n: usize,
    ) -> ExpectedStats {
        let rngs = RngFactory::new(77);
        let mut rng = rngs.stream("aggregate-mc");
        let mut ok = 0;
        let mut servfail = 0;
        let mut rtt = 0.0;
        for _ in 0..n {
            let out = resolver.resolve(infra, domain, window, loads, &mut rng);
            match out.status {
                QueryStatus::Ok => ok += 1,
                QueryStatus::ServFail => servfail += 1,
                QueryStatus::Timeout => {}
            }
            rtt += out.rtt_ms;
        }
        ExpectedStats {
            p_ok: ok as f64 / n as f64,
            p_servfail: servfail as f64 / n as f64,
            p_timeout: (n - ok - servfail) as f64 / n as f64,
            expected_rtt_ms: rtt / n as f64,
        }
    }

    fn assert_close(analytic: ExpectedStats, sampled: ExpectedStats, tag: &str) {
        assert!(
            (analytic.p_ok - sampled.p_ok).abs() < 0.02,
            "{tag}: p_ok {analytic:?} vs {sampled:?}"
        );
        assert!(
            (analytic.p_servfail - sampled.p_servfail).abs() < 0.01,
            "{tag}: p_servfail {analytic:?} vs {sampled:?}"
        );
        assert!(
            (analytic.expected_rtt_ms - sampled.expected_rtt_ms).abs()
                < (0.03 * analytic.expected_rtt_ms).max(2.0),
            "{tag}: rtt {analytic:?} vs {sampled:?}"
        );
    }

    #[test]
    fn healthy_world_is_certain() {
        let (infra, _, _) = world(3, 50_000.0);
        let set = infra.domain(dnssim::DomainId(0)).nsset;
        let e = expected_outcome(&infra, &Resolver::default(), set, Window(0), &LoadBook::new());
        assert!((e.p_ok - 1.0).abs() < 1e-9);
        assert_eq!(e.p_timeout, 0.0);
        assert!((e.expected_rtt_ms - 20.0).abs() < 1.0);
        assert_eq!(e.failure_rate(), 0.0);
    }

    #[test]
    fn agrees_with_monte_carlo_under_partial_attack() {
        let (infra, d, addrs) = world(3, 50_000.0);
        let set = infra.domain(d).nsset;
        let mut loads = LoadBook::new();
        let w = Window(10);
        loads.add(addrs[0], w, 150_000.0); // ns0 at ρ≈3
        loads.add(addrs[1], w, 40_000.0); // ns1 at ρ≈0.8
        let resolver = Resolver::default();
        let analytic = expected_outcome(&infra, &resolver, set, w, &loads);
        let sampled = monte_carlo(&infra, &resolver, d, w, &loads, 40_000);
        assert_close(analytic, sampled, "partial");
    }

    #[test]
    fn agrees_with_monte_carlo_under_saturation() {
        let (infra, d, addrs) = world(3, 50_000.0);
        let set = infra.domain(d).nsset;
        let mut loads = LoadBook::new();
        let w = Window(11);
        for &a in &addrs {
            loads.add(a, w, 400_000.0);
        }
        let resolver = Resolver::default();
        let analytic = expected_outcome(&infra, &resolver, set, w, &loads);
        let sampled = monte_carlo(&infra, &resolver, d, w, &loads, 40_000);
        assert_close(analytic, sampled, "saturated");
        assert!(analytic.p_timeout > 0.3, "saturation produces timeouts: {analytic:?}");
    }

    #[test]
    fn agrees_for_single_member_single_attempt() {
        let (infra, d, addrs) = world(1, 50_000.0);
        let set = infra.domain(d).nsset;
        let mut loads = LoadBook::new();
        let w = Window(12);
        loads.add(addrs[0], w, 99_000.0); // ρ = 2 → ans 0.5
        let resolver = Resolver { max_attempts: 1, ..Resolver::default() };
        let analytic = expected_outcome(&infra, &resolver, set, w, &loads);
        assert!((analytic.p_ok - 0.5).abs() < 0.02, "{analytic:?}");
        let sampled = monte_carlo(&infra, &resolver, d, w, &loads, 40_000);
        assert_close(analytic, sampled, "single");
    }

    #[test]
    fn slow_answers_count_as_timeouts() {
        // A server whose loaded RTT exceeds the per-attempt timeout never
        // contributes p_ok, even though it technically answers.
        let mut infra = Infra::new();
        let addr: Ipv4Addr = "198.51.0.53".parse().unwrap();
        let _ = infra.add_nameserver(
            "slow.example".parse().unwrap(),
            addr,
            Asn(64500),
            Deployment::Unicast,
            50_000.0,
            1_000.0,
            60.0, // 60 ms base: 30x queue cap → 1800 ms ≥ 1500 ms timeout
        );
        let set = infra.intern_nsset(vec![dnssim::NsId(0)]);
        infra.add_domain("slow.example".parse().unwrap(), set);
        let mut loads = LoadBook::new();
        let w = Window(13);
        loads.add(addr, w, 48_500.0); // ρ=0.99 → mult capped at 30
        let e = expected_outcome(&infra, &Resolver::default(), set, w, &loads);
        assert_eq!(e.p_ok, 0.0, "{e:?}");
        assert!(e.p_timeout > 0.9);
    }

    #[test]
    fn analytic_impact_matches_sampled_pipeline() {
        use crate::measure::measure_domains;
        use crate::store::MeasurementStore;
        // A TransIP-shaped fixture: three unicast servers at ρ≈0.9 for two
        // hours on day 4.
        let (infra, _d, addrs) = world(3, 50_000.0);
        let set = infra.domain(dnssim::DomainId(0)).nsset;
        // Re-register enough domains for per-window coverage.
        let mut infra = infra;
        for i in 0..6_000 {
            infra.add_domain(format!("bulk{i}.example").parse().unwrap(), set);
        }
        let schedule = SweepSchedule::new(7);
        let resolver = Resolver::default();
        let first = Window(4 * WINDOWS_PER_DAY + 100);
        let last = Window(first.0 + 23);
        let mut loads = LoadBook::new();
        for w in first.0..=last.0 {
            for &a in &addrs {
                loads.add(a, Window(w), 44_000.0);
            }
        }
        let analytic =
            expected_impact_on_rtt(&infra, &schedule, &resolver, set, first, last, &loads)
                .expect("baseline exists");
        assert!(analytic > 5.0, "attack inflates expected impact: {analytic:.2}");

        // Sampled pipeline on the same cells.
        let rngs = RngFactory::new(31);
        let mut store = MeasurementStore::new();
        for w in first.0..=last.0 {
            let ds = schedule.domains_in_window(&infra, set, Window(w));
            store.ingest(&measure_domains(&infra, &resolver, &ds, set, Window(w), &loads, &rngs));
        }
        let day_before = first.day() - 1;
        for w in (day_before * WINDOWS_PER_DAY)..((day_before + 1) * WINDOWS_PER_DAY) {
            let ds = schedule.domains_in_window(&infra, set, Window(w));
            store.ingest(&measure_domains(&infra, &resolver, &ds, set, Window(w), &loads, &rngs));
        }
        let sampled = store.impact_on_rtt(set, first, last).expect("sampled impact");
        assert!(
            (analytic - sampled).abs() / sampled < 0.1,
            "analytic {analytic:.2} vs sampled {sampled:.2}"
        );
    }

    #[test]
    fn probabilities_always_normalize() {
        // Sweep a load grid; the three outcome probabilities must sum to 1.
        let (infra, d, addrs) = world(4, 30_000.0);
        let set = infra.domain(d).nsset;
        for (i, load) in [0.0, 10_000.0, 29_000.0, 60_000.0, 500_000.0].iter().enumerate() {
            let mut loads = LoadBook::new();
            let w = Window(20 + i as u64);
            for &a in &addrs {
                loads.add(a, w, *load);
            }
            let e = expected_outcome(&infra, &Resolver::default(), set, w, &loads);
            let total = e.p_ok + e.p_timeout + e.p_servfail;
            assert!((total - 1.0).abs() < 1e-9, "load {load}: {e:?}");
            assert!(e.expected_rtt_ms >= 0.0);
        }
    }
}
