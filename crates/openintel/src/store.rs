//! Measurement storage and the per-(NSSet, window) aggregation of §4.1.

use crate::measure::MeasurementRec;
use dnssim::{NsSetId, QueryStatus};
use simcore::stats::Moments;
use simcore::time::Window;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Aggregated statistics for one NSSet in one 5-minute window — the exact
/// tuple the paper's pipeline computes: domains resolved, average/min/max
/// RTT, and error counts.
#[derive(Clone, Debug, Default)]
pub struct NsSetWindowStats {
    pub domains_measured: u64,
    pub ok: u64,
    pub timeout: u64,
    pub servfail: u64,
    rtt: Moments,
}

impl NsSetWindowStats {
    pub fn push(&mut self, rec: &MeasurementRec) {
        self.domains_measured += 1;
        match rec.status {
            QueryStatus::Ok => self.ok += 1,
            QueryStatus::Timeout => self.timeout += 1,
            QueryStatus::ServFail => self.servfail += 1,
        }
        // RTT is recorded for every attempt (a timed-out resolution still
        // consumed resolver wall-clock, which is what an end user feels).
        self.rtt.push(rec.rtt_ms);
    }

    pub fn avg_rtt(&self) -> f64 {
        self.rtt.mean()
    }
    pub fn min_rtt(&self) -> f64 {
        self.rtt.min()
    }
    pub fn max_rtt(&self) -> f64 {
        self.rtt.max()
    }
    pub fn errors(&self) -> u64 {
        self.timeout + self.servfail
    }
    /// Fraction of measured domains that failed to resolve.
    pub fn failure_rate(&self) -> f64 {
        if self.domains_measured == 0 {
            0.0
        } else {
            self.errors() as f64 / self.domains_measured as f64
        }
    }

    pub fn merge(&mut self, other: &NsSetWindowStats) {
        self.domains_measured += other.domains_measured;
        self.ok += other.ok;
        self.timeout += other.timeout;
        self.servfail += other.servfail;
        self.rtt.merge(&other.rtt);
    }
}

/// The measurement store: append rows, read per-window and per-day
/// aggregates.
#[derive(Clone, Debug, Default)]
pub struct MeasurementStore {
    cells: HashMap<(NsSetId, Window), NsSetWindowStats>,
    days: HashMap<(NsSetId, u64), NsSetWindowStats>,
}

impl MeasurementStore {
    pub fn new() -> MeasurementStore {
        MeasurementStore::default()
    }

    pub fn ingest(&mut self, recs: &[MeasurementRec]) {
        for r in recs {
            self.cells.entry((r.nsset, r.window)).or_default().push(r);
            self.days.entry((r.nsset, r.window.day())).or_default().push(r);
        }
    }

    pub fn window_stats(&self, nsset: NsSetId, window: Window) -> Option<&NsSetWindowStats> {
        self.cells.get(&(nsset, window))
    }

    /// Whole-day aggregate — the paper's `Average RTT (Day Before)`
    /// baseline denominator (§4.1).
    pub fn day_stats(&self, nsset: NsSetId, day: u64) -> Option<&NsSetWindowStats> {
        self.days.get(&(nsset, day))
    }

    /// Aggregate over a window range `[first, last]`.
    pub fn range_stats(&self, nsset: NsSetId, first: Window, last: Window) -> NsSetWindowStats {
        let mut out = NsSetWindowStats::default();
        for w in first.0..=last.0 {
            if let Some(s) = self.cells.get(&(nsset, Window(w))) {
                out.merge(s);
            }
        }
        out
    }

    /// The paper's Equation 1: `Impact_on_RTT = avgRTT(range) /
    /// avgRTT(day before the range starts)`. `None` when either side lacks
    /// data.
    pub fn impact_on_rtt(&self, nsset: NsSetId, first: Window, last: Window) -> Option<f64> {
        let day_before = first.day().checked_sub(1)?;
        self.impact_on_rtt_from_day(nsset, first, last, day_before)
    }

    /// Equation 1 against an explicit baseline day — the degradation path:
    /// when the day-before sweep was lost to a sensor outage, the pipeline
    /// falls back to the week-before day (§4.1's r = 0.999 ablation shows
    /// the two baselines agree).
    pub fn impact_on_rtt_from_day(
        &self,
        nsset: NsSetId,
        first: Window,
        last: Window,
        baseline_day: u64,
    ) -> Option<f64> {
        let during = self.range_stats(nsset, first, last);
        if during.domains_measured == 0 {
            return None;
        }
        let baseline = self.day_stats(nsset, baseline_day)?;
        if baseline.domains_measured == 0
            || baseline.avg_rtt().is_nan()
            || baseline.avg_rtt() <= 0.0
        {
            return None;
        }
        Some(during.avg_rtt() / baseline.avg_rtt())
    }

    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// CSV of the per-window aggregates.
    pub fn csv(&self) -> String {
        let mut rows: Vec<_> = self.cells.iter().collect();
        rows.sort_by_key(|((set, w), _)| (w.0, set.0));
        let mut s = String::from(
            "nsset,window,domains,ok,timeout,servfail,avg_rtt_ms,min_rtt_ms,max_rtt_ms\n",
        );
        for ((set, w), st) in rows {
            let _ = writeln!(
                s,
                "{},{},{},{},{},{},{:.3},{:.3},{:.3}",
                set.0,
                w.0,
                st.domains_measured,
                st.ok,
                st.timeout,
                st.servfail,
                st.avg_rtt(),
                st.min_rtt(),
                st.max_rtt()
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::DomainId;

    fn rec(set: u32, w: u64, rtt: f64, status: QueryStatus) -> MeasurementRec {
        MeasurementRec {
            domain: DomainId(0),
            nsset: NsSetId(set),
            window: Window(w),
            rtt_ms: rtt,
            status,
        }
    }

    #[test]
    fn window_aggregation() {
        let mut store = MeasurementStore::new();
        store.ingest(&[
            rec(1, 10, 20.0, QueryStatus::Ok),
            rec(1, 10, 40.0, QueryStatus::Ok),
            rec(1, 10, 3_000.0, QueryStatus::Timeout),
            rec(1, 11, 25.0, QueryStatus::Ok),
            rec(2, 10, 99.0, QueryStatus::ServFail),
        ]);
        let s = store.window_stats(NsSetId(1), Window(10)).unwrap();
        assert_eq!(s.domains_measured, 3);
        assert_eq!(s.ok, 2);
        assert_eq!(s.timeout, 1);
        assert_eq!(s.errors(), 1);
        assert!((s.avg_rtt() - 1_020.0).abs() < 1e-9);
        assert_eq!(s.min_rtt(), 20.0);
        assert_eq!(s.max_rtt(), 3_000.0);
        assert!((s.failure_rate() - 1.0 / 3.0).abs() < 1e-12);
        assert!(store.window_stats(NsSetId(1), Window(12)).is_none());
    }

    #[test]
    fn day_aggregation_spans_windows() {
        let mut store = MeasurementStore::new();
        // Day 0 = windows 0..288.
        store.ingest(&[
            rec(1, 5, 10.0, QueryStatus::Ok),
            rec(1, 200, 30.0, QueryStatus::Ok),
            rec(1, 288, 99.0, QueryStatus::Ok), // day 1
        ]);
        let d0 = store.day_stats(NsSetId(1), 0).unwrap();
        assert_eq!(d0.domains_measured, 2);
        assert!((d0.avg_rtt() - 20.0).abs() < 1e-9);
        let d1 = store.day_stats(NsSetId(1), 1).unwrap();
        assert_eq!(d1.domains_measured, 1);
    }

    #[test]
    fn impact_on_rtt_equation() {
        let mut store = MeasurementStore::new();
        // Baseline day 0: avg 20 ms.
        store.ingest(&[rec(1, 10, 15.0, QueryStatus::Ok), rec(1, 150, 25.0, QueryStatus::Ok)]);
        // Attack range on day 1: avg 200 ms → impact 10×.
        store.ingest(&[
            rec(1, 288 + 50, 180.0, QueryStatus::Ok),
            rec(1, 288 + 51, 220.0, QueryStatus::Ok),
        ]);
        let impact = store.impact_on_rtt(NsSetId(1), Window(288 + 50), Window(288 + 51)).unwrap();
        assert!((impact - 10.0).abs() < 1e-9);
    }

    #[test]
    fn impact_requires_both_sides() {
        let mut store = MeasurementStore::new();
        store.ingest(&[rec(1, 288 + 50, 100.0, QueryStatus::Ok)]);
        // No baseline on day 0.
        assert!(store.impact_on_rtt(NsSetId(1), Window(288 + 50), Window(288 + 50)).is_none());
        // Range on day 0 has no previous day at all.
        assert!(store.impact_on_rtt(NsSetId(1), Window(10), Window(11)).is_none());
        // No measurements in range.
        store.ingest(&[rec(1, 5, 10.0, QueryStatus::Ok)]);
        assert!(store.impact_on_rtt(NsSetId(1), Window(600), Window(601)).is_none());
    }

    #[test]
    fn range_stats_merge() {
        let mut store = MeasurementStore::new();
        store.ingest(&[
            rec(1, 10, 10.0, QueryStatus::Ok),
            rec(1, 11, 20.0, QueryStatus::Timeout),
            rec(1, 13, 30.0, QueryStatus::Ok),
        ]);
        let r = store.range_stats(NsSetId(1), Window(10), Window(12));
        assert_eq!(r.domains_measured, 2);
        assert_eq!(r.errors(), 1);
        assert!((r.avg_rtt() - 15.0).abs() < 1e-9);
    }

    #[test]
    fn csv_sorted_and_complete() {
        let mut store = MeasurementStore::new();
        store.ingest(&[rec(2, 10, 9.0, QueryStatus::Ok), rec(1, 9, 5.0, QueryStatus::Ok)]);
        let csv = store.csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[1].starts_with("1,9,"));
        assert!(lines[2].starts_with("2,10,"));
        assert_eq!(store.cell_count(), 2);
    }
}
