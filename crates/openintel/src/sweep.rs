//! The daily sweep schedule.
//!
//! OpenINTEL measures each domain once per day. We assign every domain a
//! stable window-of-day by hashing its id with the schedule seed, so (a)
//! the same domain is measured at the same time every day (as the real
//! pipeline's batching approximately does), and (b) a NSSet's domains
//! spread uniformly over the 288 daily windows.

use dnssim::{DomainId, Infra, NsSetId};
use simcore::rng::splitmix64;
use simcore::time::{Window, WINDOWS_PER_DAY};

/// The deterministic daily measurement schedule.
#[derive(Clone, Debug)]
pub struct SweepSchedule {
    seed: u64,
}

impl SweepSchedule {
    pub fn new(seed: u64) -> SweepSchedule {
        SweepSchedule { seed }
    }

    /// The window-of-day (0..288) in which `domain` is measured daily.
    pub fn window_of_day(&self, domain: DomainId) -> u64 {
        let mut s = self.seed ^ (domain.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        splitmix64(&mut s) % WINDOWS_PER_DAY
    }

    /// The absolute window in which `domain` is measured on `day`.
    pub fn window_on_day(&self, domain: DomainId, day: u64) -> Window {
        Window(day * WINDOWS_PER_DAY + self.window_of_day(domain))
    }

    /// Whether `domain` is measured in `window`.
    pub fn measures_in(&self, domain: DomainId, window: Window) -> bool {
        window.0 % WINDOWS_PER_DAY == self.window_of_day(domain)
    }

    /// Domains of `nsset` that get measured in `window`.
    pub fn domains_in_window(
        &self,
        infra: &Infra,
        nsset: NsSetId,
        window: Window,
    ) -> Vec<DomainId> {
        let wod = window.0 % WINDOWS_PER_DAY;
        infra
            .domains_of_nsset(nsset)
            .iter()
            .copied()
            .filter(|&d| self.window_of_day(d) == wod)
            .collect()
    }

    /// Domains of `nsset` measured in any window of `[first, last]`
    /// (inclusive), with their absolute windows. This is "the domains
    /// OpenINTEL measured during the attack" (§6.3's ≥5-domain filter).
    pub fn domains_in_window_range(
        &self,
        infra: &Infra,
        nsset: NsSetId,
        first: Window,
        last: Window,
    ) -> Vec<(DomainId, Window)> {
        let mut out = Vec::new();
        self.for_each_in_window_range(infra, nsset, first, last, |d, w| out.push((d, w)));
        out.sort_by_key(|&(d, w)| (w, d.0));
        out
    }

    /// Streaming form of [`domains_in_window_range`]: visit every
    /// `(domain, window)` measurement in `[first, last]` without
    /// materializing the list. Visits are domain-major (domains in
    /// ascending id order, each domain's windows ascending), so any
    /// per-window grouping a caller builds receives each window's domains
    /// in ascending id order — exactly the order the materialized,
    /// `(window, domain)`-sorted form yields per window. The columnar
    /// impact planner leans on that to stay byte-identical to the
    /// reference path while skipping the sort and the allocation.
    ///
    /// [`domains_in_window_range`]: SweepSchedule::domains_in_window_range
    pub fn for_each_in_window_range(
        &self,
        infra: &Infra,
        nsset: NsSetId,
        first: Window,
        last: Window,
        mut visit: impl FnMut(DomainId, Window),
    ) {
        for &d in infra.domains_of_nsset(nsset) {
            let wod = self.window_of_day(d);
            // Scan the days the range touches.
            let mut day = first.day();
            while day <= last.day() {
                let w = Window(day * WINDOWS_PER_DAY + wod);
                if w >= first && w <= last {
                    visit(d, w);
                }
                day += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::Deployment;
    use netbase::Asn;

    fn world(n_domains: u32) -> (Infra, NsSetId) {
        let mut infra = Infra::new();
        let ns = infra.add_nameserver(
            "ns1.host.net".parse().unwrap(),
            "198.51.100.1".parse().unwrap(),
            Asn(64500),
            Deployment::Unicast,
            10_000.0,
            100.0,
            20.0,
        );
        let set = infra.intern_nsset(vec![ns]);
        for i in 0..n_domains {
            infra.add_domain(format!("d{i}.example").parse().unwrap(), set);
        }
        (infra, set)
    }

    #[test]
    fn schedule_is_stable_and_daily() {
        let s = SweepSchedule::new(1);
        let d = DomainId(42);
        let wod = s.window_of_day(d);
        assert!(wod < 288);
        assert_eq!(s.window_of_day(d), wod);
        assert_eq!(s.window_on_day(d, 0).0, wod);
        assert_eq!(s.window_on_day(d, 10).0, 10 * 288 + wod);
        assert!(s.measures_in(d, s.window_on_day(d, 5)));
        assert!(!s.measures_in(d, Window(s.window_on_day(d, 5).0 + 1)));
    }

    #[test]
    fn domains_spread_over_day() {
        let (infra, set) = world(5_000);
        let s = SweepSchedule::new(7);
        let mut counts = vec![0usize; 288];
        for w in 0..288 {
            counts[w as usize] = s.domains_in_window(&infra, set, Window(w)).len();
        }
        let total: usize = counts.iter().sum();
        assert_eq!(total, 5_000, "every domain measured exactly once per day");
        // Roughly uniform: no window empty, none wildly over-loaded.
        let max = *counts.iter().max().unwrap();
        let min = *counts.iter().min().unwrap();
        assert!(min >= 2, "min {min}");
        assert!(max <= 50, "max {max}");
    }

    #[test]
    fn range_query_counts_attack_measurements() {
        let (infra, set) = world(2_880); // 10 per window on average
        let s = SweepSchedule::new(3);
        // A 1-hour attack spans 12 windows → ≈120 measured domains.
        let first = Window(100 * 288 + 36);
        let last = Window(100 * 288 + 47);
        let measured = s.domains_in_window_range(&infra, set, first, last);
        assert!(
            (90..=150).contains(&measured.len()),
            "expected ≈120 measurements, got {}",
            measured.len()
        );
        for &(d, w) in &measured {
            assert!(w >= first && w <= last);
            assert!(s.measures_in(d, w));
        }
        // Sorted by window.
        assert!(measured.windows(2).all(|p| p[0].1 <= p[1].1));
    }

    #[test]
    fn range_spanning_midnight_hits_both_days() {
        let (infra, set) = world(2_880);
        let s = SweepSchedule::new(3);
        // Last 6 windows of day 4 + first 6 of day 5.
        let first = Window(5 * 288 - 6);
        let last = Window(5 * 288 + 5);
        let measured = s.domains_in_window_range(&infra, set, first, last);
        let day4 = measured.iter().filter(|&&(_, w)| w.day() == 4).count();
        let day5 = measured.iter().filter(|&&(_, w)| w.day() == 5).count();
        assert!(day4 > 0 && day5 > 0, "day4 {day4} day5 {day5}");
    }

    #[test]
    fn multi_day_range_measures_domains_repeatedly() {
        let (infra, set) = world(288);
        let s = SweepSchedule::new(11);
        let measured = s.domains_in_window_range(&infra, set, Window(0), Window(3 * 288 - 1));
        assert_eq!(measured.len(), 288 * 3, "each domain once per day for 3 days");
    }

    #[test]
    fn streaming_visit_matches_materialized_range() {
        let (infra, set) = world(2_880);
        let s = SweepSchedule::new(3);
        let first = Window(100 * 288 + 30);
        let last = Window(101 * 288 + 10);
        let materialized = s.domains_in_window_range(&infra, set, first, last);
        let mut streamed = Vec::new();
        s.for_each_in_window_range(&infra, set, first, last, |d, w| streamed.push((d, w)));
        assert_eq!(streamed.len(), materialized.len());
        streamed.sort_by_key(|&(d, w)| (w, d.0));
        assert_eq!(streamed, materialized);
        // Visit order is domain-major: strictly ascending (domain, window).
        let mut raw = Vec::new();
        s.for_each_in_window_range(&infra, set, first, last, |d, w| raw.push((d.0, w.0)));
        assert!(raw.windows(2).all(|p| p[0] < p[1]), "domain-major visit order");
    }

    #[test]
    fn different_seeds_shuffle_schedule() {
        let a = SweepSchedule::new(1);
        let b = SweepSchedule::new(2);
        let diff = (0..1000)
            .filter(|&i| a.window_of_day(DomainId(i)) != b.window_of_day(DomainId(i)))
            .count();
        assert!(diff > 900);
    }
}
