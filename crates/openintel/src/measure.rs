//! Executing measurements.

use crate::sweep::SweepSchedule;
use dnssim::{DomainId, Infra, LoadBook, NsSetId, QueryStatus, Resolver};
use simcore::rng::RngFactory;
use simcore::time::Window;

/// One measurement row, as the platform's storage records it.
#[derive(Clone, Debug, PartialEq)]
pub struct MeasurementRec {
    pub domain: DomainId,
    pub nsset: NsSetId,
    pub window: Window,
    pub rtt_ms: f64,
    pub status: QueryStatus,
}

/// Measure every scheduled domain of `nsset` in `window`, returning the
/// individual rows. Deterministic per (seed, domain, window).
pub fn measure_window(
    infra: &Infra,
    schedule: &SweepSchedule,
    resolver: &Resolver,
    nsset: NsSetId,
    window: Window,
    loads: &LoadBook,
    rngs: &RngFactory,
) -> Vec<MeasurementRec> {
    let domains = schedule.domains_in_window(infra, nsset, window);
    measure_domains(infra, resolver, &domains, nsset, window, loads, rngs)
}

/// Measure an explicit set of domains in `window` (used by the lazy
/// longitudinal runner and by baseline materialization).
pub fn measure_domains(
    infra: &Infra,
    resolver: &Resolver,
    domains: &[DomainId],
    nsset: NsSetId,
    window: Window,
    loads: &LoadBook,
    rngs: &RngFactory,
) -> Vec<MeasurementRec> {
    let mut out = Vec::with_capacity(domains.len());
    for &d in domains {
        let mut rng =
            rngs.stream_indexed("openintel-query", (d.0 as u64) << 32 | window.0 & 0xFFFF_FFFF);
        let q = resolver.resolve(infra, d, window, loads, &mut rng);
        out.push(MeasurementRec { domain: d, nsset, window, rtt_ms: q.rtt_ms, status: q.status });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::Deployment;
    use netbase::Asn;
    use std::net::Ipv4Addr;

    fn world() -> (Infra, NsSetId, Vec<Ipv4Addr>) {
        let mut infra = Infra::new();
        let addrs: Vec<Ipv4Addr> =
            vec!["198.51.100.1".parse().unwrap(), "203.0.113.1".parse().unwrap()];
        let ids: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                infra.add_nameserver(
                    format!("ns{i}.host.net").parse().unwrap(),
                    a,
                    Asn(64500 + i as u32),
                    Deployment::Unicast,
                    50_000.0,
                    500.0,
                    18.0,
                )
            })
            .collect();
        let set = infra.intern_nsset(ids);
        for i in 0..2_000 {
            infra.add_domain(format!("d{i}.example").parse().unwrap(), set);
        }
        (infra, set, addrs)
    }

    #[test]
    fn healthy_window_all_ok() {
        let (infra, set, _) = world();
        let sched = SweepSchedule::new(1);
        let recs = measure_window(
            &infra,
            &sched,
            &Resolver::default(),
            set,
            Window(100),
            &LoadBook::new(),
            &RngFactory::new(5),
        );
        assert!(!recs.is_empty());
        for r in &recs {
            assert_eq!(r.status, QueryStatus::Ok);
            assert!(r.rtt_ms > 0.0 && r.rtt_ms < 100.0);
            assert_eq!(r.nsset, set);
            assert!(sched.measures_in(r.domain, Window(100)));
        }
    }

    #[test]
    fn attacked_window_shows_impairment() {
        let (infra, set, addrs) = world();
        let sched = SweepSchedule::new(1);
        let mut loads = LoadBook::new();
        for a in &addrs {
            loads.add(*a, Window(100), 48_000.0); // ρ≈0.97 on both servers
        }
        let healthy = measure_window(
            &infra,
            &sched,
            &Resolver::default(),
            set,
            Window(388), // same window-of-day next day, unattacked
            &LoadBook::new(),
            &RngFactory::new(5),
        );
        let attacked = measure_window(
            &infra,
            &sched,
            &Resolver::default(),
            set,
            Window(100),
            &loads,
            &RngFactory::new(5),
        );
        let avg =
            |rs: &[MeasurementRec]| rs.iter().map(|r| r.rtt_ms).sum::<f64>() / rs.len() as f64;
        assert!(
            avg(&attacked) > 5.0 * avg(&healthy),
            "attack inflates RTT: {} vs {}",
            avg(&attacked),
            avg(&healthy)
        );
    }

    #[test]
    fn measurements_deterministic() {
        let (infra, set, _) = world();
        let sched = SweepSchedule::new(1);
        let run = || {
            measure_window(
                &infra,
                &sched,
                &Resolver::default(),
                set,
                Window(50),
                &LoadBook::new(),
                &RngFactory::new(9),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn explicit_domain_list_is_respected() {
        let (infra, set, _) = world();
        let domains = vec![DomainId(1), DomainId(2), DomainId(3)];
        let recs = measure_domains(
            &infra,
            &Resolver::default(),
            &domains,
            set,
            Window(10),
            &LoadBook::new(),
            &RngFactory::new(1),
        );
        assert_eq!(recs.len(), 3);
        assert_eq!(recs[0].domain, DomainId(1));
    }
}
