//! Seeded sweep-outage model: which daily sweeps the platform lost.
//!
//! The real OpenINTEL pipeline occasionally misses a whole daily sweep
//! (collector maintenance, transfer failures). The longitudinal analysis
//! must degrade gracefully when the day-before baseline of an attack
//! window falls on such a day — it substitutes the week-before day, which
//! the paper's §4.1 ablation justifies (day-before vs week-before
//! baselines correlate at r = 0.999).
//!
//! The model is a pure function of `(seed, day)`, so outage schedules are
//! reproducible and independent of thread count or evaluation order.

use simcore::rng::{hash_label, splitmix64, RngFactory};

/// A deterministic schedule of missed sweep days.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OutageModel {
    seed: u64,
    /// Probability that any given day's sweep is lost.
    pub daily_miss_prob: f64,
}

impl OutageModel {
    /// Derive the schedule from an experiment RNG factory.
    pub fn new(rngs: &RngFactory, daily_miss_prob: f64) -> OutageModel {
        OutageModel { seed: rngs.fork("sweep-outage").seed(), daily_miss_prob }
    }

    /// Convenience: derive from a bare seed.
    pub fn from_seed(seed: u64, daily_miss_prob: f64) -> OutageModel {
        OutageModel::new(&RngFactory::new(seed), daily_miss_prob)
    }

    /// Was day `day`'s sweep lost?
    pub fn day_missed(&self, day: u64) -> bool {
        let mut s = self.seed ^ hash_label("sweep-day") ^ day.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let u = (splitmix64(&mut s) >> 11) as f64 / (1u64 << 53) as f64;
        u < self.daily_miss_prob
    }

    /// Missed days in `[first_day, last_day]`, for reporting. Also records
    /// the count out-of-band as `outage.days_missed` (see the `obs` crate).
    pub fn missed_days(&self, first_day: u64, last_day: u64) -> Vec<u64> {
        let missed: Vec<u64> = (first_day..=last_day).filter(|d| self.day_missed(*d)).collect();
        obs::counter("outage.days_missed").add(missed.len() as u64);
        missed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_is_deterministic() {
        let a = OutageModel::from_seed(5, 0.1);
        let b = OutageModel::from_seed(5, 0.1);
        assert_eq!(a.missed_days(0, 1000), b.missed_days(0, 1000));
    }

    #[test]
    fn miss_rate_tracks_probability() {
        let m = OutageModel::from_seed(5, 0.1);
        let missed = m.missed_days(0, 9999).len();
        assert!((800..1200).contains(&missed), "≈10% of 10k days, got {missed}");
        let never = OutageModel::from_seed(5, 0.0);
        assert!(never.missed_days(0, 9999).is_empty());
        let always = OutageModel::from_seed(5, 1.0);
        assert_eq!(always.missed_days(0, 99).len(), 100);
    }

    #[test]
    fn different_seeds_differ() {
        let a = OutageModel::from_seed(1, 0.2).missed_days(0, 500);
        let b = OutageModel::from_seed(2, 0.2).missed_days(0, 500);
        assert_ne!(a, b);
    }
}
