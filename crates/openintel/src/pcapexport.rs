//! pcap export of measurement traffic: the packets the measurement
//! platform's capture interface would record for a window's sweep —
//! real `dnswire` NS queries in UDP, the authoritative answers that came
//! back in time, and nothing for the attempts that timed out.
//!
//! Useful for eyeballing the simulated platform in Wireshark and for
//! testing downstream pcap tooling against realistic resolver traffic.

use crate::sweep::SweepSchedule;
use dnssim::{server, DomainId, Infra, LoadBook, NsSetId, QueryStatus, Resolver};
use dnswire::Rcode;
use pcap::{EthernetFrame, IpProto, Ipv4Header, PcapPacket, PcapReader, PcapWriter, UdpDatagram};
use rand::Rng;
use simcore::rng::RngFactory;
use simcore::time::Window;
use std::io::{self, Write};
use std::net::Ipv4Addr;

/// The measurement platform's own address in exported captures.
pub const VANTAGE_ADDR: Ipv4Addr = Ipv4Addr::new(192, 0, 2, 254);

/// Counters for one export.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExportStats {
    pub queries: u64,
    pub responses: u64,
    pub timeouts: u64,
}

/// Export the measurement traffic for every scheduled domain of `nsset`
/// in `window`.
#[allow(clippy::too_many_arguments)]
pub fn export_measurement_pcap<W: Write>(
    infra: &Infra,
    schedule: &SweepSchedule,
    resolver: &Resolver,
    nsset: NsSetId,
    window: Window,
    loads: &LoadBook,
    rngs: &RngFactory,
    out: W,
) -> io::Result<ExportStats> {
    let domains = schedule.domains_in_window(infra, nsset, window);
    let mut writer = PcapWriter::new(out)?;
    let mut stats = ExportStats::default();
    let window_secs = simcore::time::WINDOW_SECS;
    for (i, &d) in domains.iter().enumerate() {
        // Spread the domains across the window, as the batching platform
        // does.
        let offset_us = (i as f64 / domains.len().max(1) as f64 * window_secs as f64 * 1e6) as u64;
        let base_sec = window.start().secs() + offset_us / 1_000_000;
        let base_usec = offset_us % 1_000_000;
        export_one(
            infra,
            resolver,
            d,
            window,
            loads,
            rngs,
            &mut writer,
            &mut stats,
            base_sec,
            base_usec as u32,
        )?;
    }
    writer.finish()?;
    Ok(stats)
}

#[allow(clippy::too_many_arguments)]
fn export_one<W: Write>(
    infra: &Infra,
    resolver: &Resolver,
    domain: DomainId,
    window: Window,
    loads: &LoadBook,
    rngs: &RngFactory,
    writer: &mut PcapWriter<W>,
    stats: &mut ExportStats,
    base_sec: u64,
    base_usec: u32,
) -> io::Result<()> {
    let mut rng =
        rngs.stream_indexed("openintel-query", (domain.0 as u64) << 32 | window.0 & 0xFFFF_FFFF);
    let (_, trace) = resolver.resolve_traced(infra, domain, window, loads, &mut rng);
    let mut t_us = base_sec * 1_000_000 + base_usec as u64;
    let src_port: u16 = 32_768 + (rng.random::<u16>() % 28_000);
    for attempt in trace {
        let n = infra.nameserver(attempt.ns);
        let qid: u16 = rng.random();
        let query = server::ns_query(qid, infra.domain(domain).name.clone());
        let qframe = udp_frame(VANTAGE_ADDR, n.addr, src_port, 53, query.encode());
        writer.write_packet(&packet_at(t_us, qframe))?;
        stats.queries += 1;
        match attempt.status {
            QueryStatus::Ok => {
                let resp = server::answer_ns_query(infra, domain, &query);
                let rframe = udp_frame(n.addr, VANTAGE_ADDR, 53, src_port, resp.encode());
                writer
                    .write_packet(&packet_at(t_us + (attempt.rtt_ms * 1_000.0) as u64, rframe))?;
                stats.responses += 1;
            }
            QueryStatus::ServFail => {
                let resp = dnswire::Message::response_to(&query, Rcode::ServFail, false);
                let rframe = udp_frame(n.addr, VANTAGE_ADDR, 53, src_port, resp.encode());
                writer
                    .write_packet(&packet_at(t_us + (attempt.rtt_ms * 1_000.0) as u64, rframe))?;
                stats.responses += 1;
            }
            QueryStatus::Timeout => {
                stats.timeouts += 1;
            }
        }
        t_us += (attempt.rtt_ms * 1_000.0) as u64;
    }
    Ok(())
}

fn udp_frame(src: Ipv4Addr, dst: Ipv4Addr, sp: u16, dp: u16, payload: Vec<u8>) -> Vec<u8> {
    let udp = UdpDatagram::new(sp, dp, payload).encode(src, dst);
    let ip = Ipv4Header::new(src, dst, IpProto::Udp, udp).encode();
    EthernetFrame::ipv4(ip).encode()
}

fn packet_at(t_us: u64, frame: Vec<u8>) -> PcapPacket {
    PcapPacket::new((t_us / 1_000_000) as u32, (t_us % 1_000_000) as u32, frame)
}

/// Per-qname tallies recovered from an exported capture. Built entirely
/// on the borrowed parse path: frames decode through
/// [`dnswire::MessageRef`] and qnames intern straight from their label
/// slices in the packet buffer — no owned [`dnswire::Message`], no
/// intermediate `String`.
#[derive(Debug, Default)]
pub struct CaptureIndex {
    /// Canonical (lowercase, uncompressed) qname wire form → dense id.
    pub names: simcore::Interner<Vec<u8>>,
    /// Queries seen per name id.
    pub queries: Vec<u64>,
    /// Responses seen per name id.
    pub responses: Vec<u64>,
}

/// Index a capture produced by [`export_measurement_pcap`] (or any
/// DNS-in-UDP Ethernet capture). Frames that do not parse as DNS-in-UDP
/// are skipped. Name ids are first-come in packet order, so two reads of
/// the same capture index identically.
pub fn index_capture<R: io::Read>(inp: R) -> Result<CaptureIndex, pcap::PcapError> {
    let mut reader = PcapReader::new(inp)?;
    let mut idx = CaptureIndex::default();
    let mut canonical = Vec::new();
    while let Some(p) = reader.next_packet()? {
        let Ok(eth) = EthernetFrame::decode(&p.data) else { continue };
        let Ok(ip) = Ipv4Header::decode(&eth.payload) else { continue };
        if ip.proto != IpProto::Udp {
            continue;
        }
        let Ok(udp) = UdpDatagram::decode(&ip.payload, ip.src, ip.dst) else { continue };
        let Ok(msg) = dnswire::MessageRef::parse(&udp.payload) else { continue };
        let Some(q) = msg.questions.first() else { continue };
        canonical.clear();
        q.name.write_canonical(&mut canonical);
        let id = idx.names.intern_ref(canonical.as_slice()) as usize;
        if idx.queries.len() <= id {
            idx.queries.resize(id + 1, 0);
            idx.responses.resize(id + 1, 0);
        }
        if msg.header.flags.qr {
            idx.responses[id] += 1;
        } else {
            idx.queries[id] += 1;
        }
    }
    Ok(idx)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnssim::Deployment;
    use dnswire::Message;
    use netbase::Asn;
    use std::io::Cursor;

    fn world() -> (Infra, NsSetId, Vec<Ipv4Addr>) {
        let mut infra = Infra::new();
        let addrs: Vec<Ipv4Addr> =
            vec!["198.51.100.1".parse().unwrap(), "203.0.113.1".parse().unwrap()];
        let ids: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, &a)| {
                infra.add_nameserver(
                    format!("ns{i}.host.net").parse().unwrap(),
                    a,
                    Asn(64500),
                    Deployment::Unicast,
                    50_000.0,
                    500.0,
                    18.0,
                )
            })
            .collect();
        let set = infra.intern_nsset(ids);
        for i in 0..2_000 {
            infra.add_domain(format!("d{i}.example").parse().unwrap(), set);
        }
        (infra, set, addrs)
    }

    #[test]
    fn healthy_window_has_query_response_pairs() {
        let (infra, set, _) = world();
        let schedule = SweepSchedule::new(1);
        let mut buf = Vec::new();
        let stats = export_measurement_pcap(
            &infra,
            &schedule,
            &Resolver::default(),
            set,
            Window(100),
            &LoadBook::new(),
            &RngFactory::new(5),
            &mut buf,
        )
        .unwrap();
        assert!(stats.queries > 0);
        assert_eq!(stats.queries, stats.responses, "healthy world: every query answered");
        assert_eq!(stats.timeouts, 0);

        // The capture parses and every frame is a valid DNS-in-UDP packet.
        let mut reader = PcapReader::new(Cursor::new(buf)).unwrap();
        let pkts = reader.read_all().unwrap();
        assert_eq!(pkts.len() as u64, stats.queries + stats.responses);
        let mut qr = (0u64, 0u64);
        let mut last_ts = 0u64;
        for p in &pkts {
            let ts = p.ts_sec as u64 * 1_000_000 + p.ts_usec as u64;
            assert!(ts >= last_ts, "timestamps monotone");
            last_ts = ts;
            let eth = EthernetFrame::decode(&p.data).unwrap();
            let ip = Ipv4Header::decode(&eth.payload).unwrap();
            assert_eq!(ip.proto, IpProto::Udp);
            let udp = UdpDatagram::decode(&ip.payload, ip.src, ip.dst).unwrap();
            let msg = Message::decode(&udp.payload).unwrap();
            if msg.header.flags.qr {
                qr.1 += 1;
                assert_eq!(udp.src_port, 53);
                assert!(!msg.answers.is_empty(), "NS answers present");
            } else {
                qr.0 += 1;
                assert_eq!(udp.dst_port, 53);
                assert_eq!(ip.src, VANTAGE_ADDR);
            }
        }
        assert_eq!(qr.0, stats.queries);
        assert_eq!(qr.1, stats.responses);
    }

    #[test]
    fn capture_index_matches_owned_parse_path() {
        let (infra, set, _) = world();
        let schedule = SweepSchedule::new(1);
        let mut buf = Vec::new();
        let stats = export_measurement_pcap(
            &infra,
            &schedule,
            &Resolver::default(),
            set,
            Window(100),
            &LoadBook::new(),
            &RngFactory::new(5),
            &mut buf,
        )
        .unwrap();

        let idx = index_capture(Cursor::new(buf.clone())).unwrap();
        assert_eq!(idx.queries.iter().sum::<u64>(), stats.queries);
        assert_eq!(idx.responses.iter().sum::<u64>(), stats.responses);
        assert_eq!(idx.names.len(), idx.queries.len());

        // Reference: the owned decode path, interning the qname's
        // canonical wire form via allocation. Ids and tallies must be
        // identical — borrowed parsing may not change what is counted.
        let mut names: simcore::Interner<Vec<u8>> = simcore::Interner::new();
        let mut queries: Vec<u64> = Vec::new();
        let mut responses: Vec<u64> = Vec::new();
        let mut reader = PcapReader::new(Cursor::new(buf)).unwrap();
        while let Some(p) = reader.next_packet().unwrap() {
            let eth = EthernetFrame::decode(&p.data).unwrap();
            let ip = Ipv4Header::decode(&eth.payload).unwrap();
            let udp = UdpDatagram::decode(&ip.payload, ip.src, ip.dst).unwrap();
            let msg = Message::decode(&udp.payload).unwrap();
            let mut wire = dnswire::BytesMut::new();
            msg.questions[0].name.encode_uncompressed(&mut wire);
            let id = names.intern(wire.as_slice().to_vec()) as usize;
            if queries.len() <= id {
                queries.resize(id + 1, 0);
                responses.resize(id + 1, 0);
            }
            if msg.header.flags.qr {
                responses[id] += 1;
            } else {
                queries[id] += 1;
            }
        }
        assert_eq!(format!("{:?}", idx.names), format!("{names:?}"), "interned arenas differ");
        assert_eq!(idx.queries, queries);
        assert_eq!(idx.responses, responses);
    }

    #[test]
    fn attacked_window_shows_unanswered_queries() {
        let (infra, set, addrs) = world();
        let schedule = SweepSchedule::new(1);
        let mut loads = LoadBook::new();
        for a in &addrs {
            loads.add(*a, Window(100), 5_000_000.0); // saturate both
        }
        let mut buf = Vec::new();
        let stats = export_measurement_pcap(
            &infra,
            &schedule,
            &Resolver::default(),
            set,
            Window(100),
            &loads,
            &RngFactory::new(6),
            &mut buf,
        )
        .unwrap();
        assert!(stats.timeouts > 0, "saturated servers leave queries unanswered");
        assert!(stats.responses < stats.queries);
        // Retries appear as extra queries: more queries than domains.
        let per_domain = schedule.domains_in_window(&infra, set, Window(100)).len() as u64;
        assert!(stats.queries > per_domain, "{} queries for {per_domain} domains", stats.queries);
    }
}
