//! OpenINTEL-style active DNS measurement platform.
//!
//! The real platform queries every registered domain once per day with an
//! explicit, non-recursive NS query through unbound, which picks a random
//! authoritative nameserver; it records the RTT and the response status
//! (§3.2). We reproduce exactly that measurement contract:
//!
//! - [`sweep`]: the daily schedule — each domain gets a stable 5-minute
//!   window of the day (hashed), so per-window per-NSSet domain counts are
//!   well defined.
//! - [`measure`]: running measurements for a set of domains in a window
//!   (through `dnssim`'s resolver) and the per-(NSSet, window) statistics
//!   the paper aggregates (§4.1).
//! - [`store`]: the measurement store, per-window aggregation, daily
//!   baselines, and the `Impact_on_RTT` inputs.
//! - [`aggregate`]: the closed-form expected-outcome fidelity (exact
//!   enumeration of the resolver's retry process).
//! - [`pcapexport`]: Wireshark-ready captures of a window's measurement
//!   traffic.
//!
//! Full-interval sweeps over every domain are intentionally *lazy*: the
//! longitudinal pipeline only materializes measurements for NSSets and
//! windows adjacent to attacks (plus their previous-day baselines), which
//! keeps a 17-month run tractable while remaining faithful — the sampled
//! cells are computed exactly as a full sweep would.

pub mod aggregate;
pub mod measure;
pub mod outage;
pub mod pcapexport;
pub mod store;
pub mod sweep;

pub use aggregate::{expected_impact_on_rtt, expected_outcome, ExpectedStats};
pub use measure::{measure_window, MeasurementRec};
pub use outage::OutageModel;
pub use pcapexport::{export_measurement_pcap, ExportStats};
pub use store::{MeasurementStore, NsSetWindowStats};
pub use sweep::SweepSchedule;
