//! End-to-end pipeline benchmarks: the feed→DNS join and the full
//! longitudinal run at a small scale.

use bench_support::run_experiments;
use census::OpenResolverList;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dnsimpact_core::join::join_episodes;
use scenarios::{PaperScale, WorldConfig};
use std::hint::black_box;

fn bench_pipeline(c: &mut Criterion) {
    // Materialize a small world + feed once; benchmark the join and the
    // full run.
    let ex = run_experiments(
        5,
        PaperScale { divisor: 1_000 },
        &WorldConfig { providers: 30, domains: 8_000, ..WorldConfig::default() },
    );
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(ex.report.feed.episodes.len() as u64));
    g.bench_function("join_episodes", |b| {
        b.iter(|| {
            black_box(join_episodes(
                &ex.world.infra,
                &ex.world.infra,
                black_box(&ex.report.feed.episodes),
                &ex.world.meta.open_resolvers,
                false,
            ))
        });
    });
    g.sample_size(10);
    g.bench_function("full_longitudinal_small", |b| {
        b.iter(|| {
            black_box(run_experiments(
                7,
                PaperScale { divisor: 2_000 },
                &WorldConfig { providers: 20, domains: 5_000, ..WorldConfig::default() },
            ))
        });
    });
    g.finish();
}

fn bench_open_resolver_filter(c: &mut Criterion) {
    // Ablation-adjacent: the cost of the open-resolver filter itself.
    let list = OpenResolverList::well_known();
    let probes: Vec<std::net::Ipv4Addr> =
        (0..1_000u32).map(|i| std::net::Ipv4Addr::from(0x0808_0000 + i)).collect();
    c.bench_function("open_resolver_filter/1000", |b| {
        b.iter(|| {
            let mut n = 0;
            for &ip in &probes {
                if list.contains(black_box(ip)) {
                    n += 1;
                }
            }
            black_box(n)
        });
    });
}

criterion_group!(benches, bench_pipeline, bench_open_resolver_filter);
criterion_main!(benches);
