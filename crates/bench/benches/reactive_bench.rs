//! Reactive-platform benchmarks: trigger latency (streaming plan build)
//! and probe-round execution.

use attack::Protocol;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dnssim::{Deployment, Infra, LoadBook};
use netbase::Asn;
use reactive::ReactivePlatform;
use simcore::rng::RngFactory;
use simcore::time::Window;
use std::hint::black_box;
use std::net::Ipv4Addr;
use std::sync::Arc;
use telescope::RsdosRecord;

fn world() -> (Arc<Infra>, Vec<Ipv4Addr>) {
    let mut infra = Infra::new();
    let mut addrs = Vec::new();
    for p in 0..50u8 {
        let addr = Ipv4Addr::new(198, 51, p, 53);
        addrs.push(addr);
        let ns = infra.add_nameserver(
            format!("ns.p{p}.net").parse().unwrap(),
            addr,
            Asn(64_500 + p as u32),
            Deployment::Unicast,
            50_000.0,
            500.0,
            20.0,
        );
        let set = infra.intern_nsset(vec![ns]);
        for d in 0..200 {
            infra.add_domain(format!("d{p}x{d}.example").parse().unwrap(), set);
        }
    }
    (Arc::new(infra), addrs)
}

fn record(victim: Ipv4Addr, w: u64) -> RsdosRecord {
    RsdosRecord {
        window: Window(w),
        victim,
        slash16s: 30,
        protocol: Protocol::Tcp,
        first_port: 53,
        unique_ports: 1,
        max_ppm: 2_000.0,
        packets: 10_000,
    }
}

fn bench_reactive(c: &mut Criterion) {
    let (infra, addrs) = world();
    let platform = ReactivePlatform::default();
    // A burst of feed records: 50 victims × 6 windows.
    let records: Vec<RsdosRecord> =
        (0..6u64).flat_map(|w| addrs.iter().map(move |&a| record(a, 100 + w))).collect();
    let rngs = RngFactory::new(4);

    let mut g = c.benchmark_group("reactive");
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("build_plans/300_records", |b| {
        b.iter(|| black_box(platform.build_plans(&infra, black_box(&records))));
    });
    let plans = platform.build_plans(&infra, &records);
    g.sample_size(20);
    g.throughput(Throughput::Elements(plans.len() as u64 * 3));
    g.bench_function("execute/3_rounds_per_plan", |b| {
        b.iter(|| {
            black_box(platform.execute(&infra, black_box(&plans), &LoadBook::new(), &rngs, 3))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_reactive);
criterion_main!(benches);
