//! Ablation benchmarks for the pipeline's design choices (DESIGN.md §5):
//! the ≥5-domain noise filter, the baseline sampling cap, and the
//! collateral (/24) join — each changes how much measurement work the
//! lazy longitudinal runner materializes. The semantic ablations (do the
//! *results* change?) live in `tests/ablation.rs`; these measure the cost.

use bench_support::run_experiments;
use census::AnycastCensus;
use criterion::{criterion_group, criterion_main, Criterion};
use dnsimpact_core::impact::{compute_impacts, ImpactConfig};
use dnsimpact_core::join::join_episodes;
use dnssim::{LoadBook, Resolver};
use openintel::SweepSchedule;
use scenarios::{PaperScale, WorldConfig};
use simcore::rng::RngFactory;
use std::hint::black_box;

fn bench_ablation(c: &mut Criterion) {
    let ex = run_experiments(
        11,
        PaperScale { divisor: 1_000 },
        &WorldConfig { providers: 30, domains: 8_000, ..WorldConfig::default() },
    );
    let rngs = RngFactory::new(11);
    let schedule = SweepSchedule::new(rngs.seed());
    let resolver = Resolver::default();
    let mut loads = LoadBook::new();
    for (addr, w, pps) in attack::accumulate_windows(&ex.attacks) {
        loads.add(addr, w, pps);
    }
    let census = AnycastCensus::from_ground_truth(
        &ex.world.infra,
        AnycastCensus::paper_snapshot_dates(),
        0.9,
        &rngs,
    );
    let events = join_episodes(
        &ex.world.infra,
        &ex.world.infra,
        &ex.report.feed.episodes,
        &ex.world.meta.open_resolvers,
        false,
    );

    let mut g = c.benchmark_group("ablation");
    g.sample_size(10);
    for (label, config) in [
        (
            "min_domains_5_cap_200",
            ImpactConfig {
                min_domains_measured: 5,
                baseline_sample_cap: 200,
                ..ImpactConfig::default()
            },
        ),
        (
            "min_domains_1_cap_200",
            ImpactConfig {
                min_domains_measured: 1,
                baseline_sample_cap: 200,
                ..ImpactConfig::default()
            },
        ),
        (
            "min_domains_5_cap_1000",
            ImpactConfig {
                min_domains_measured: 5,
                baseline_sample_cap: 1_000,
                ..ImpactConfig::default()
            },
        ),
    ] {
        g.bench_function(format!("compute_impacts/{label}"), |b| {
            b.iter(|| {
                black_box(compute_impacts(
                    &ex.world.infra,
                    &schedule,
                    &resolver,
                    &loads,
                    &ex.report.feed.episodes,
                    &events,
                    &census,
                    &rngs,
                    black_box(&config),
                ))
            });
        });
    }
    for (label, collateral) in [("direct_only", false), ("with_collateral", true)] {
        g.bench_function(format!("join/{label}"), |b| {
            b.iter(|| {
                black_box(join_episodes(
                    &ex.world.infra,
                    &ex.world.infra,
                    black_box(&ex.report.feed.episodes),
                    &ex.world.meta.open_resolvers,
                    collateral,
                ))
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
