//! Throughput of the from-scratch DNS wire codec: the hot inner loop of
//! the per-query measurement fidelity.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dnswire::{Message, MessageRef, Name, RData, Record, RrType};
use std::hint::black_box;

fn sample_response() -> Message {
    let q = Message::query(0x1234, "klant0.nl".parse().unwrap(), RrType::Ns);
    let mut r = Message::response_to(&q, dnswire::Rcode::NoError, true);
    for i in 0..3 {
        let ns: Name = format!("ns{i}.transip.net").parse().unwrap();
        r.answers.push(Record::new("klant0.nl".parse().unwrap(), 3600, RData::Ns(ns.clone())));
        r.additionals.push(Record::new(
            ns,
            3600,
            RData::A(format!("195.135.195.{}", 190 + i).parse().unwrap()),
        ));
    }
    r
}

fn bench_wire(c: &mut Criterion) {
    let msg = sample_response();
    let wire = msg.encode();
    let mut g = c.benchmark_group("dnswire");
    g.throughput(Throughput::Bytes(wire.len() as u64));
    g.bench_function("encode_ns_response", |b| {
        b.iter(|| black_box(black_box(&msg).encode()));
    });
    g.bench_function("decode_ns_response", |b| {
        b.iter(|| Message::decode(black_box(&wire)).unwrap());
    });
    // The zero-copy view path: same wire bytes, borrowed labels/rdata.
    g.bench_function("parse_ref_ns_response", |b| {
        b.iter(|| MessageRef::parse(black_box(&wire)).unwrap());
    });
    // What a feed consumer actually does per packet: borrowed parse, then
    // the qname's canonical wire form into a reused scratch buffer (the
    // interning key) — still no owned Message.
    let mut scratch = Vec::with_capacity(64);
    g.bench_function("parse_ref_and_canonical_qname", |b| {
        b.iter(|| {
            let m = MessageRef::parse(black_box(&wire)).unwrap();
            scratch.clear();
            m.questions[0].name.write_canonical(&mut scratch);
            black_box(scratch.len())
        });
    });
    g.bench_function("roundtrip", |b| {
        b.iter(|| Message::decode(&black_box(&msg).encode()).unwrap());
    });
    g.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
