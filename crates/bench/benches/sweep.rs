//! OpenINTEL measurement-path throughput: per-window resolution of a
//! large NSSet, with and without the wire-exercise option.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dnssim::{Deployment, Infra, LoadBook, NsSetId, Resolver};
use netbase::Asn;
use openintel::{measure::measure_window, SweepSchedule};
use simcore::rng::RngFactory;
use simcore::time::Window;
use std::hint::black_box;

fn world() -> (Infra, NsSetId) {
    let mut infra = Infra::new();
    let ids: Vec<_> = (0..3)
        .map(|i| {
            infra.add_nameserver(
                format!("ns{i}.host.net").parse().unwrap(),
                format!("198.51.{i}.53").parse().unwrap(),
                Asn(64500),
                Deployment::Unicast,
                100_000.0,
                1_000.0,
                15.0,
            )
        })
        .collect();
    let set = infra.intern_nsset(ids);
    for i in 0..30_000 {
        infra.add_domain(format!("d{i}.example").parse().unwrap(), set);
    }
    (infra, set)
}

fn bench_sweep(c: &mut Criterion) {
    let (infra, set) = world();
    let schedule = SweepSchedule::new(1);
    let rngs = RngFactory::new(2);
    let loads = LoadBook::new();
    let per_window = schedule.domains_in_window(&infra, set, Window(100)).len() as u64;

    let mut g = c.benchmark_group("openintel_sweep");
    g.throughput(Throughput::Elements(per_window));
    g.bench_function("measure_window/struct_only", |b| {
        let resolver = Resolver::default();
        b.iter(|| {
            black_box(measure_window(
                &infra,
                &schedule,
                &resolver,
                set,
                black_box(Window(100)),
                &loads,
                &rngs,
            ))
        });
    });
    g.bench_function("measure_window/wire_exercised", |b| {
        let resolver = Resolver { exercise_wire: true, ..Resolver::default() };
        b.iter(|| {
            black_box(measure_window(
                &infra,
                &schedule,
                &resolver,
                set,
                black_box(Window(100)),
                &loads,
                &rngs,
            ))
        });
    });
    // The closed-form aggregate fidelity: per-(NSSet, window) cost of the
    // exact expected-outcome enumeration vs sampling every domain.
    g.throughput(Throughput::Elements(1));
    g.bench_function("expected_outcome/closed_form", |b| {
        let resolver = Resolver::default();
        b.iter(|| {
            black_box(openintel::expected_outcome(
                &infra,
                &resolver,
                set,
                black_box(Window(100)),
                &loads,
            ))
        });
    });
    g.finish();
}

criterion_group!(benches, bench_sweep);
criterion_main!(benches);
