//! Telescope path throughput: backscatter sampling + RSDoS classification
//! + episode extraction over a month of attacks.

use attack::{AttackScheduler, ScheduleConfig, TargetPool};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use simcore::rng::RngFactory;
use simcore::time::Month;
use std::hint::black_box;
use std::net::Ipv4Addr;
use telescope::{BackscatterSampler, Darknet, RsdosClassifier};

fn bench_telescope(c: &mut Criterion) {
    let rngs = RngFactory::new(3);
    let months = vec![Month::new(2021, 1)];
    let cfg = ScheduleConfig {
        attacks_per_month: vec![4_000],
        dns_share_per_month: vec![0.012],
        months,
        ..ScheduleConfig::default()
    };
    let pool =
        TargetPool::uniform((0..100).map(|i| Ipv4Addr::new(198, 51, i, 53)).collect(), vec![]);
    let attacks = AttackScheduler::new(cfg).generate(&pool, &rngs);
    let darknet = Darknet::ucsd_like();
    let sampler = BackscatterSampler::new(&darknet);
    let obs = sampler.sample(&attacks, &rngs);
    let classifier = RsdosClassifier::default();
    let records = classifier.classify(&obs);

    let mut g = c.benchmark_group("telescope");
    g.throughput(Throughput::Elements(attacks.len() as u64));
    g.bench_function("backscatter_sample/4000_attacks", |b| {
        b.iter(|| black_box(sampler.sample(black_box(&attacks), &rngs)));
    });
    g.throughput(Throughput::Elements(obs.len() as u64));
    g.bench_function("classify", |b| {
        b.iter(|| black_box(classifier.classify(black_box(&obs))));
    });
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("episodes", |b| {
        b.iter(|| black_box(classifier.episodes(black_box(&records))));
    });
    g.finish();
}

criterion_group!(benches, bench_telescope);
criterion_main!(benches);
