//! Longest-prefix-match performance of the prefix trie backing the
//! prefix2as table (every feed record pays one lookup in the join).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use netbase::{Asn, Ipv4Net, Prefix2As};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use std::net::Ipv4Addr;

fn build_table(routes: u32) -> Prefix2As {
    let mut rng = SmallRng::seed_from_u64(7);
    let mut p2a = Prefix2As::new();
    for i in 0..routes {
        let addr = Ipv4Addr::from(rng.random::<u32>());
        let len = *[8u8, 12, 16, 20, 22, 24].get(i as usize % 6).unwrap();
        p2a.announce(Ipv4Net::new(addr, len), Asn(i));
    }
    p2a
}

fn bench_trie(c: &mut Criterion) {
    let mut g = c.benchmark_group("prefix_trie");
    for routes in [1_000u32, 10_000, 100_000] {
        let p2a = build_table(routes);
        let mut rng = SmallRng::seed_from_u64(9);
        let probes: Vec<Ipv4Addr> =
            (0..1_000).map(|_| Ipv4Addr::from(rng.random::<u32>())).collect();
        g.throughput(Throughput::Elements(probes.len() as u64));
        g.bench_function(format!("lpm_lookup/{routes}_routes"), |b| {
            b.iter(|| {
                let mut hits = 0u32;
                for &ip in &probes {
                    if p2a.asn_of(black_box(ip)).is_some() {
                        hits += 1;
                    }
                }
                black_box(hits)
            });
        });
    }
    g.finish();
}

criterion_group!(benches, bench_trie);
criterion_main!(benches);
