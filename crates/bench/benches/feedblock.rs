//! Throughput of the arena-backed feed-block path: packing qualifying
//! records into a shared buffer, scanning them back out, and extracting
//! episodes straight from the block — records/sec via `Throughput::Elements`
//! and bytes/sec via `Throughput::Bytes` on the packed arena.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use telescope::{BackscatterObs, RecordBlock, RsdosClassifier, RsdosRecord, RsdosThresholds};

const OBS: usize = 10_000;

/// A deterministic observation mix: ~1k victims, 64 windows, all three
/// protocols, everything above the default thresholds so the classifier
/// keeps every row (worst case for the packing path).
fn observations() -> Vec<BackscatterObs> {
    let mut rng = SmallRng::seed_from_u64(7);
    (0..OBS)
        .map(|_| {
            let packets = rng.random_range(25u64..5_000);
            BackscatterObs {
                victim: std::net::Ipv4Addr::from(0xCB00_7100 | rng.random_range(0u32..1_024)),
                window: simcore::time::Window(rng.random_range(0u64..64)),
                packets,
                slash16s: rng.random_range(2u32..120),
                protocol: [attack::Protocol::Tcp, attack::Protocol::Udp, attack::Protocol::Icmp]
                    [rng.random_range(0usize..3)],
                first_port: rng.random(),
                unique_ports: rng.random_range(1u16..40),
                max_ppm: packets as f64 / 5.0,
            }
        })
        .collect()
}

fn bench_feedblock(c: &mut Criterion) {
    let obs = observations();
    let classifier = RsdosClassifier::new(RsdosThresholds::default());
    let records = classifier.classify(&obs);
    let block = classifier.classify_into_block(&obs);
    assert_eq!(block.len(), records.len(), "bench input must qualify fully");

    let mut g = c.benchmark_group("feedblock");

    // Records per second through each build path.
    g.throughput(Throughput::Elements(records.len() as u64));
    g.bench_function("classify_rows", |b| {
        b.iter(|| black_box(classifier.classify(black_box(&obs))));
    });
    g.bench_function("classify_into_block", |b| {
        b.iter(|| black_box(classifier.classify_into_block(black_box(&obs))));
    });
    g.bench_function("block_scan", |b| {
        b.iter(|| {
            let mut packets = 0u64;
            for r in black_box(&block).iter() {
                packets = packets.wrapping_add(r.packets);
            }
            black_box(packets)
        });
    });
    g.bench_function("episodes_from_rows", |b| {
        b.iter(|| black_box(classifier.episodes(black_box(&records))));
    });
    g.bench_function("episodes_from_block", |b| {
        b.iter(|| black_box(classifier.episodes_from_block(black_box(&block))));
    });

    // Topic fan-out cost: a block clone is a refcount bump on the shared
    // arena; the row path deep-copies every record per subscriber.
    g.bench_function("fanout_rows_clone", |b| {
        b.iter(|| black_box(black_box(&records).clone()));
    });
    g.bench_function("fanout_block_clone", |b| {
        b.iter(|| black_box(black_box(&block).clone()));
    });

    // Bytes per second over the packed arena (the wire/transport view).
    g.throughput(Throughput::Bytes(block.arena_bytes() as u64));
    g.bench_function("block_rebuild_from_rows", |b| {
        b.iter(|| black_box(RecordBlock::from_records(black_box(&records).iter())));
    });
    g.finish();

    // Sanity outside timing: block rows decode back to the row path.
    let decoded: Vec<RsdosRecord> = block.iter().collect();
    assert_eq!(decoded, records);
}

criterion_group!(benches, bench_feedblock);
criterion_main!(benches);
