//! The `repro bench --scale-sweep` runner: the pinned longitudinal
//! pipeline at scale ∈ {1.5k, 15k, 150k, 1.5M} × jobs ∈ {1, N}, emitting
//! one [`obs::SweepCell`] of throughput/wall/peak-RSS per grid point.
//!
//! A sweep "scale" is the *target attack count*: the paper's pinned
//! catalog totals [`PAPER_TOTAL_ATTACKS`] attacks, and
//! [`divisor_for_target`] picks the `PaperScale` divisor that lands
//! nearest the target (the scheduler's per-month floor of 100 keeps tiny
//! targets slightly above nominal). The world is built once and shared by
//! every cell; per scale the attack catalog is generated once and shared
//! by the jobs=1 and jobs=N cells, so each cell times *only* the
//! longitudinal pipeline — the parallel hot path the sweep exists to
//! measure — not the single-threaded world construction.
//!
//! Every cell's artifacts are fingerprinted (episode feed, joined events,
//! impact rows, down to the f64 bits) and the jobs=N fingerprint must
//! equal the jobs=1 fingerprint at the same scale: a sweep that produces
//! a report has *proven* cross-jobs determinism at every scale it swept,
//! not sampled it.

use dnsimpact_core::longitudinal::{self, LongitudinalConfig, LongitudinalReport};
use scenarios::{paper_longitudinal_config, world, PaperScale, WorldConfig};
use simcore::rng::RngFactory;
use telescope::Darknet;

/// Total attacks in the paper's RSDoS catalog and the divisor that lands
/// nearest a target count — defined next to the Table 3 calibration in
/// `scenarios`, re-exported here because the sweep named them first.
pub use scenarios::{divisor_for_target, PAPER_TOTAL_ATTACKS};

/// One sweep request: the grid plus the run identity.
pub struct SweepConfig {
    pub seed: u64,
    pub chaos_seed: Option<u64>,
    /// Target attack counts, ascending.
    pub scales: Vec<u64>,
    /// Worker counts, ascending, starting with 1 (the speedup baseline).
    pub jobs: Vec<usize>,
    pub world_cfg: WorldConfig,
    /// `DNSIMPACT_SCALE_HEAVY` level recorded in the report meta.
    pub heavy: u64,
}

/// FNV-1a over everything `Debug`-printed into it — fingerprints a cell's
/// artifacts without materializing the (potentially huge) debug string.
struct FnvWriter(u64);

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        Ok(())
    }
}

/// Fingerprint the deterministic artifacts of one longitudinal run: the
/// episode feed, the joined DNS attack events, and the impact rows.
/// `Debug` on `f64` prints the shortest round-tripping form, so equal
/// fingerprints mean bit-equal floats.
fn fingerprint(report: &LongitudinalReport) -> u64 {
    use std::fmt::Write as _;
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    let _ = write!(w, "{:?}", report.feed.episodes);
    let _ = write!(w, "{:?}", report.dns_events);
    let _ = write!(w, "{:?}", report.impacts);
    let _ = write!(w, "{:?}", report.monthly);
    w.0
}

fn counter_delta(before: &obs::Snapshot, after: &obs::Snapshot, name: &str) -> u64 {
    after.counters.get(name).copied().unwrap_or(0) - before.counters.get(name).copied().unwrap_or(0)
}

/// Run the sweep grid and assemble the `dnsimpact-sweep/v1` report.
///
/// Fails (rather than emitting a report) if any jobs>1 cell's artifact
/// fingerprint differs from its scale's jobs=1 cell — a determinism
/// violation must never produce a committable artifact.
pub fn run_scale_sweep(cfg: &SweepConfig) -> Result<obs::SweepReport, String> {
    if cfg.jobs.first() != Some(&1) {
        return Err("sweep jobs list must start with 1 (the speedup baseline)".into());
    }
    let rngs = RngFactory::new(cfg.seed);
    let built = {
        let _span = obs::span("sweep-world");
        world::build(&cfg.world_cfg, &rngs)
    };
    let darknet = Darknet::ucsd_like();
    let mut cells = Vec::new();

    for &scale in &cfg.scales {
        let schedule_cfg =
            paper_longitudinal_config(PaperScale { divisor: divisor_for_target(scale) });
        let months = schedule_cfg.months.clone();
        let attacks = {
            let _span = obs::span("sweep-attacks");
            attack::AttackScheduler::new(schedule_cfg).generate(&built.target_pool(), &rngs)
        };

        let mut jobs1: Option<(u64, u64)> = None; // (wall_ms, fingerprint)
        for &jobs in &cfg.jobs {
            let mut config = LongitudinalConfig { jobs, ..LongitudinalConfig::default() };
            config.impact.chaos_seed = cfg.chaos_seed;

            obs::rss::reset_peak();
            let before = obs::registry().snapshot();
            let start = std::time::Instant::now();
            let report = longitudinal::run(
                &built.infra,
                &darknet,
                &attacks,
                &months,
                &built.meta,
                &config,
                &rngs,
            );
            let wall_ms = start.elapsed().as_millis() as u64;
            let after = obs::registry().snapshot();
            let peak_rss_kb = obs::rss::peak_rss_kb();

            let fp = fingerprint(&report);
            let episodes = report.feed.episodes.len() as u64;
            // Counter deltas cover *all* work the cell did — the join
            // counters include both the open-resolver-filtered pass and
            // the unfiltered comparison pass.
            let joined_rows = counter_delta(&before, &after, "join.rows_joined");
            let records_measured = counter_delta(&before, &after, "openintel.records_measured");
            let records = episodes + joined_rows + records_measured;

            let (speedup, wall_for_rate) = match jobs1 {
                None => {
                    jobs1 = Some((wall_ms, fp));
                    (1.0, wall_ms)
                }
                Some((base_wall, base_fp)) => {
                    if fp != base_fp {
                        return Err(format!(
                            "determinism violation at scale {scale}: jobs={jobs} fingerprint \
                             {fp:#018x} != jobs=1 fingerprint {base_fp:#018x}"
                        ));
                    }
                    (base_wall.max(1) as f64 / wall_ms.max(1) as f64, wall_ms)
                }
            };
            obs::progress(
                "sweep",
                &format!(
                    "cell scale={scale} jobs={jobs}: {episodes} episodes, \
                     {records} records in {wall_ms} ms (speedup {speedup:.2}x)"
                ),
            );
            cells.push(obs::SweepCell {
                scale,
                jobs: jobs as u64,
                episodes,
                joined_rows,
                records_measured,
                records,
                wall_ms,
                peak_rss_kb,
                records_per_sec: records as f64 * 1_000.0 / wall_for_rate.max(1) as f64,
                speedup_vs_jobs1: speedup,
            });
        }
    }

    Ok(obs::SweepReport {
        meta: obs::SweepMeta {
            seed: cfg.seed,
            chaos_seed: cfg.chaos_seed,
            date: obs::report::today_utc(),
            heavy: cfg.heavy,
        },
        cells,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn divisor_hits_known_targets() {
        assert_eq!(divisor_for_target(1_500), 2_693);
        assert_eq!(divisor_for_target(15_000), 269);
        assert_eq!(divisor_for_target(150_000), 27);
        assert_eq!(divisor_for_target(1_500_000), 3);
        // Degenerate targets stay sane.
        assert_eq!(divisor_for_target(0), divisor_for_target(1));
        assert_eq!(divisor_for_target(u64::MAX), 1);
    }

    #[test]
    fn jobs_list_must_lead_with_one() {
        let cfg = SweepConfig {
            seed: 1,
            chaos_seed: None,
            scales: vec![1_500],
            jobs: vec![2, 4],
            world_cfg: WorldConfig::default(),
            heavy: 0,
        };
        assert!(run_scale_sweep(&cfg).unwrap_err().contains("must start with 1"));
    }

    #[test]
    fn tiny_sweep_produces_valid_sorted_report() {
        let cfg = SweepConfig {
            seed: 1,
            chaos_seed: Some(9),
            scales: vec![1_500],
            jobs: vec![1, 2],
            world_cfg: WorldConfig { providers: 20, domains: 6_000, ..WorldConfig::default() },
            heavy: 0,
        };
        let report = run_scale_sweep(&cfg).unwrap();
        assert_eq!(report.cells.len(), 2);
        assert_eq!(report.cells[0].jobs, 1);
        assert_eq!(report.cells[0].speedup_vs_jobs1, 1.0);
        assert!(report.cells[1].records > 0);
        // Same scale, same catalog: both cells processed identical work.
        assert_eq!(report.cells[0].records, report.cells[1].records);
        obs::sweep::validate(&report.to_json()).unwrap();
    }
}
