//! Per-experiment completion markers for resumable `repro` runs.
//!
//! A checkpoint directory holds one `<spec>.done` marker per completed
//! experiment job. Markers are written atomically (tmp + rename) and only
//! *after* the job's artifacts have themselves been renamed into place, so
//! a run killed at any instant — even mid-write — leaves the directory in
//! one of two states per job: fully recorded, or not recorded at all. A
//! resumed run skips recorded jobs and re-runs the rest; because every job
//! is a pure function of `(seed, spec)`, the artifacts it re-creates are
//! byte-identical to the ones the killed run would have written.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Handle to a checkpoint directory (created on open).
pub struct CheckpointDir {
    dir: PathBuf,
}

impl CheckpointDir {
    pub fn new(dir: &Path) -> io::Result<CheckpointDir> {
        fs::create_dir_all(dir)?;
        Ok(CheckpointDir { dir: dir.to_path_buf() })
    }

    pub fn path(&self) -> &Path {
        &self.dir
    }

    fn marker(&self, spec: &str) -> PathBuf {
        self.dir.join(format!("{spec}.done"))
    }

    /// Has `spec` been recorded as complete by a previous (or this) run?
    pub fn is_done(&self, spec: &str) -> bool {
        self.marker(spec).exists()
    }

    /// Record `spec` as complete. The marker stores the results-index
    /// lines of the spec's artifacts so a resumed run can rebuild
    /// `INDEX.md` without re-rendering anything. Call this only after the
    /// artifacts themselves are safely on disk.
    pub fn mark_done(&self, spec: &str, index_lines: &[String]) -> io::Result<()> {
        dnsimpact_core::report::write_atomic(&self.marker(spec), &index_lines.concat())
    }

    /// The index lines recorded by [`CheckpointDir::mark_done`] (empty if
    /// the spec is not done).
    pub fn done_index_lines(&self, spec: &str) -> Vec<String> {
        fs::read_to_string(self.marker(spec))
            .map(|s| s.lines().map(|l| format!("{l}\n")).collect())
            .unwrap_or_default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(name: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("dnsimpact-ckpt-{name}"));
        let _ = fs::remove_dir_all(&d);
        d
    }

    #[test]
    fn roundtrip_marker() {
        let dir = tmpdir("roundtrip");
        let c = CheckpointDir::new(&dir).unwrap();
        assert!(!c.is_done("fig5"));
        let lines = vec!["- `fig5.csv` — Figure 5\n".to_string()];
        c.mark_done("fig5", &lines).unwrap();
        assert!(c.is_done("fig5"));
        assert_eq!(c.done_index_lines("fig5"), lines);
        assert!(!c.is_done("fig6"));
        assert!(c.done_index_lines("fig6").is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn no_tmp_remnant() {
        let dir = tmpdir("tmpfile");
        let c = CheckpointDir::new(&dir).unwrap();
        c.mark_done("russia", &["- a\n".into(), "- b\n".into()]).unwrap();
        assert!(!dir.join("russia.done.tmp").exists());
        assert_eq!(c.done_index_lines("russia").len(), 2);
        fs::remove_dir_all(&dir).unwrap();
    }
}
