//! `repro watch HOST:PORT` — a polling terminal dashboard for a live
//! `dnsimpactd`.
//!
//! Renders to **stderr** (the stdout determinism rule applies to `repro`
//! like everything else): per-frame it fetches `/statz`, `/sloz`, and a
//! handful of `/seriesz` windows, then draws sparkline trajectories, the
//! SLO verdict table, and the staleness/ingest header. The daemon being
//! unreachable is a rendered state, not an exit — watch survives daemon
//! restarts the way the daemon survives kills.
//!
//! `--frames N` bounds the run (the CI gate uses `--frames 2`);
//! `--interval-ms` sets the poll cadence. Exit 0 once the frame budget is
//! spent, or run until ^C without one.

use obs::Json;
use std::net::SocketAddr;
use std::time::Duration;

/// Poll cadence and lifetime of the watch loop.
pub struct WatchConfig {
    pub interval_ms: u64,
    /// Stop after this many rendered frames (None = run until killed).
    pub frames: Option<u64>,
}

impl Default for WatchConfig {
    fn default() -> WatchConfig {
        WatchConfig { interval_ms: 1_000, frames: None }
    }
}

const SPARKS: [char; 8] = ['▁', '▂', '▃', '▄', '▅', '▆', '▇', '█'];

/// Scale a window of values into a sparkline string. A flat series
/// renders as a flat low bar rather than dividing by zero.
pub fn sparkline(values: &[u64]) -> String {
    let Some(&max) = values.iter().max() else { return String::new() };
    let Some(&min) = values.iter().min() else { return String::new() };
    values
        .iter()
        .map(|&v| {
            let idx = if max == min {
                0
            } else {
                (((v - min) as u128 * (SPARKS.len() - 1) as u128) / (max - min) as u128) as usize
            };
            SPARKS[idx]
        })
        .collect()
}

fn get_json(addr: SocketAddr, path: &str) -> Option<Json> {
    let (status, body) = dnsimpactd::http_get(addr, path, Duration::from_secs(2)).ok()?;
    if !(200..300).contains(&status) {
        return None;
    }
    Json::parse(&body).ok()
}

fn u64_field(doc: &Json, key: &str) -> u64 {
    doc.get(key).and_then(|v| v.as_u64()).unwrap_or(0)
}

/// One series' recent window, fetched from `/seriesz`.
fn series_window(addr: SocketAddr, name: &str, last: usize) -> Option<(Vec<u64>, u64)> {
    let doc = get_json(addr, &format!("/seriesz?name={name}&last={last}"))?;
    // Deterministic live.* series carry their points under
    // "deterministic"; annotation series under "annotation.points".
    let points = doc
        .get("deterministic")
        .filter(|d| d.get("values").is_some())
        .cloned()
        .or_else(|| doc.get("annotation").and_then(|a| a.get("points")).cloned())?;
    let values: Vec<u64> =
        points.get("values")?.as_array()?.iter().filter_map(|v| v.as_u64()).collect();
    let cumulative = u64_field(&points, "cumulative");
    Some((values, cumulative))
}

/// Render one frame of the dashboard into a string (tested directly; the
/// loop prints it to stderr).
pub fn render_frame(addr: SocketAddr, frame: u64) -> String {
    let mut out = String::new();
    let Some(statz) = get_json(addr, "/statz") else {
        return format!("dnsimpactd watch — {addr} — frame {frame}\n  daemon unreachable\n");
    };
    let applied = u64_field(&statz, "applied_seq");
    let total = u64_field(&statz, "total_batches");
    let staleness = u64_field(&statz, "staleness_s");
    let ready = matches!(statz.get("ready"), Some(Json::Bool(true)));
    let ckpt = u64_field(&statz, "checkpoint_seq");
    out.push_str(&format!(
        "dnsimpactd watch — {addr} — frame {frame}\n\
         ingest  seq {applied}/{total}  checkpoint {ckpt}  staleness {staleness}s  ready {ready}\n\
         serving received {} served {} shed {}\n",
        u64_field(&statz, "queries_received"),
        u64_field(&statz, "queries_served"),
        u64_field(&statz, "queries_shed"),
    ));

    for (label, name) in [
        ("records/tick ", "live.records"),
        ("staleness_s  ", "live.staleness_s"),
        ("ingest_lag   ", "live.ingest_lag"),
        ("served/tick  ", "sched.daemon.queries_served"),
    ] {
        match series_window(addr, name, 48) {
            Some((values, cumulative)) => {
                let last = values.last().copied().unwrap_or(0);
                out.push_str(&format!(
                    "  {label} {} last {last} cum {cumulative}\n",
                    sparkline(&values)
                ));
            }
            None => out.push_str(&format!("  {label} (no data yet)\n")),
        }
    }

    match get_json(addr, "/sloz") {
        Some(sloz) => {
            if let Some(statuses) =
                sloz.get("annotation").and_then(|a| a.get("statuses")).and_then(|s| s.as_array())
            {
                out.push_str("  slo     ");
                for s in statuses {
                    let name = s.get("name").and_then(|v| v.as_str()).unwrap_or("?");
                    let status = s.get("status").and_then(|v| v.as_str()).unwrap_or("?");
                    let burn = u64_field(s, "burn_permille");
                    out.push_str(&format!("{name}={status}({burn}‰) "));
                }
                out.push('\n');
            }
            let diagnosis = sloz
                .get("annotation")
                .and_then(|a| a.get("diagnosis"))
                .and_then(|d| d.as_str())
                .unwrap_or("unknown");
            out.push_str(&format!("  verdict {diagnosis}\n"));
        }
        None => out.push_str("  slo     (live telemetry not enabled)\n"),
    }
    out
}

/// The watch loop. Returns a process exit code.
pub fn run(addr: SocketAddr, cfg: &WatchConfig) -> i32 {
    let mut frame = 0u64;
    loop {
        frame += 1;
        eprint!("{}", render_frame(addr, frame));
        eprintln!();
        if cfg.frames.is_some_and(|n| frame >= n) {
            return 0;
        }
        std::thread::sleep(Duration::from_millis(cfg.interval_ms));
    }
}

#[cfg(test)]
mod tests {
    use super::sparkline;

    #[test]
    fn sparkline_scales_min_to_max() {
        let s = sparkline(&[0, 1, 2, 3, 4, 5, 6, 7]);
        assert_eq!(s, "▁▂▃▄▅▆▇█");
        assert_eq!(sparkline(&[]), "");
        // Flat series: no divide-by-zero, renders the low bar.
        assert_eq!(sparkline(&[5, 5, 5]), "▁▁▁");
        // Large values must not overflow the scaling arithmetic.
        let s = sparkline(&[0, u64::MAX]);
        assert_eq!(s, "▁█");
    }
}
