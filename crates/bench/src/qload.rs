//! The daemon query-load generator: Zipf-popular domain queries from N
//! concurrent clients against a running `dnsimpactd` HTTP endpoint.
//!
//! Domain popularity follows a Zipf draw over the directory's
//! deterministic name order (rank 1 = lexicographically first), the same
//! heavy-tailed shape real resolver workloads show — which is what makes
//! the overload test honest: the hot ranks hammer the same snapshot while
//! the tail sprays the index. Per-query RTTs land in the existing
//! `obs::histogram` machinery (`sched.qload.rtt_us`), so percentiles come
//! from the same log-bucketed estimator every other latency in the
//! workspace uses.
//!
//! Outcomes are classified exactly once per query — `ok` (200),
//! `not_found` (404), `shed` (503), `errors` (transport failure) — so the
//! caller can check the daemon's shed accounting against its own books.

use dnsimpactd::http_get;
use simcore::dist::Zipf;
use simcore::rng::RngFactory;
use std::net::SocketAddr;
use std::time::{Duration, Instant};

/// Query-load shape.
#[derive(Clone, Debug)]
pub struct QloadConfig {
    pub seed: u64,
    /// Concurrent client threads.
    pub clients: usize,
    /// Queries per client.
    pub queries_per_client: usize,
    /// Zipf exponent over the domain rank order.
    pub zipf_s: f64,
    pub timeout: Duration,
}

impl Default for QloadConfig {
    fn default() -> QloadConfig {
        QloadConfig {
            seed: 42,
            clients: 4,
            queries_per_client: 250,
            zipf_s: 1.1,
            timeout: Duration::from_secs(5),
        }
    }
}

/// What happened across the whole run. `sent == ok + not_found + shed +
/// errors` by construction (every query is classified exactly once).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct QloadStats {
    pub sent: u64,
    pub ok: u64,
    pub not_found: u64,
    pub shed: u64,
    pub errors: u64,
    pub wall_ms: u64,
}

impl QloadStats {
    pub fn qps(&self) -> f64 {
        if self.wall_ms == 0 {
            0.0
        } else {
            self.sent as f64 * 1_000.0 / self.wall_ms as f64
        }
    }

    fn absorb(&mut self, other: QloadStats) {
        self.sent += other.sent;
        self.ok += other.ok;
        self.not_found += other.not_found;
        self.shed += other.shed;
        self.errors += other.errors;
    }
}

/// Fire the configured load at `addr` and classify every response.
/// `names` must be in the directory's deterministic rank order.
pub fn run(addr: SocketAddr, names: &[String], cfg: &QloadConfig) -> QloadStats {
    assert!(!names.is_empty(), "query load needs a non-empty domain directory");
    let rngs = RngFactory::new(cfg.seed);
    let zipf = Zipf::new(names.len(), cfg.zipf_s);
    let start = Instant::now();
    let mut totals = QloadStats::default();
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..cfg.clients.max(1))
            .map(|client| {
                let mut rng = rngs.stream_indexed("qload-client", client as u64);
                let zipf = &zipf;
                let names = &names;
                scope.spawn(move || {
                    let mut s = QloadStats::default();
                    for _ in 0..cfg.queries_per_client {
                        let rank = zipf.sample(&mut rng);
                        let name = &names[rank - 1];
                        let t0 = Instant::now();
                        let outcome = http_get(addr, &format!("/query?domain={name}"), cfg.timeout);
                        obs::histogram("sched.qload.rtt_us")
                            .record(t0.elapsed().as_micros() as u64);
                        s.sent += 1;
                        match outcome {
                            Ok((200, _)) => s.ok += 1,
                            Ok((404, _)) => s.not_found += 1,
                            Ok((503, _)) => s.shed += 1,
                            Ok(_) | Err(_) => s.errors += 1,
                        }
                    }
                    s
                })
            })
            .collect();
        for h in handles {
            if let Ok(s) = h.join() {
                totals.absorb(s);
            }
        }
    });
    totals.wall_ms = start.elapsed().as_millis() as u64;
    totals
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_account_and_qps_is_sane() {
        let mut s = QloadStats { sent: 0, ok: 7, not_found: 1, shed: 2, errors: 0, wall_ms: 500 };
        s.sent = s.ok + s.not_found + s.shed + s.errors;
        assert_eq!(s.sent, 10);
        assert!((s.qps() - 20.0).abs() < 1e-9);
        assert_eq!(QloadStats::default().qps(), 0.0);
    }
}
