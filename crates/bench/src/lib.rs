//! Shared machinery for the reproduction harness (`repro` binary) and the
//! Criterion benchmarks: builds the standard experiment world, runs the
//! longitudinal pipeline, and renders every table/figure series of the
//! paper as text + CSV.

use dnsimpact_core::casestudy::TimePoint;
use dnsimpact_core::longitudinal::{self, LongitudinalConfig, LongitudinalReport};
use dnsimpact_core::report::{fmt_count, fmt_pct, render_csv, render_table};
use reactive::ReactivePlatform;
use scenarios::{
    correlate_messages, osint, paper_longitudinal_config, world, MilRuScenario, PaperScale,
    RdzScenario, TransIpScenario, WorldConfig,
};
use simcore::rng::RngFactory;
use simcore::stats::quantile;
use simcore::time::{Month, SimDuration};
use std::sync::Arc;
use telescope::Darknet;

pub mod checkpoint;
pub mod qload;
pub mod suite;
pub mod sweep;
pub mod watch;
pub use checkpoint::CheckpointDir;
pub use qload::{QloadConfig, QloadStats};
pub use suite::{run_suite, SuiteRunConfig, SuiteSel};
pub use sweep::{divisor_for_target, run_scale_sweep, SweepConfig, PAPER_TOTAL_ATTACKS};
pub use watch::{sparkline, WatchConfig};

/// A fully materialized longitudinal experiment.
pub struct Experiments {
    pub world: world::BuiltWorld,
    pub attacks: Vec<attack::Attack>,
    pub months: Vec<Month>,
    pub darknet: Darknet,
    pub report: LongitudinalReport,
    pub rngs: RngFactory,
}

/// Build the standard world and run the full longitudinal pipeline with
/// the machine's available parallelism.
pub fn run_experiments(seed: u64, scale: PaperScale, world_cfg: &WorldConfig) -> Experiments {
    run_experiments_with_jobs(seed, scale, world_cfg, 0)
}

/// [`run_experiments`] with an explicit worker count for the pipeline's
/// parallel stages (`0` = available parallelism, `1` = sequential). The
/// report — and every artifact rendered from it — is byte-identical for
/// any `jobs` value.
pub fn run_experiments_with_jobs(
    seed: u64,
    scale: PaperScale,
    world_cfg: &WorldConfig,
    jobs: usize,
) -> Experiments {
    run_experiments_chaos(seed, scale, world_cfg, jobs, None)
}

/// [`run_experiments_with_jobs`] with an optional chaos seed: the impact
/// pipeline's measurement phase then runs under fault injection (scheduled
/// task crashes, supervised restarts). The report is byte-identical to a
/// fault-free run for any chaos seed — the knob only exercises recovery.
pub fn run_experiments_chaos(
    seed: u64,
    scale: PaperScale,
    world_cfg: &WorldConfig,
    jobs: usize,
    chaos_seed: Option<u64>,
) -> Experiments {
    let _span = obs::span("experiments");
    let rngs = RngFactory::new(seed);
    let (built, attacks, months, darknet) = {
        let _span = obs::span("world");
        let built = world::build(world_cfg, &rngs);
        let schedule_cfg = paper_longitudinal_config(scale);
        let months = schedule_cfg.months.clone();
        let scheduler = attack::AttackScheduler::new(schedule_cfg);
        let attacks = scheduler.generate(&built.target_pool(), &rngs);
        (built, attacks, months, Darknet::ucsd_like())
    };
    let mut config = LongitudinalConfig { jobs, ..LongitudinalConfig::default() };
    config.impact.chaos_seed = chaos_seed;
    let report = {
        let _span = obs::span("longitudinal-run");
        longitudinal::run(&built.infra, &darknet, &attacks, &months, &built.meta, &config, &rngs)
    };
    Experiments { world: built, attacks, months, darknet, report, rngs }
}

/// A rendered experiment artifact: a text table for stdout and CSV rows
/// for `results/`.
pub struct Artifact {
    pub id: &'static str,
    pub title: String,
    pub text: String,
    pub csv: String,
}

fn f(v: f64) -> String {
    if v.is_nan() {
        "-".into()
    } else if v >= 100.0 {
        format!("{v:.0}")
    } else {
        format!("{v:.2}")
    }
}

/// Table 1: RSDoS dataset summary.
pub fn table1(ex: &Experiments) -> Artifact {
    let s = ex.report.feed.summary(&ex.world.meta.prefix2as);
    let headers = ["Metric", "Measured", "Paper (full scale)"];
    let rows = vec![
        vec!["#Attacks".into(), fmt_count(s.attacks as u64), "4,039,485".into()],
        vec!["#IPs".into(), fmt_count(s.unique_ips as u64), "1,022,102".into()],
        vec!["#/24 Prefixes".into(), fmt_count(s.unique_slash24s as u64), "404,076".into()],
        vec!["#ASes".into(), fmt_count(s.unique_asns as u64), "25,821".into()],
    ];
    Artifact {
        id: "table1",
        title: "Table 1: RSDoS dataset summary (scaled run vs paper)".into(),
        text: render_table(&headers, &rows),
        csv: render_csv(&headers, &rows),
    }
}

/// Table 3: monthly attack activity.
pub fn table3(ex: &Experiments) -> Artifact {
    let headers =
        ["Month", "#DNS Attacks", "#Other Attacks", "Total", "DNS share", "DNS IPs", "Other IPs"];
    let mut rows: Vec<Vec<String>> = ex
        .report
        .monthly
        .iter()
        .map(|m| {
            vec![
                m.month.to_string(),
                fmt_count(m.dns_attacks),
                fmt_count(m.other_attacks),
                fmt_count(m.total_attacks()),
                fmt_pct(m.dns_share()),
                fmt_count(m.dns_ips),
                fmt_count(m.other_ips),
            ]
        })
        .collect();
    let (dns, other): (u64, u64) =
        ex.report.monthly.iter().fold((0, 0), |(a, b), m| (a + m.dns_attacks, b + m.other_attacks));
    rows.push(vec![
        "Total".into(),
        fmt_count(dns),
        fmt_count(other),
        fmt_count(dns + other),
        fmt_pct(dns as f64 / (dns + other).max(1) as f64),
        String::new(),
        String::new(),
    ]);
    Artifact {
        id: "table3",
        title: "Table 3: monthly attack activity (DNS vs other)".into(),
        text: render_table(&headers, &rows),
        csv: render_csv(&headers, &rows),
    }
}

/// Figure 5: monthly distributions of potentially affected domains.
pub fn fig5(ex: &Experiments) -> Artifact {
    let headers = ["Month", "Events", "Min", "Median", "P90", "Max"];
    let rows: Vec<Vec<String>> = ex
        .report
        .affected_domains_by_month
        .iter()
        .map(|(m, v)| {
            let mut xs: Vec<f64> = v.iter().map(|&x| x as f64).collect();
            vec![
                m.to_string(),
                fmt_count(v.len() as u64),
                f(quantile(&mut xs, 0.0).unwrap_or(f64::NAN)),
                f(quantile(&mut xs, 0.5).unwrap_or(f64::NAN)),
                f(quantile(&mut xs, 0.9).unwrap_or(f64::NAN)),
                f(quantile(&mut xs, 1.0).unwrap_or(f64::NAN)),
            ]
        })
        .collect();
    Artifact {
        id: "fig5",
        title: "Figure 5: registered domains potentially affected by attacks, by month".into(),
        text: render_table(&headers, &rows),
        csv: render_csv(&headers, &rows),
    }
}

/// Table 4: top attacked ASNs.
pub fn table4(ex: &Experiments) -> Artifact {
    let headers = ["ASN", "#Attacks", "Company"];
    let rows: Vec<Vec<String>> = ex
        .report
        .top_asns
        .iter()
        .map(|(asn, n, name)| vec![asn.to_string(), fmt_count(*n), name.clone()])
        .collect();
    Artifact {
        id: "table4",
        title: "Table 4: top 10 attacked ASNs (DNS-related victims)".into(),
        text: render_table(&headers, &rows),
        csv: render_csv(&headers, &rows),
    }
}

/// Table 5: top attacked IPs.
pub fn table5(ex: &Experiments) -> Artifact {
    let headers = ["IP", "#Attacks", "Type"];
    let rows: Vec<Vec<String>> = ex
        .report
        .top_ips
        .iter()
        .map(|(ip, n, open)| {
            vec![
                ip.to_string(),
                fmt_count(*n),
                if *open { "open resolver (filtered from analysis)" } else { "authoritative NS" }
                    .into(),
            ]
        })
        .collect();
    Artifact {
        id: "table5",
        title: "Table 5: top 10 attacked IPs".into(),
        text: render_table(&headers, &rows),
        csv: render_csv(&headers, &rows),
    }
}

/// Figure 6: protocol/port distribution, plus the §6.3.1 successful-attack
/// contrast.
pub fn fig6(ex: &Experiments) -> Artifact {
    use attack::Protocol::*;
    let b = &ex.report.port_breakdown;
    let s = &ex.report.successful_port_breakdown;
    let headers = ["Metric", "All DNS-infra attacks", "Successful attacks", "Paper (all)"];
    let rows = vec![
        vec![
            "single-port share".into(),
            fmt_pct(b.single_port_share()),
            fmt_pct(s.single_port_share()),
            "80.7%".into(),
        ],
        vec![
            "TCP share".into(),
            fmt_pct(b.protocol_share(Tcp)),
            fmt_pct(s.protocol_share(Tcp)),
            "90.4%".into(),
        ],
        vec![
            "UDP share".into(),
            fmt_pct(b.protocol_share(Udp)),
            fmt_pct(s.protocol_share(Udp)),
            "8.4%".into(),
        ],
        vec![
            "ICMP share".into(),
            fmt_pct(b.protocol_share(Icmp)),
            fmt_pct(s.protocol_share(Icmp)),
            "1.2%".into(),
        ],
        vec![
            "TCP→:80 (within TCP)".into(),
            fmt_pct(b.port_share_within(Tcp, 80)),
            fmt_pct(s.port_share_within(Tcp, 80)),
            "37%".into(),
        ],
        vec![
            "TCP→:53 (within TCP)".into(),
            fmt_pct(b.port_share_within(Tcp, 53)),
            fmt_pct(s.port_share_within(Tcp, 53)),
            "30%".into(),
        ],
        vec![
            "UDP→:53 (within UDP)".into(),
            fmt_pct(b.port_share_within(Udp, 53)),
            fmt_pct(s.port_share_within(Udp, 53)),
            "33%".into(),
        ],
        vec![
            "port 53 share (all)".into(),
            fmt_pct(b.port_share(53)),
            fmt_pct(s.port_share(53)),
            "49% of successful".into(),
        ],
    ];
    Artifact {
        id: "fig6",
        title: "Figure 6 (+§6.3.1): protocol/port distribution of attacks".into(),
        text: render_table(&headers, &rows),
        csv: render_csv(&headers, &rows),
    }
}

/// Figure 7: failure rate vs measured domains (scatter CSV) + headline
/// failure summary.
pub fn fig7(ex: &Experiments) -> Artifact {
    let pts = dnsimpact_core::failures::failure_points(&ex.report.impacts);
    let headers =
        ["domains_measured", "failure_rate", "nsset_domains", "anycast", "prefixes", "asns"];
    let rows: Vec<Vec<String>> = pts
        .iter()
        .map(|p| {
            vec![
                p.domains_measured.to_string(),
                format!("{:.4}", p.failure_rate),
                p.nsset_domains.to_string(),
                format!("{:?}", p.anycast),
                p.prefix_count.to_string(),
                p.asn_count.to_string(),
            ]
        })
        .collect();
    let fs = &ex.report.failure_summary;
    let text = format!(
        "Figure 7 headline numbers (§6.3.1):\n\
         impact events:               {}\n\
         events with failures:        {} ({})\n\
         complete failures:           {}\n\
         timeout share of failures:   {} (paper: 92%)\n\
         unicast share of failing:    {} (paper: ≈99%)\n\
         single-/24 share (complete): {} (paper: ≈60%)\n\
         single-ASN share (complete): {} (paper: ≈81%)\n\
         week-before baseline fallbacks (sensor outage): {}\n\
         events with no usable baseline:                 {}\n",
        fs.events,
        fs.events_with_failures,
        fmt_pct(fs.events_with_failures as f64 / fs.events.max(1) as f64),
        fs.complete_failures,
        fmt_pct(fs.timeout_share),
        fmt_pct(fs.unicast_share_of_failures),
        fmt_pct(fs.single_prefix_share_of_failures),
        fmt_pct(fs.single_asn_share_of_failures),
        ex.report.baseline_fallbacks(),
        ex.report.baselines_missing(),
    );
    Artifact {
        id: "fig7",
        title: "Figure 7: resolution failures vs measured domains".into(),
        text,
        csv: render_csv(&headers, &rows),
    }
}

/// Figure 8: RTT impact vs hosted-domain size class.
pub fn fig8(ex: &Experiments) -> Artifact {
    let impacts = &ex.report.impacts;
    let with_impact: Vec<(f64, u64)> =
        impacts.iter().filter_map(|e| e.impact_on_rtt.map(|i| (i, e.nsset_domains))).collect();
    let total = with_impact.len().max(1);
    let over10 = with_impact.iter().filter(|(i, _)| *i >= 10.0).count();
    let over100 = with_impact.iter().filter(|(i, _)| *i >= 100.0).count();
    let headers = ["size_class", "events", "median_impact", "p90_impact", "max_impact"];
    let classes: [(&str, u64, u64); 4] = [
        ("<100", 0, 100),
        ("100-10K", 100, 10_000),
        ("10K-1M", 10_000, 1_000_000),
        (">=1M", 1_000_000, u64::MAX),
    ];
    let rows: Vec<Vec<String>> = classes
        .iter()
        .map(|(label, lo, hi)| {
            let mut xs: Vec<f64> =
                with_impact.iter().filter(|(_, d)| d >= lo && d < hi).map(|(i, _)| *i).collect();
            let n = xs.len();
            vec![
                label.to_string(),
                n.to_string(),
                f(quantile(&mut xs, 0.5).unwrap_or(f64::NAN)),
                f(quantile(&mut xs, 0.9).unwrap_or(f64::NAN)),
                f(quantile(&mut xs, 1.0).unwrap_or(f64::NAN)),
            ]
        })
        .collect();
    let mut text = format!(
        "Figure 8 headline numbers (§6.3.2):\n\
         events with impact metric: {total}\n\
         ≥10x RTT events:  {over10} ({}) — paper: ≈5%\n\
         ≥100x RTT events: {over100} (paper: one-third of the ≥10x set)\n\n",
        fmt_pct(over10 as f64 / total as f64),
    );
    text.push_str(&render_table(&headers, &rows));
    let csv_rows: Vec<Vec<String>> =
        with_impact.iter().map(|(i, d)| vec![format!("{i:.3}"), d.to_string()]).collect();
    Artifact {
        id: "fig8",
        title: "Figure 8: RTT impact vs number of hosted domains".into(),
        text,
        csv: render_csv(&["impact_on_rtt", "nsset_domains"], &csv_rows),
    }
}

/// Figure 9: intensity vs impact correlation.
pub fn fig9(ex: &Experiments) -> Artifact {
    let s = &ex.report.intensity_impact;
    let headers = ["peak_ppm", "impact_on_rtt"];
    let rows: Vec<Vec<String>> =
        s.x.iter().zip(&s.y).map(|(x, y)| vec![format!("{x:.1}"), format!("{y:.3}")]).collect();
    let text = format!(
        "Figure 9: telescope intensity vs Impact_on_RTT\n\
         events: {}\n\
         Pearson r:       {} (paper: low / no strong correlation)\n\
         Pearson r (log): {}\n\
         Spearman ρ:      {}\n\
         median intensity: {} ppm (bimodal modes ≈50 / ≈6000 in the feed)\n",
        s.len(),
        s.pearson().map(|r| format!("{r:.3}")).unwrap_or("-".into()),
        s.pearson_log().map(|r| format!("{r:.3}")).unwrap_or("-".into()),
        s.spearman().map(|r| format!("{r:.3}")).unwrap_or("-".into()),
        s.x_median().map(f).unwrap_or("-".into()),
    );
    Artifact {
        id: "fig9",
        title: "Figure 9: attack intensity vs RTT impact".into(),
        text,
        csv: render_csv(&headers, &rows),
    }
}

/// Figure 10: duration vs impact.
pub fn fig10(ex: &Experiments) -> Artifact {
    let s = &ex.report.duration_impact;
    let hist = dnsimpact_core::correlate::duration_histogram(&ex.report.impacts);
    let headers = ["duration_min", "impact_on_rtt"];
    let rows: Vec<Vec<String>> =
        s.x.iter().zip(&s.y).map(|(x, y)| vec![format!("{x:.1}"), format!("{y:.3}")]).collect();
    let mut text = format!(
        "Figure 10: inferred duration vs Impact_on_RTT\n\
         events: {}, Pearson r: {}\n\
         duration histogram (bimodal 15 min / 1 h expected):\n",
        s.len(),
        s.pearson().map(|r| format!("{r:.3}")).unwrap_or("-".into()),
    );
    for (label, n) in hist {
        text.push_str(&format!("  {label:<14} {n}\n"));
    }
    Artifact {
        id: "fig10",
        title: "Figure 10: attack duration vs RTT impact".into(),
        text,
        csv: render_csv(&headers, &rows),
    }
}

fn resilience_artifact(
    id: &'static str,
    title: &str,
    rows_in: &[dnsimpact_core::resilience::ClassImpact],
) -> Artifact {
    let headers = [
        "class",
        "events",
        "median_impact",
        "p90_impact",
        "max_impact",
        ">=10x",
        ">=100x",
        "complete_failures",
    ];
    let rows: Vec<Vec<String>> = rows_in
        .iter()
        .map(|c| {
            vec![
                c.label.clone(),
                c.events.to_string(),
                f(c.median_impact),
                f(c.p90_impact),
                f(c.max_impact),
                c.over_10x.to_string(),
                c.over_100x.to_string(),
                c.complete_failures.to_string(),
            ]
        })
        .collect();
    Artifact {
        id,
        title: title.into(),
        text: render_table(&headers, &rows),
        csv: render_csv(&headers, &rows),
    }
}

/// Figure 11: anycast efficacy.
pub fn fig11(ex: &Experiments) -> Artifact {
    resilience_artifact(
        "fig11",
        "Figure 11: anycast vs DDoS (impact by anycast class)",
        &ex.report.by_anycast,
    )
}

/// Figure 12: AS diversity efficacy.
pub fn fig12(ex: &Experiments) -> Artifact {
    resilience_artifact(
        "fig12",
        "Figure 12: AS diversity (impact by distinct origin-AS count)",
        &ex.report.by_as_diversity,
    )
}

/// Figure 13: /24 prefix diversity efficacy.
pub fn fig13(ex: &Experiments) -> Artifact {
    resilience_artifact(
        "fig13",
        "Figure 13: /24 prefix diversity (impact by distinct /24 count)",
        &ex.report.by_prefix_diversity,
    )
}

/// §4.1 ablation: the paper "evaluated using different time-window
/// metrics as a baseline (e.g., Average RTT (Week/Month Before)) finding
/// similar results". Recompute each impact event against a
/// one-week-before baseline and compare with the day-before metric.
pub fn ablate_baseline(ex: &Experiments) -> Artifact {
    use dnssim::LoadBook;
    use openintel::measure::measure_domains;
    use openintel::MeasurementStore;
    use openintel::SweepSchedule;

    let infra = &ex.world.infra;
    let schedule = SweepSchedule::new(ex.rngs.seed());
    let resolver = dnssim::Resolver::default();
    let mut loads = LoadBook::new();
    for (addr, w, pps) in attack::accumulate_windows(&ex.attacks) {
        loads.add(addr, w, pps);
    }
    let mut day1 = Vec::new();
    let mut week1 = Vec::new();
    let mut store = MeasurementStore::new();
    let cap = 200usize;
    for e in ex.report.impacts.iter().filter(|e| e.impact_on_rtt.is_some()).take(cap) {
        let ep = &ex.report.feed.episodes[e.episode_idx];
        let Some(day_w) = ep.first_window.day().checked_sub(7) else { continue };
        // Materialize a sampled week-before baseline for this NSSet.
        let all = infra.domains_of_nsset(e.nsset);
        let step = (all.len() / 200).max(1);
        for &d in all.iter().step_by(step).take(200) {
            let w = schedule.window_on_day(d, day_w);
            let recs = measure_domains(infra, &resolver, &[d], e.nsset, w, &loads, &ex.rngs);
            store.ingest(&recs);
        }
        let Some(base) = store.day_stats(e.nsset, day_w) else { continue };
        if base.domains_measured == 0 || base.avg_rtt().is_nan() || base.avg_rtt() <= 0.0 {
            continue;
        }
        // Numerator: the same during-attack aggregate the day-1 metric
        // used (rebuilt from the report's stored impact and baseline is
        // not possible, so recompute the during-range average).
        let during = ex.report.store.range_stats(e.nsset, ep.first_window, ep.last_window);
        if during.domains_measured == 0 {
            continue;
        }
        day1.push(e.impact_on_rtt.unwrap());
        week1.push(during.avg_rtt() / base.avg_rtt());
    }
    let r = simcore::stats::pearson(&day1, &week1);
    let log_ratios: Vec<f64> = day1.iter().zip(&week1).map(|(a, b)| (a / b).ln().abs()).collect();
    let median_dev =
        simcore::stats::quantile(&mut log_ratios.clone(), 0.5).map(|v| v.exp()).unwrap_or(f64::NAN);
    let agree10 = day1.iter().zip(&week1).filter(|(a, b)| (*a >= &10.0) == (*b >= &10.0)).count();
    let text = format!(
        "§4.1 ablation: Impact_on_RTT with day-before vs week-before baseline\n\
         events compared:        {}\n\
         Pearson r (metrics):    {}\n\
         median |ratio|:         {median_dev:.3} (1.0 = identical)\n\
         ≥10x agreement:         {agree10}/{} events classified identically\n\
         (the paper found 'similar results' and chose day-before to\n\
          minimize infrastructure-change noise)\n",
        day1.len(),
        r.map(|v| format!("{v:.3}")).unwrap_or("-".into()),
        day1.len(),
    );
    let rows: Vec<Vec<String>> =
        day1.iter().zip(&week1).map(|(a, b)| vec![format!("{a:.3}"), format!("{b:.3}")]).collect();
    Artifact {
        id: "ablate_baseline",
        title: "§4.1 ablation: day-before vs week-before RTT baseline".into(),
        text,
        csv: render_csv(&["impact_day_baseline", "impact_week_baseline"], &rows),
    }
}

/// Table 6: most affected companies by RTT impact.
pub fn table6(ex: &Experiments) -> Artifact {
    let headers = ["Company", "Impact on RTT"];
    let rows: Vec<Vec<String>> = ex
        .report
        .top_affected_orgs
        .iter()
        .map(|(name, i)| vec![name.clone(), format!("{i:.0}x")])
        .collect();
    Artifact {
        id: "table6",
        title: "Table 6: most affected companies by RTT increase".into(),
        text: render_table(&headers, &rows),
        csv: render_csv(&headers, &rows),
    }
}

// ---------------------------------------------------------------------------
// Scenario experiments (self-contained: each builds its own world from the
// seed, so they schedule as independent jobs on the experiment pool).
// ---------------------------------------------------------------------------

fn timeseries_artifact(id: &'static str, title: &str, series: &[TimePoint]) -> Artifact {
    let headers = ["window", "time", "domains", "avg_rtt_ms", "timeout_share", "failure_share"];
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                p.window.0.to_string(),
                p.window.start().to_string(),
                p.domains.to_string(),
                format!("{:.2}", p.avg_rtt_ms),
                format!("{:.4}", p.timeout_share),
                format!("{:.4}", p.failure_share),
            ]
        })
        .collect();
    // The stdout rendering shows an hourly summary; full resolution goes
    // to the CSV.
    let mut hourly: Vec<Vec<String>> = Vec::new();
    for chunk in series.chunks(12) {
        let domains: u64 = chunk.iter().map(|p| p.domains).sum();
        if domains == 0 {
            continue;
        }
        let rtt =
            chunk.iter().map(|p| p.avg_rtt_ms * p.domains as f64).sum::<f64>() / domains as f64;
        let to =
            chunk.iter().map(|p| p.timeout_share * p.domains as f64).sum::<f64>() / domains as f64;
        hourly.push(vec![
            chunk[0].window.start().to_string(),
            domains.to_string(),
            format!("{rtt:.1}"),
            format!("{:.1}%", to * 100.0),
        ]);
    }
    Artifact {
        id,
        title: title.into(),
        text: render_table(&["hour", "domains", "avg_rtt_ms", "timeout_share"], &hourly),
        csv: render_csv(&headers, &rows),
    }
}

/// §5.1 TransIP case study: Table 2 plus Figures 2–3 from one scenario run.
pub fn transip_artifacts(seed: u64) -> Vec<Artifact> {
    let rngs = RngFactory::new(seed);
    let sc = TransIpScenario::build(&rngs);
    let feed = sc.feed(&rngs);
    feed.trace_onsets("transip");
    let loads = sc.load_book();

    // Table 2.
    let headers = [
        "Attack",
        "NS",
        "Observed PPM",
        "Inferred volume (Gbps)",
        "Attacker IPs",
        "Duration (min)",
    ];
    let mut rows = Vec::new();
    for (attack, range) in [("December 2020", sc.dec_range), ("March 2021", sc.mar_range)] {
        for m in sc.table2(&feed, range).into_iter().flatten() {
            rows.push(vec![
                attack.to_string(),
                m.label.clone(),
                format!("{:.0}", m.observed_ppm),
                format!("{:.2}", m.inferred_gbps),
                fmt_count(m.attacker_ips),
                format!("{:.0}", m.duration_min),
            ]);
        }
    }
    let table2 = Artifact {
        id: "table2",
        title: "Table 2: TransIP attack metrics (telescope-inferred)".into(),
        text: render_table(&headers, &rows),
        csv: render_csv(&headers, &rows),
    };

    // Figures 2 and 3.
    let dec = sc.measure_series(sc.dec_range.0, sc.dec_range.1, &loads, &rngs);
    let fig2 = timeseries_artifact(
        "fig2",
        "Figure 2: RTT around the TransIP attacks (December window)",
        &dec,
    );
    let mar = sc.measure_series(sc.mar_range.0, sc.mar_range.1, &loads, &rngs);
    let fig3 = timeseries_artifact(
        "fig3",
        "Figure 3: timeout errors during the March 2021 TransIP attack",
        &mar,
    );
    vec![table2, fig2, fig3]
}

/// §5.2 Russian-infrastructure case studies: mil.ru reactive probing and
/// RDZ recovery + OSINT correlation.
pub fn russia_artifacts(seed: u64) -> Vec<Artifact> {
    let rngs = RngFactory::new(seed);

    // mil.ru: reactive probing through the attack.
    let mil = MilRuScenario::build(&rngs);
    let feed = mil.feed(&rngs);
    feed.trace_onsets("milru");
    let loads = mil.load_book();
    let infra = Arc::new(mil.infra);
    let platform = ReactivePlatform {
        trace_scope: Some("milru"),
        episode_index: Some(Arc::new(feed.episode_index())),
        ..ReactivePlatform::default()
    };
    // Execute three days of probing per victim (864 rounds) to keep the
    // run bounded while covering the blackout onset.
    let reports = platform.run(&infra, &feed.records, &loads, &rngs, 864);
    let headers =
        ["victim", "rounds", "unresolvable_rounds", "first_round", "recovered_by_probe_end"];
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.plan.victim.to_string(),
                r.rounds.len().to_string(),
                r.unresolvable_rounds().to_string(),
                r.plan.start.to_string(),
                r.recovery_after(mil.blackout.1).map(|t| t.to_string()).unwrap_or("no".into()),
            ]
        })
        .collect();
    let milru = Artifact {
        id: "russia_milru",
        title: "§5.2.1: mil.ru reactive probing (blackout March 12–16)".into(),
        text: render_table(&headers, &rows),
        csv: render_csv(&headers, &rows),
    };

    // RDZ: recovery timing + OSINT correlation.
    let rdz = RdzScenario::build(&rngs);
    let rdz_feed = rdz.feed(&rngs);
    rdz_feed.trace_onsets("rdz");
    let rdz_loads = rdz.load_book();
    let rdz_infra = Arc::new(rdz.infra);
    let platform = ReactivePlatform {
        trace_scope: Some("rdz"),
        episode_index: Some(Arc::new(rdz_feed.episode_index())),
        ..ReactivePlatform::default()
    };
    let reports = platform.run(&rdz_infra, &rdz_feed.records, &rdz_loads, &rngs, 200);
    let mut rows = Vec::new();
    for r in &reports {
        rows.push(vec![
            r.plan.victim.to_string(),
            r.unresolvable_rounds().to_string(),
            r.recovery_after(rdz.visible_span.1)
                .map(|t| t.to_string())
                .unwrap_or("not within probe horizon".into()),
        ]);
    }
    let log = osint::rdz_channel_log(&rdz.addrs);
    let matches = correlate_messages(&log, &rdz_feed.episodes, SimDuration::from_mins(30));
    let mut text = render_table(&["victim", "unresolvable_rounds", "recovery"], &rows);
    text.push_str("\nOSINT correlation (Figure 4 substitute):\n");
    for m in &matches {
        let msg = &log[m.message_idx];
        let ep = &rdz_feed.episodes[m.episode_idx];
        text.push_str(&format!(
            "  message {:?} at {} ↔ attack on {} starting {} (lag {} min)\n",
            msg.channel,
            msg.at,
            ep.victim,
            ep.first_window.start(),
            m.lag_secs / 60,
        ));
    }
    let rdz_artifact = Artifact {
        id: "russia_rdz",
        title: "§5.2.2: RDZ railways reactive probing + coordination-channel correlation".into(),
        text,
        csv: render_csv(&["victim", "unresolvable_rounds", "recovery"], &rows),
    };
    vec![milru, rdz_artifact]
}

/// §9 future work: multi-vantage probing vs the anycast catchment mask.
pub fn futurework_artifacts(seed: u64) -> Vec<Artifact> {
    use reactive::{probe_from_fleet, VantagePoint};

    let rngs = RngFactory::new(seed);
    let built = world::build(
        &WorldConfig { providers: 30, domains: 10_000, ..WorldConfig::default() },
        &rngs,
    );
    // Attack every *anycast* provider's nameservers with an aggregate rate
    // that is devastating regionally but survivable at a uniform catchment.
    let mut loads = dnssim::LoadBook::new();
    let at = simcore::time::SimTime::from_days(10);
    let mut targets = Vec::new();
    for n in built.infra.nameservers() {
        if n.deployment.is_anycast() && !n.open_resolver {
            loads.add(n.addr, at.window(), n.capacity_pps * 12.0);
            targets.push(n.id);
        }
    }
    let single = VantagePoint::single_nl();
    let fleet = VantagePoint::default_fleet();
    let mut rng = rngs.stream("futurework");
    let mut single_detects = 0u64;
    let mut fleet_detects = 0u64;
    let mut probed = 0u64;
    for &set in &built.provider_nssets {
        let (any, total) = built.infra.nsset_anycast(set);
        if any != total || total == 0 {
            continue;
        }
        let Some(&d) = built.infra.domains_of_nsset(set).first() else { continue };
        for _ in 0..20 {
            probed += 1;
            let sv = probe_from_fleet(&single, &built.infra, d, at, &loads, &mut rng);
            if sv.probes[0].1.responsive_ns() < sv.probes[0].1.outcomes.len() {
                single_detects += 1;
            }
            let mv = probe_from_fleet(&fleet, &built.infra, d, at, &loads, &mut rng);
            if mv.worst_ns_share() < 1.0 {
                fleet_detects += 1;
            }
        }
    }
    let headers = ["probes", "single-vantage detections", "5-vantage detections"];
    let rows = vec![vec![
        probed.to_string(),
        format!("{single_detects} ({})", fmt_pct(single_detects as f64 / probed.max(1) as f64)),
        format!("{fleet_detects} ({})", fmt_pct(fleet_detects as f64 / probed.max(1) as f64)),
    ]];
    vec![Artifact {
        id: "futurework",
        title: "§9 future work: multi-vantage probing pierces the anycast catchment mask".into(),
        text: render_table(&headers, &rows),
        csv: render_csv(&headers, &rows),
    }]
}

// ---------------------------------------------------------------------------
// The experiment catalog and the work-stealing scheduler.
// ---------------------------------------------------------------------------

/// Every experiment id the harness knows, with a one-line description.
pub const CATALOG: &[(&str, &str)] = &[
    ("table1", "RSDoS dataset summary"),
    ("table2", "TransIP per-nameserver attack metrics"),
    ("table3", "monthly attack activity (DNS vs other)"),
    ("table4", "top 10 attacked ASNs"),
    ("table5", "top 10 attacked IPs"),
    ("table6", "most affected companies by RTT increase"),
    ("fig2", "TransIP RTT time series"),
    ("fig3", "TransIP March timeout shares"),
    ("fig5", "potentially affected domains per month"),
    ("fig6", "protocol/port distribution (+§6.3.1 contrast)"),
    ("fig7", "resolution failures vs measured domains"),
    ("fig8", "RTT impact vs hosted-domain count"),
    ("fig9", "intensity vs impact correlation"),
    ("fig10", "duration vs impact correlation"),
    ("fig11", "anycast efficacy"),
    ("fig12", "AS diversity efficacy"),
    ("fig13", "/24 prefix diversity efficacy"),
    ("russia", "mil.ru + RDZ reactive probing and OSINT correlation"),
    ("futurework", "§9 multi-vantage probing vs anycast masking"),
    ("ablate", "§4.1 day-before vs week-before baseline"),
];

/// Does this experiment render from the shared longitudinal run?
pub fn needs_longitudinal(id: &str) -> bool {
    matches!(
        id,
        "table1"
            | "table3"
            | "table4"
            | "table5"
            | "table6"
            | "fig5"
            | "fig6"
            | "fig7"
            | "fig8"
            | "fig9"
            | "fig10"
            | "fig11"
            | "fig12"
            | "fig13"
            | "ablate"
    )
}

/// Render one longitudinal artifact by id.
pub fn render_longitudinal(ex: &Experiments, id: &str) -> Option<Artifact> {
    Some(match id {
        "table1" => table1(ex),
        "table3" => table3(ex),
        "table4" => table4(ex),
        "table5" => table5(ex),
        "table6" => table6(ex),
        "fig5" => fig5(ex),
        "fig6" => fig6(ex),
        "fig7" => fig7(ex),
        "fig8" => fig8(ex),
        "fig9" => fig9(ex),
        "fig10" => fig10(ex),
        "fig11" => fig11(ex),
        "fig12" => fig12(ex),
        "fig13" => fig13(ex),
        "ablate" => ablate_baseline(ex),
        _ => return None,
    })
}

/// One scheduled experiment's output: its artifacts (in catalog-canonical
/// order) and how long the job ran on its worker.
pub struct ExperimentRun {
    pub id: String,
    pub artifacts: Vec<Artifact>,
    pub wall: std::time::Duration,
    /// True when a checkpoint marker showed the job already complete and
    /// it was skipped (its artifacts are already on disk; `artifacts` is
    /// empty).
    pub resumed: bool,
}

/// Schedule the requested experiments across up to `jobs` worker threads
/// (`0` = available parallelism) sharing one work queue.
///
/// The requested ids are first normalized into a canonical job list —
/// duplicates dropped, the three TransIP ids (`table2`/`fig2`/`fig3`)
/// coalesced into one `transip` job since they share a scenario run — and
/// the outcomes come back in that canonical order whatever the thread
/// count, so downstream emission (stdout, CSVs, the results index) is
/// deterministic. Unknown ids yield an empty artifact list.
pub fn run_catalog(
    ex: Option<&Experiments>,
    seed: u64,
    ids: &[String],
    jobs: usize,
) -> Vec<ExperimentRun> {
    run_catalog_checkpointed(ex, seed, ids, jobs, None, None, &|_| {}).0
}

/// Normalize requested ids into the canonical job list: duplicates
/// dropped, the TransIP trio coalesced into one `transip` job.
fn canonical_specs(ids: &[String]) -> Vec<String> {
    let mut specs: Vec<String> = Vec::new();
    for id in ids {
        let spec = match id.as_str() {
            "table2" | "fig2" | "fig3" => "transip".to_string(),
            other => other.to_string(),
        };
        if !specs.contains(&spec) {
            specs.push(spec);
        }
    }
    specs
}

/// Render one canonical spec's artifacts (pure function of `(seed, spec)`
/// plus the shared longitudinal run).
fn render_spec(ex: Option<&Experiments>, seed: u64, spec: &str) -> Vec<Artifact> {
    match spec {
        "transip" => transip_artifacts(seed),
        "russia" => russia_artifacts(seed),
        "futurework" => futurework_artifacts(seed),
        other => ex.and_then(|ex| render_longitudinal(ex, other)).into_iter().collect(),
    }
}

/// [`run_catalog`] under supervision, with optional fault injection and
/// checkpoint/resume:
///
/// - With a `fault` plan, worker tasks are crashed on schedule and
///   restarted with bounded backoff; the returned runs are byte-identical
///   to a fault-free schedule (crashes land *before* a job's render, so
///   `on_done` still fires exactly once per completed job).
/// - With a checkpoint directory, jobs whose `.done` marker exists are
///   skipped (returned with `resumed = true` and no artifacts); the rest
///   run normally. Callers persist artifacts and write the marker from
///   `on_done`, which runs on the worker as each job completes — so a
///   killed run loses only its in-flight jobs.
///
/// Outcomes come back in canonical spec order regardless of `jobs`,
/// faults, or how much of the run was resumed.
pub fn run_catalog_checkpointed(
    ex: Option<&Experiments>,
    seed: u64,
    ids: &[String],
    jobs: usize,
    fault: Option<&streamproc::FaultPlan>,
    ckpt: Option<&CheckpointDir>,
    on_done: &(dyn Fn(&ExperimentRun) + Sync),
) -> (Vec<ExperimentRun>, streamproc::SuperviseStats) {
    let specs = canonical_specs(ids);
    streamproc::parallel_map_supervised(
        jobs,
        specs,
        fault,
        &streamproc::SupervisorConfig::default(),
        |_, spec| {
            if ckpt.is_some_and(|c| c.is_done(spec)) {
                return ExperimentRun {
                    id: spec.clone(),
                    artifacts: Vec::new(),
                    wall: std::time::Duration::ZERO,
                    resumed: true,
                };
            }
            // Stage bracketing rides on `parallel_map_supervised`'s
            // exactly-once body guarantee (injected crashes land before the
            // body runs), so each spec traces one start/end pair whatever
            // the worker count or chaos seed.
            obs::trace::emit(obs::EventKind::StageStart, spec, None, None, "experiment job", None);
            let start = std::time::Instant::now();
            let artifacts = render_spec(ex, seed, spec);
            let run = ExperimentRun {
                id: spec.clone(),
                artifacts,
                wall: start.elapsed(),
                resumed: false,
            };
            obs::trace::emit(
                obs::EventKind::StageEnd,
                spec,
                None,
                None,
                "experiment job",
                Some(run.artifacts.len() as u64),
            );
            on_done(&run);
            run
        },
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Experiments {
        run_experiments(
            1,
            PaperScale { divisor: 1_500 },
            &WorldConfig { providers: 20, domains: 6_000, ..WorldConfig::default() },
        )
    }

    #[test]
    fn all_longitudinal_artifacts_render() {
        let ex = tiny();
        for a in [
            table1(&ex),
            table3(&ex),
            table4(&ex),
            table5(&ex),
            table6(&ex),
            fig5(&ex),
            fig6(&ex),
            fig7(&ex),
            fig8(&ex),
            fig9(&ex),
            fig10(&ex),
            fig11(&ex),
            fig12(&ex),
            fig13(&ex),
        ] {
            assert!(!a.text.is_empty(), "{} text empty", a.id);
            assert!(a.csv.lines().count() >= 1, "{} csv empty", a.id);
            assert!(!a.title.is_empty());
        }
    }

    #[test]
    fn table3_has_17_months_plus_total() {
        let ex = tiny();
        let t = table3(&ex);
        assert_eq!(t.text.lines().count(), 2 + 17 + 1);
    }
}
