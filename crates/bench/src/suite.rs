//! The `repro bench --suite` runner: process-based Suite A/B measurement
//! of the release-built binaries (DESIGN §14).
//!
//! Unlike `bench --compare` (one pinned in-process run) this orchestrator
//! spawns `repro` — and `dnsimpactd` for the serving cell — as OS
//! processes, so what gets measured is what ships: binary startup, the
//! metrics-report write path, checkpoint I/O, real process RSS.
//!
//! - **Suite A** (deterministic): the pinned bench catalog across a
//!   {scale × jobs} grid, one process per cell, plus a clean and a
//!   chaos-seeded `dnsimpactd --bench-oneshot` ingest. Every cell's
//!   deterministic state is fingerprinted and cells that must agree
//!   (same scale across jobs; daemon clean vs chaos-recovered) are
//!   compared *exactly* — no envelopes.
//! - **Suite B** (stochastic): chaos seeds × scales. Per scale the
//!   per-process log2 histograms are merged bucket-wise
//!   ([`obs::hist::merge`] — exact, as if one process had seen every
//!   sample) and wall/RSS/records-per-sec are summarized as percentile
//!   blocks over one sample per process. The pipeline counters
//!   (`join.*`, `openintel.*`) must still agree across chaos seeds —
//!   recovery is exact — while `chaos.*` fault tallies legitimately vary
//!   with the seed and are left out of the agreement check.
//!
//! Each child's report is read back through the schema types
//! ([`obs::RunReport::from_json`], the daemon's one-line JSON), so a
//! malformed child report fails the suite rather than skewing it. The
//! result is a `dnsimpact-suite/v1` report ([`obs::SuiteReport`]) whose
//! verdict table names every enforced check.

use obs::hist::{self, Hist};
use obs::suite::{Percentiles, SuiteACell, SuiteBScale, Verdict};
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::Command;
use std::time::Instant;

/// Which suites to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SuiteSel {
    A,
    B,
    All,
}

impl SuiteSel {
    pub fn parse(s: &str) -> Option<SuiteSel> {
        match s {
            "A" | "a" => Some(SuiteSel::A),
            "B" | "b" => Some(SuiteSel::B),
            "all" => Some(SuiteSel::All),
            _ => None,
        }
    }

    /// The `meta.suites` value this selection reports.
    pub fn label(&self) -> &'static str {
        match self {
            SuiteSel::A => "A",
            SuiteSel::B => "B",
            SuiteSel::All => "all",
        }
    }

    fn runs_a(&self) -> bool {
        matches!(self, SuiteSel::A | SuiteSel::All)
    }

    fn runs_b(&self) -> bool {
        matches!(self, SuiteSel::B | SuiteSel::All)
    }
}

/// One suite run: identity plus the scratch directory child processes
/// write their reports and throwaway CSVs into.
pub struct SuiteRunConfig {
    pub seed: u64,
    pub sel: SuiteSel,
    pub scratch: PathBuf,
}

/// Suite A scale grid: `--scale` divisors of the paper catalog. 1500 is
/// the pinned bench configuration; 750 doubles the data volume.
const SUITE_A_SCALES: [u32; 2] = [750, 1_500];
/// Suite A worker grid per scale — fingerprints must agree across it.
const SUITE_A_JOBS: [u32; 2] = [1, 2];
/// Suite B runs each scale under these chaos seeds (distinct from the
/// pinned bench seed 9, so the suite exercises fresh fault schedules).
const SUITE_B_CHAOS_SEEDS: [u64; 3] = [11, 12, 13];
/// Suite B scale grid, ascending (the report requires sorted rows).
const SUITE_B_SCALES: [u32; 2] = [750, 1_500];
/// Suite B worker count: fixed at 2 so chaos recovery runs threaded.
const SUITE_B_JOBS: u32 = 2;
/// The daemon serving cell's pinned feed (mirrors the CI daemon gate).
const DAEMON_FEED: [&str; 10] = [
    "--seed",
    "7",
    "--scale-target",
    "1500",
    "--months",
    "2",
    "--providers",
    "20",
    "--domains",
    "6000",
];
/// Chaos seed for the daemon's faulted Suite A cell.
const DAEMON_CHAOS_SEED: u64 = 3;

/// FNV-1a over everything `Debug`-printed into it (same construction as
/// the sweep's artifact fingerprint): hashes a child's deterministic
/// metric state without materializing the debug string.
struct FnvWriter(u64);

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        Ok(())
    }
}

/// Fingerprint a child run's deterministic metric state: counters,
/// gauges, and histogram shapes outside the `time.`/`sched.` namespaces.
/// For a fixed seed/scale/experiment set this is a pure function of the
/// pipeline, so equal fingerprints across processes mean the processes
/// computed identical results.
fn fingerprint_deterministic(report: &obs::RunReport) -> String {
    use std::fmt::Write as _;
    let mut w = FnvWriter(0xcbf2_9ce4_8422_2325);
    let _ = write!(w, "{:?}", report.metrics.deterministic());
    format!("{:#018x}", w.0)
}

/// Locate a sibling release binary of the running `repro` (the suite is
/// spawned *by* `repro`, so its own path anchors the lookup). Named
/// errors up front — a missing binary must read as "build it", never as
/// a mid-suite mystery failure.
fn sibling_binary(name: &str) -> Result<PathBuf, String> {
    let exe = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    let dir = exe
        .parent()
        .ok_or_else(|| format!("own binary {} has no parent directory", exe.display()))?;
    let path = dir.join(name);
    if path.exists() {
        Ok(path)
    } else {
        Err(format!(
            "missing binary {} (expected next to {}); run `cargo build --release` first",
            path.display(),
            exe.display()
        ))
    }
}

/// Last `n` lines of a child's stderr, for failure detail.
fn stderr_tail(stderr: &[u8], n: usize) -> String {
    let text = String::from_utf8_lossy(stderr);
    let lines: Vec<&str> = text.lines().collect();
    let start = lines.len().saturating_sub(n);
    lines[start..].join("\n")
}

/// Spawn one child process and wait, returning (parent-measured wall ms,
/// stdout). A non-zero exit fails the suite with the cell name and the
/// stderr tail — a crashed cell must never be summarized around.
fn run_child(cell: &str, bin: &Path, args: &[String]) -> Result<(u64, Vec<u8>), String> {
    let start = Instant::now();
    let out = Command::new(bin)
        .args(args)
        .output()
        .map_err(|e| format!("cell {cell}: cannot spawn {}: {e}", bin.display()))?;
    let wall_ms = start.elapsed().as_millis() as u64;
    if !out.status.success() {
        return Err(format!(
            "cell {cell}: {} exited with {}; stderr tail:\n{}",
            bin.display(),
            out.status,
            stderr_tail(&out.stderr, 15)
        ));
    }
    Ok((wall_ms, out.stdout))
}

/// One measured child `repro bench` run.
struct ReproCell {
    wall_ms: u64,
    report: obs::RunReport,
}

/// Spawn `repro bench` at (scale, jobs[, chaos_seed]) and read its
/// metrics report back. The report and CSVs go to `scratch` — explicit
/// `--metrics-json`/`--out` keep the child away from the committed
/// `results/` series.
fn run_repro_cell(
    cell: &str,
    repro: &Path,
    cfg: &SuiteRunConfig,
    scale: u32,
    jobs: u32,
    chaos_seed: Option<u64>,
) -> Result<ReproCell, String> {
    let slug = cell.replace('/', "_");
    let report_path = cfg.scratch.join(format!("{slug}.json"));
    let out_dir = cfg.scratch.join(format!("{slug}.out"));
    let mut args: Vec<String> = vec![
        "bench".into(),
        "--seed".into(),
        cfg.seed.to_string(),
        "--scale".into(),
        scale.to_string(),
        "--jobs".into(),
        jobs.to_string(),
        "--metrics-json".into(),
        report_path.display().to_string(),
        "--out".into(),
        out_dir.display().to_string(),
    ];
    if let Some(cs) = chaos_seed {
        args.push("--chaos-seed".into());
        args.push(cs.to_string());
    }
    let (wall_ms, _stdout) = run_child(cell, repro, &args)?;
    let text = std::fs::read_to_string(&report_path).map_err(|e| {
        format!("cell {cell}: child wrote no report at {}: {e}", report_path.display())
    })?;
    let doc = obs::Json::parse(&text)
        .map_err(|e| format!("cell {cell}: child report is not JSON: {e}"))?;
    let report = obs::RunReport::from_json(&doc)
        .map_err(|errors| format!("cell {cell}: invalid child report: {}", errors.join("; ")))?;
    Ok(ReproCell { wall_ms, report })
}

/// Total records a child run processed, from its deterministic counters —
/// the same accounting the scale sweep uses (episodes into the join,
/// joined rows, OpenINTEL measurements).
fn records_of(report: &obs::RunReport) -> u64 {
    let c = |name: &str| report.metrics.counters.get(name).copied().unwrap_or(0);
    c("join.episodes_in") + c("join.rows_joined") + c("openintel.records_measured")
}

fn records_per_sec(records: u64, wall_ms: u64) -> f64 {
    records as f64 * 1_000.0 / wall_ms.max(1) as f64
}

/// One measured `dnsimpactd serve --bench-oneshot` run, parsed from the
/// single JSON line the child prints.
struct DaemonCell {
    wall_ms: u64,
    records: u64,
    peak_rss_kb: u64,
    full_fp: String,
}

fn run_daemon_cell(
    cell: &str,
    daemon: &Path,
    chaos_seed: Option<u64>,
) -> Result<DaemonCell, String> {
    let mut args: Vec<String> = vec!["serve".into()];
    args.extend(DAEMON_FEED.iter().map(|s| s.to_string()));
    args.push("--bench-oneshot".into());
    if let Some(cs) = chaos_seed {
        args.push("--chaos-seed".into());
        args.push(cs.to_string());
    }
    let (wall_ms, stdout) = run_child(cell, daemon, &args)?;
    let text = String::from_utf8_lossy(&stdout);
    let line = text
        .lines()
        .last()
        .ok_or_else(|| format!("cell {cell}: daemon printed no oneshot line"))?;
    let doc = obs::Json::parse(line)
        .map_err(|e| format!("cell {cell}: daemon oneshot line is not JSON: {e}"))?;
    if doc.get("schema").and_then(|s| s.as_str()) != Some("dnsimpactd-oneshot/v1") {
        return Err(format!("cell {cell}: oneshot line has wrong schema: {line}"));
    }
    let u = |key: &str| {
        doc.get(key)
            .and_then(obs::Json::as_u64)
            .ok_or_else(|| format!("cell {cell}: oneshot line missing u64 field {key:?}"))
    };
    Ok(DaemonCell {
        wall_ms,
        records: u("records")?,
        peak_rss_kb: u("peak_rss_kb")?,
        full_fp: doc
            .get("full_fp")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("cell {cell}: oneshot line missing full_fp"))?
            .to_string(),
    })
}

/// Run the selected suites and assemble the `dnsimpact-suite/v1` report.
/// I/O and child failures are errors (no report); semantic check results
/// land in the report's verdict table, so a regression names its cell.
pub fn run_suite(cfg: &SuiteRunConfig) -> Result<obs::SuiteReport, String> {
    let repro = std::env::current_exe().map_err(|e| format!("cannot locate own binary: {e}"))?;
    // Preflight every binary the selection needs before spawning anything.
    let daemon = if cfg.sel.runs_a() { Some(sibling_binary("dnsimpactd")?) } else { None };
    std::fs::create_dir_all(&cfg.scratch)
        .map_err(|e| format!("cannot create scratch dir {}: {e}", cfg.scratch.display()))?;

    let mut processes = 0u64;
    let mut suite_a = Vec::new();
    let mut suite_b = Vec::new();
    let mut verdicts = Vec::new();

    if cfg.sel.runs_a() {
        for &scale in &SUITE_A_SCALES {
            let mut fps: Vec<(u32, String)> = Vec::new();
            for &jobs in &SUITE_A_JOBS {
                let cell = format!("A/repro/scale{scale}/jobs{jobs}");
                obs::progress("suite", &format!("spawning {cell}"));
                let run = run_repro_cell(&cell, &repro, cfg, scale, jobs, None)?;
                processes += 1;
                let records = records_of(&run.report);
                let fp = fingerprint_deterministic(&run.report);
                fps.push((jobs, fp.clone()));
                suite_a.push(SuiteACell {
                    cell,
                    kind: "repro".into(),
                    scale: u64::from(scale),
                    jobs: u64::from(jobs),
                    wall_ms: run.wall_ms,
                    peak_rss_kb: run.report.peak_rss_kb,
                    records,
                    records_per_sec: records_per_sec(records, run.wall_ms),
                    fingerprint: fp,
                });
            }
            let (first_jobs, first_fp) = &fps[0];
            let disagree: Vec<String> = fps
                .iter()
                .filter(|(_, fp)| fp != first_fp)
                .map(|(jobs, fp)| format!("jobs={jobs}: {fp}"))
                .collect();
            verdicts.push(Verdict {
                cell: format!("A/repro/scale{scale}"),
                pass: disagree.is_empty(),
                detail: if disagree.is_empty() {
                    format!(
                        "deterministic fingerprint {first_fp} identical across jobs {:?}",
                        SUITE_A_JOBS
                    )
                } else {
                    format!(
                        "fingerprint disagreement vs jobs={first_jobs} ({first_fp}): {}",
                        disagree.join(", ")
                    )
                },
            });
        }

        let daemon = daemon.as_ref().unwrap();
        let mut daemon_fps: Vec<(String, String)> = Vec::new();
        for (label, chaos) in [
            ("clean".to_string(), None),
            (format!("chaos{DAEMON_CHAOS_SEED}"), Some(DAEMON_CHAOS_SEED)),
        ] {
            let cell = format!("A/daemon/{label}");
            obs::progress("suite", &format!("spawning {cell}"));
            let run = run_daemon_cell(&cell, daemon, chaos)?;
            processes += 1;
            daemon_fps.push((label, run.full_fp.clone()));
            suite_a.push(SuiteACell {
                cell,
                kind: "daemon".into(),
                scale: 1_500,
                jobs: 2, // the daemon's default ingest worker count
                wall_ms: run.wall_ms,
                peak_rss_kb: run.peak_rss_kb,
                records: run.records,
                records_per_sec: records_per_sec(run.records, run.wall_ms),
                fingerprint: run.full_fp,
            });
        }
        let pass = daemon_fps.iter().all(|(_, fp)| fp == &daemon_fps[0].1);
        verdicts.push(Verdict {
            cell: "A/daemon".into(),
            pass,
            detail: if pass {
                format!(
                    "index fingerprint {} identical for clean and chaos-recovered ingest",
                    daemon_fps[0].1
                )
            } else {
                format!(
                    "index fingerprints diverge: {}",
                    daemon_fps
                        .iter()
                        .map(|(l, fp)| format!("{l}={fp}"))
                        .collect::<Vec<_>>()
                        .join(", ")
                )
            },
        });
    }

    if cfg.sel.runs_b() {
        for &scale in &SUITE_B_SCALES {
            let mut runs: Vec<(u64, ReproCell)> = Vec::new();
            for &chaos in &SUITE_B_CHAOS_SEEDS {
                let cell = format!("B/scale{scale}/seed{chaos}");
                obs::progress("suite", &format!("spawning {cell}"));
                let run = run_repro_cell(&cell, &repro, cfg, scale, SUITE_B_JOBS, Some(chaos))?;
                processes += 1;
                runs.push((chaos, run));
            }

            // The pipeline counters are chaos-invariant (recovery is
            // exact); `chaos.*` fault tallies vary by seed by design.
            let pipeline_counters = |r: &obs::RunReport| -> BTreeMap<String, u64> {
                r.metrics
                    .counters
                    .iter()
                    .filter(|(k, _)| k.starts_with("join.") || k.starts_with("openintel."))
                    .map(|(k, v)| (k.clone(), *v))
                    .collect()
            };
            let reference = pipeline_counters(&runs[0].1.report);
            let disagree: Vec<String> = runs
                .iter()
                .filter(|(_, r)| pipeline_counters(&r.report) != reference)
                .map(|(seed, _)| format!("seed {seed}"))
                .collect();
            verdicts.push(Verdict {
                cell: format!("B/scale{scale}/counters"),
                pass: disagree.is_empty(),
                detail: if disagree.is_empty() {
                    format!(
                        "{} pipeline counter(s) identical across chaos seeds {:?}",
                        reference.len(),
                        SUITE_B_CHAOS_SEEDS
                    )
                } else {
                    format!(
                        "pipeline counters diverge from seed {}: {}",
                        runs[0].0,
                        disagree.join(", ")
                    )
                },
            });

            // Merge every named per-process histogram bucket-wise, and the
            // per-process wall/RSS/throughput samples into percentile
            // blocks.
            let mut parts: BTreeMap<String, Vec<Hist>> = BTreeMap::new();
            for (_, run) in &runs {
                for (name, snap) in &run.report.metrics.histograms {
                    let h = Hist::from_snapshot(snap).map_err(|e| {
                        format!("B/scale{scale}: histogram {name} not mergeable: {e}")
                    })?;
                    parts.entry(name.clone()).or_default().push(h);
                }
            }
            let merged: BTreeMap<String, Hist> =
                parts.iter().map(|(name, hs)| (name.clone(), hist::merge(hs))).collect();
            let balanced = parts
                .iter()
                .all(|(name, hs)| merged[name].count() == hs.iter().map(Hist::count).sum::<u64>());
            verdicts.push(Verdict {
                cell: format!("B/scale{scale}/merged"),
                pass: balanced,
                detail: format!(
                    "{} histogram(s) merged from {} process(es); sample counts {}",
                    merged.len(),
                    runs.len(),
                    if balanced { "balance" } else { "DO NOT balance" }
                ),
            });

            let mut walls = Hist::new();
            let mut rss = Hist::new();
            let mut rates = Hist::new();
            for (_, run) in &runs {
                let records = records_of(&run.report);
                walls.record(run.wall_ms);
                rss.record(run.report.peak_rss_kb);
                rates.record(records_per_sec(records, run.wall_ms) as u64);
            }
            suite_b.push(SuiteBScale {
                scale: u64::from(scale),
                processes: runs.len() as u64,
                wall_ms: Percentiles::of(&walls),
                peak_rss_kb: Percentiles::of(&rss),
                records_per_sec: Percentiles::of(&rates),
                merged,
            });
        }
    }

    Ok(obs::SuiteReport {
        meta: obs::SuiteMeta {
            seed: cfg.seed,
            date: obs::report::today_utc(),
            suites: cfg.sel.label().to_string(),
            processes,
        },
        suite_a,
        suite_b,
        verdicts,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_selection_parses_and_labels() {
        assert_eq!(SuiteSel::parse("A"), Some(SuiteSel::A));
        assert_eq!(SuiteSel::parse("b"), Some(SuiteSel::B));
        assert_eq!(SuiteSel::parse("all"), Some(SuiteSel::All));
        assert_eq!(SuiteSel::parse("ALL"), None);
        assert_eq!(SuiteSel::parse(""), None);
        assert_eq!(SuiteSel::All.label(), "all");
        assert!(SuiteSel::All.runs_a() && SuiteSel::All.runs_b());
        assert!(SuiteSel::A.runs_a() && !SuiteSel::A.runs_b());
        assert!(!SuiteSel::B.runs_a() && SuiteSel::B.runs_b());
    }

    #[test]
    fn suite_b_scales_are_ascending_for_the_report() {
        // The suite report requires strictly sorted rows; the grid must
        // be declared that way rather than sorted after the fact.
        assert!(SUITE_B_SCALES.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn stderr_tail_keeps_the_last_lines() {
        let text = (1..=20).map(|i| format!("line {i}")).collect::<Vec<_>>().join("\n");
        let tail = stderr_tail(text.as_bytes(), 3);
        assert_eq!(tail, "line 18\nline 19\nline 20");
        assert_eq!(stderr_tail(b"", 3), "");
    }

    #[test]
    fn missing_sibling_binary_is_a_named_preflight_error() {
        let err = sibling_binary("definitely-not-a-binary-9f3a").unwrap_err();
        assert!(err.contains("definitely-not-a-binary-9f3a"), "{err}");
        assert!(err.contains("cargo build --release"), "{err}");
    }

    #[test]
    fn throughput_guards_zero_wall() {
        assert_eq!(records_per_sec(500, 0), 500_000.0);
        assert_eq!(records_per_sec(500, 1_000), 500.0);
    }
}
