//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation from the simulation, printing paper-style tables and
//! writing CSV series to `results/`.
//!
//! ```text
//! repro [--seed N] [--scale D] [--jobs N] [--out DIR] [EXPERIMENT...]
//!
//! EXPERIMENT ∈ { table1 table2 table3 table4 table5 table6
//!                fig2 fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!                russia futurework ablate all }      (default: all)
//! ```
//!
//! `--scale D` divides the paper's monthly attack volumes by `D`
//! (default 40; `--scale 1` reproduces the full 4M-attack feed).
//!
//! `--jobs N` sets the worker-thread count for the experiment scheduler
//! and the pipeline's parallel stages (default: available parallelism;
//! `--jobs 1` runs fully sequentially). The outputs are byte-identical
//! for any `--jobs` value — threads only change the wall clock, never
//! the CSVs.

use bench_support::{
    needs_longitudinal, run_catalog, run_experiments_with_jobs, Artifact, Experiments, CATALOG,
};
use dnsimpact_core::report::write_output;
use scenarios::{PaperScale, WorldConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

struct Options {
    seed: u64,
    scale: u32,
    jobs: usize,
    out: PathBuf,
    experiments: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: 42,
        scale: 40,
        jobs: 0, // 0 = available parallelism
        out: PathBuf::from("results"),
        experiments: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => opts.seed = args.next().expect("--seed N").parse().expect("seed"),
            "--scale" => opts.scale = args.next().expect("--scale D").parse().expect("scale"),
            "--jobs" => opts.jobs = args.next().expect("--jobs N").parse().expect("jobs"),
            "--out" => opts.out = PathBuf::from(args.next().expect("--out DIR")),
            "--help" | "-h" => {
                println!("repro [--seed N] [--scale D] [--jobs N] [--out DIR] [EXPERIMENT...]");
                println!("run `repro --list` for the experiment catalog");
                std::process::exit(0);
            }
            "--list" => {
                for (id, what) in CATALOG {
                    println!("{id:<12} {what}");
                }
                std::process::exit(0);
            }
            other => opts.experiments.push(other.to_string()),
        }
    }
    if opts.experiments.is_empty() || opts.experiments.iter().any(|e| e == "all") {
        opts.experiments = CATALOG.iter().map(|(id, _)| id.to_string()).collect();
    }
    opts
}

fn emit(out: &Path, a: &Artifact) {
    println!("=== {} ===\n{}\n", a.title, a.text);
    write_output(out, &format!("{}.csv", a.id), &a.csv).expect("write results");
    // Maintain an index of everything written this run.
    let line = format!("- `{}.csv` — {}\n", a.id, a.title);
    let index = out.join("INDEX.md");
    let mut existing = std::fs::read_to_string(&index).unwrap_or_else(|_| {
        "# results index\n\nCSV series produced by the `repro` harness.\n\n".into()
    });
    if !existing.contains(&line) {
        existing.push_str(&line);
        let _ = std::fs::write(&index, existing);
    }
}

fn main() {
    let opts = parse_args();
    let known: Vec<String> = opts
        .experiments
        .iter()
        .filter(|e| {
            let ok = CATALOG.iter().any(|(id, _)| id == e);
            if !ok {
                eprintln!("[repro] unknown experiment '{e}' (skipped)");
            }
            ok
        })
        .cloned()
        .collect();
    let jobs = streamproc::effective_jobs(opts.jobs);
    let total = Instant::now();

    // Stage 1: the shared longitudinal pipeline, if any requested
    // experiment renders from it.
    let mut timings: Vec<(String, Duration)> = Vec::new();
    let ex: Option<Experiments> = known.iter().any(|e| needs_longitudinal(e)).then(|| {
        eprintln!(
            "[repro] running longitudinal pipeline (seed {}, scale 1/{}, jobs {jobs}) ...",
            opts.seed, opts.scale
        );
        let start = Instant::now();
        let ex = run_experiments_with_jobs(
            opts.seed,
            PaperScale { divisor: opts.scale },
            &WorldConfig::default(),
            opts.jobs,
        );
        timings.push(("longitudinal pipeline".into(), start.elapsed()));
        ex
    });

    // Stage 2: schedule the experiments across the worker pool. Outcomes
    // come back in canonical order, so emission below is deterministic.
    let runs = run_catalog(ex.as_ref(), opts.seed, &known, opts.jobs);
    for run in &runs {
        for a in &run.artifacts {
            emit(&opts.out, a);
        }
        timings.push((run.id.clone(), run.wall));
    }

    // Stage timing summary.
    eprintln!("[repro] stage timings (jobs={jobs}):");
    for (stage, wall) in &timings {
        eprintln!("[repro]   {stage:<24} {:>8.2?}", wall);
    }
    eprintln!("[repro]   {:<24} {:>8.2?} wall", "total", total.elapsed());
    eprintln!("[repro] CSV series written to {}", opts.out.display());
}
