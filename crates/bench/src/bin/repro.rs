//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation from the simulation, printing paper-style tables and
//! writing CSV series to `results/`.
//!
//! ```text
//! repro [--seed N] [--scale D] [--jobs N] [--out DIR]
//!       [--chaos-seed N] [--checkpoint-dir DIR] [EXPERIMENT...]
//!
//! EXPERIMENT ∈ { table1 table2 table3 table4 table5 table6
//!                fig2 fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!                russia futurework ablate all }      (default: all)
//! ```
//!
//! `--scale D` divides the paper's monthly attack volumes by `D`
//! (default 40; `--scale 1` reproduces the full 4M-attack feed).
//!
//! `--jobs N` sets the worker-thread count for the experiment scheduler
//! and the pipeline's parallel stages (default: available parallelism;
//! `--jobs 1` runs fully sequentially). The outputs are byte-identical
//! for any `--jobs` value — threads only change the wall clock, never
//! the CSVs.
//!
//! `--chaos-seed N` turns on deterministic fault injection: measurement
//! tasks and experiment jobs are crashed on a schedule derived from `N`
//! and recovered by the supervisor. The artifacts are byte-identical to a
//! run without the flag — chaos only exercises the recovery machinery.
//!
//! `--checkpoint-dir DIR` makes the run resumable: each experiment job
//! writes its artifacts atomically and then records a completion marker in
//! `DIR`. A killed run (even `kill -9` mid-write) re-invoked with the same
//! flags and checkpoint dir skips the completed jobs and finishes the
//! rest, leaving `--out` byte-identical to an uninterrupted run.

use bench_support::{
    needs_longitudinal, run_catalog_checkpointed, run_experiments_chaos, Artifact, CheckpointDir,
    Experiments, ExperimentRun, CATALOG,
};
use dnsimpact_core::report::{write_atomic, write_output};
use scenarios::{PaperScale, WorldConfig};
use std::path::PathBuf;
use std::time::{Duration, Instant};

struct Options {
    seed: u64,
    scale: u32,
    jobs: usize,
    out: PathBuf,
    chaos_seed: Option<u64>,
    checkpoint_dir: Option<PathBuf>,
    experiments: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: 42,
        scale: 40,
        jobs: 0, // 0 = available parallelism
        out: PathBuf::from("results"),
        chaos_seed: None,
        checkpoint_dir: None,
        experiments: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => opts.seed = args.next().expect("--seed N").parse().expect("seed"),
            "--scale" => opts.scale = args.next().expect("--scale D").parse().expect("scale"),
            "--jobs" => opts.jobs = args.next().expect("--jobs N").parse().expect("jobs"),
            "--out" => opts.out = PathBuf::from(args.next().expect("--out DIR")),
            "--chaos-seed" => {
                opts.chaos_seed =
                    Some(args.next().expect("--chaos-seed N").parse().expect("chaos seed"))
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir =
                    Some(PathBuf::from(args.next().expect("--checkpoint-dir DIR")))
            }
            "--help" | "-h" => {
                println!(
                    "repro [--seed N] [--scale D] [--jobs N] [--out DIR] \
                     [--chaos-seed N] [--checkpoint-dir DIR] [EXPERIMENT...]"
                );
                println!("run `repro --list` for the experiment catalog");
                std::process::exit(0);
            }
            "--list" => {
                for (id, what) in CATALOG {
                    println!("{id:<12} {what}");
                }
                std::process::exit(0);
            }
            other => opts.experiments.push(other.to_string()),
        }
    }
    if opts.experiments.is_empty() || opts.experiments.iter().any(|e| e == "all") {
        opts.experiments = CATALOG.iter().map(|(id, _)| id.to_string()).collect();
    }
    opts
}

fn index_line(a: &Artifact) -> String {
    format!("- `{}.csv` — {}\n", a.id, a.title)
}

const INDEX_HEADER: &str = "# results index\n\nCSV series produced by the `repro` harness.\n\n";

/// Rebuild `INDEX.md` deterministically: header, then any pre-existing
/// lines this run did not produce (earlier runs with other experiment
/// subsets), then this run's lines in canonical order. Atomic, so a kill
/// never leaves a truncated index.
fn rebuild_index(out: &std::path::Path, ours: &[String]) {
    let index = out.join("INDEX.md");
    let foreign: Vec<String> = std::fs::read_to_string(&index)
        .map(|s| {
            s.lines()
                .map(|l| format!("{l}\n"))
                .filter(|l| l.starts_with("- ") && !ours.contains(l))
                .collect()
        })
        .unwrap_or_default();
    let mut content = String::from(INDEX_HEADER);
    for l in foreign.iter().chain(ours) {
        content.push_str(l);
    }
    if std::fs::create_dir_all(out).is_ok() {
        let _ = write_atomic(&index, &content);
    }
}

fn main() {
    let opts = parse_args();
    let known: Vec<String> = opts
        .experiments
        .iter()
        .filter(|e| {
            let ok = CATALOG.iter().any(|(id, _)| id == e);
            if !ok {
                eprintln!("[repro] unknown experiment '{e}' (skipped)");
            }
            ok
        })
        .cloned()
        .collect();
    let jobs = streamproc::effective_jobs(opts.jobs);
    let total = Instant::now();
    let ckpt = opts
        .checkpoint_dir
        .as_ref()
        .map(|d| CheckpointDir::new(d).expect("create checkpoint dir"));

    // Stage 1: the shared longitudinal pipeline, if any requested
    // experiment renders from it.
    let mut timings: Vec<(String, Duration)> = Vec::new();
    let ex: Option<Experiments> = known.iter().any(|e| needs_longitudinal(e)).then(|| {
        eprintln!(
            "[repro] running longitudinal pipeline (seed {}, scale 1/{}, jobs {jobs}{}) ...",
            opts.seed,
            opts.scale,
            opts.chaos_seed.map(|c| format!(", chaos {c}")).unwrap_or_default(),
        );
        let start = Instant::now();
        let ex = run_experiments_chaos(
            opts.seed,
            PaperScale { divisor: opts.scale },
            &WorldConfig::default(),
            opts.jobs,
            opts.chaos_seed,
        );
        timings.push(("longitudinal pipeline".into(), start.elapsed()));
        ex
    });

    // Stage 2: schedule the experiments across the worker pool, each job
    // supervised (and crashed on schedule under --chaos-seed). Artifacts
    // are persisted from the worker as each job completes — atomically,
    // then checkpoint-marked — so a killed run keeps its finished jobs.
    let fault = opts.chaos_seed.map(|cs| {
        streamproc::FaultPlan::from_seed(cs, "experiment-catalog", streamproc::ChaosConfig::CALIBRATED)
    });
    let out_dir = opts.out.clone();
    let ckpt_ref = ckpt.as_ref();
    let persist = |run: &ExperimentRun| {
        let mut lines = Vec::new();
        for a in &run.artifacts {
            write_output(&out_dir, &format!("{}.csv", a.id), &a.csv).expect("write results");
            lines.push(index_line(a));
        }
        if let Some(c) = ckpt_ref {
            c.mark_done(&run.id, &lines).expect("write checkpoint marker");
        }
    };
    let (runs, chaos_stats) = run_catalog_checkpointed(
        ex.as_ref(),
        opts.seed,
        &known,
        opts.jobs,
        fault.as_ref(),
        ckpt_ref,
        &persist,
    );

    // Stage 3: stdout in canonical order, then the results index.
    let mut index_lines: Vec<String> = Vec::new();
    for run in &runs {
        if run.resumed {
            eprintln!("[repro] {} already complete (checkpoint); skipped", run.id);
            if let Some(c) = ckpt_ref {
                index_lines.extend(c.done_index_lines(&run.id));
            }
        } else {
            for a in &run.artifacts {
                println!("=== {} ===\n{}\n", a.title, a.text);
                index_lines.push(index_line(a));
            }
        }
        timings.push((run.id.clone(), run.wall));
    }
    rebuild_index(&opts.out, &index_lines);

    // Stage timing summary.
    eprintln!("[repro] stage timings (jobs={jobs}):");
    for (stage, wall) in &timings {
        eprintln!("[repro]   {stage:<24} {:>8.2?}", wall);
    }
    eprintln!("[repro]   {:<24} {:>8.2?} wall", "total", total.elapsed());
    if let Some(cs) = opts.chaos_seed {
        eprintln!(
            "[repro] chaos (seed {cs}): {} injected crash(es) recovered, {} ms backoff",
            chaos_stats.restarts, chaos_stats.backoff_ms
        );
    }
    eprintln!("[repro] CSV series written to {}", opts.out.display());
}
