//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation from the simulation, printing paper-style tables and
//! writing CSV series to `results/`.
//!
//! ```text
//! repro [--seed N] [--scale D] [--jobs N] [--out DIR]
//!       [--chaos-seed N] [--checkpoint-dir DIR]
//!       [--metrics-json PATH] [--metrics-summary]
//!       [--trace-json PATH] [EXPERIMENT...]
//! repro bench [--compare [BASELINE.json]] [same flags]
//! repro bench --scale-sweep [--out DIR] [same flags]
//! repro explain EPISODE-ID [same flags]
//! repro watch HOST:PORT [--interval-ms N] [--frames N]
//! repro validate-metrics FILE
//! repro validate-trace FILE
//!
//! EXPERIMENT ∈ { table1 table2 table3 table4 table5 table6
//!                fig2 fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!                russia futurework ablate all }      (default: all)
//! ```
//!
//! `--scale D` divides the paper's monthly attack volumes by `D`
//! (default 40; `--scale 1` reproduces the full 4M-attack feed).
//!
//! `--jobs N` sets the worker-thread count for the experiment scheduler
//! and the pipeline's parallel stages (default: available parallelism;
//! `--jobs 1` runs fully sequentially). The outputs are byte-identical
//! for any `--jobs` value — threads only change the wall clock, never
//! the CSVs.
//!
//! `--chaos-seed N` turns on deterministic fault injection: measurement
//! tasks and experiment jobs are crashed on a schedule derived from `N`
//! and recovered by the supervisor. The artifacts are byte-identical to a
//! run without the flag — chaos only exercises the recovery machinery.
//!
//! `--checkpoint-dir DIR` makes the run resumable: each experiment job
//! writes its artifacts atomically and then records a completion marker in
//! `DIR`. A killed run (even `kill -9` mid-write) re-invoked with the same
//! flags and checkpoint dir skips the completed jobs and finishes the
//! rest, leaving `--out` byte-identical to an uninterrupted run.
//!
//! `--metrics-json PATH` writes the machine-readable run report (schema
//! `dnsimpact-metrics/v2`: per-stage wall times, throughput counters,
//! gauges, latency histograms, peak RSS) after the run; the document is
//! schema-validated before it is written. `--metrics-summary` prints the
//! human version of the same report to stderr. Both are out-of-band:
//! metrics never influence artifact bytes or stdout.
//!
//! `--trace-json PATH` writes the run's causal event trace (attack onsets,
//! feed arrivals, joins, reactive triggers/probes, chaos faults/repairs,
//! stage brackets) as Chrome trace-event JSON, loadable in Perfetto or
//! `chrome://tracing`. Like the metrics report it is out-of-band: tracing
//! never influences artifact bytes or stdout.
//!
//! `repro bench` replays a fixed catalog subset at a pinned
//! seed/scale/chaos configuration and writes `results/BENCH_<date>.json`
//! in the same schema (CSVs go to a scratch directory). A second bench run
//! on the same date goes to `BENCH_<date>_run2.json` (and so on) instead
//! of clobbering the first; the report's `meta.run` carries the counter.
//! CI runs it and validates the report.
//!
//! `repro bench --compare [BASELINE.json]` additionally diffs the fresh
//! report against a baseline (default: the newest other
//! `results/BENCH_*.json`): wall-clock or peak-RSS beyond the generous
//! thresholds in `obs::report` fail, and any drift in the deterministic
//! counters/gauges/histograms fails exactly. Exit 1 on failure — this is
//! the CI bench-regression gate.
//!
//! `repro bench --scale-sweep` runs the pinned longitudinal pipeline over
//! the scale grid — target attack counts {1.5k, 15k}, plus 150k with
//! `DNSIMPACT_SCALE_HEAVY=1` and 1.5M with `DNSIMPACT_SCALE_HEAVY=2` —
//! each at jobs ∈ {1, N}, and writes a `dnsimpact-sweep/v1` report
//! (records/sec, wall, peak RSS, speedup-vs-jobs=1 per cell) to
//! `SWEEP_<date>[_runN].json` under `--out` (default `results/`). Every
//! jobs=N cell's artifacts are fingerprint-checked against its scale's
//! jobs=1 cell (on a single-CPU host an 8-thread cell still runs for this
//! check), and on a multi-CPU host the largest scale must show
//! speedup > 1 at jobs=N; either violation exits 1 without writing a
//! report.
//!
//! `repro explain EPISODE-ID` (e.g. `rsdos/3`, `milru/0`, or a bare index
//! meaning `rsdos/<idx>`) replays the experiments that cover the episode's
//! scope and prints the episode's causal timeline: onset → feed arrival →
//! join → trigger delay vs the 10-minute bound → probe rounds vs the
//! 50-domain budget → impact rows, plus the run's fault/repair tally. The
//! timeline is built from the trace's deterministic fields only, so it is
//! byte-identical for any `--jobs` value.
//!
//! `repro daemon-bench` runs the whole `dnsimpactd` serving story in one
//! process — pinned feed, supervised ingest, HTTP serving, Zipf query
//! load — and writes a `dnsimpactd-report/v1` snapshot (ingest
//! fingerprint, QPS, p50/p95/p99 tail latency, shed accounting) to
//! `results/DAEMON_<date>[_runN].json`.
//!
//! `repro watch HOST:PORT` renders a polling stderr dashboard against a
//! live `dnsimpactd`: sparkline trajectories of the tick-clock series,
//! the SLO verdict table, and the staleness/ingest header. An
//! unreachable daemon is a rendered state, not an exit; `--frames N`
//! bounds the run for CI.
//!
//! `repro validate-metrics FILE` schema-validates a previously written
//! report, dispatching on the document's `schema` field: a
//! `dnsimpact-metrics/v2` run report additionally gets the cross-counter
//! invariant checks (fault accounting balances; reactive latency and
//! probe budgets hold), a `dnsimpact-sweep/v1` sweep report gets the
//! cell-grid checks (sorted, duplicate-free cells; finite floats), a
//! `dnsimpactd-report/v1` daemon report gets the shed-accounting check,
//! and a `dnsimpactd-live/v1` telemetry report gets the delta
//! conservation check across its tick ring.
//! An unknown or missing schema id is rejected outright, naming the id
//! and the known schemas. Exit 1 on any violation — this is the CI
//! metrics gate.
//!
//! `repro validate-trace FILE` loads a `--trace-json` file back and checks
//! the causality invariants (triggers follow feed arrivals within bound,
//! fault repairs match injections, probe budgets hold). Exit 1 on any
//! violation — this is the CI trace gate.

use bench_support::{
    needs_longitudinal, run_catalog_checkpointed, run_experiments_chaos, Artifact, CheckpointDir,
    ExperimentRun, Experiments, CATALOG,
};
use dnsimpact_core::report::{write_atomic, write_output};
use scenarios::{PaperScale, WorldConfig};
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The fixed subset `repro bench` replays: every pipeline stage is
/// exercised — longitudinal (tables/figures), the TransIP scenario
/// (`table2`/`fig2`/`fig3`), the Russia scenario (reactive platform and
/// telescope feed gaps), the §4.1 ablation, and the future-work probe.
const BENCH_EXPERIMENTS: &[&str] = &[
    "table1",
    "table2",
    "table3",
    "table5",
    "fig2",
    "fig3",
    "fig5",
    "fig8",
    "fig11",
    "russia",
    "ablate",
    "futurework",
];
/// Pinned bench configuration: small fixed scale, chaos on so the fault
/// accounting (and its CI invariant) is exercised every bench run.
const BENCH_SCALE: u32 = 1500;
const BENCH_CHAOS_SEED: u64 = 9;

struct Options {
    seed: u64,
    scale: u32,
    jobs: usize,
    out: PathBuf,
    chaos_seed: Option<u64>,
    checkpoint_dir: Option<PathBuf>,
    metrics_json: Option<PathBuf>,
    metrics_summary: bool,
    trace_json: Option<PathBuf>,
    bench: bool,
    /// `bench --scale-sweep`: run the scale×jobs grid instead of the
    /// experiment catalog and emit a `dnsimpact-sweep/v1` report.
    scale_sweep: bool,
    /// `bench --trajectory`: print the committed `BENCH_`/`SWEEP_`/`SUITE_`
    /// report series as a wall/RSS/throughput time series instead of
    /// running.
    trajectory: bool,
    /// `bench --suite A|B|all`: run the process-based Suite A/B
    /// orchestrator and emit a `dnsimpact-suite/v1` report.
    suite: Option<bench_support::SuiteSel>,
    /// Same-day bench run counter (1 for the first run of a date).
    run: u64,
    /// `bench --compare`: `Some(None)` = auto-pick the newest baseline,
    /// `Some(Some(path))` = explicit baseline file.
    compare: Option<Option<PathBuf>>,
    /// `explain EPISODE-ID`: print the episode's causal timeline.
    explain: Option<String>,
    experiments: Vec<String>,
}

/// Fatal usage/environment error: say what was wrong, in context, and
/// exit 2. The CLI surface never panics on bad input or failed I/O.
fn die(msg: &str) -> ! {
    eprintln!("repro: {msg}");
    std::process::exit(2);
}

/// The operand of `flag`, or a contextful usage error.
fn operand(args: &mut impl Iterator<Item = String>, flag: &str, what: &str) -> String {
    args.next().unwrap_or_else(|| die(&format!("{flag} needs {what} (usage: {flag} {what})")))
}

/// Parse `value` as the numeric operand of `flag`.
fn num_operand<T: std::str::FromStr>(flag: &str, value: &str) -> T
where
    T::Err: std::fmt::Display,
{
    value.parse().unwrap_or_else(|e| die(&format!("{flag}: bad value {value:?}: {e}")))
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: 42,
        scale: 40,
        jobs: 0, // 0 = available parallelism
        out: PathBuf::from("results"),
        chaos_seed: None,
        checkpoint_dir: None,
        metrics_json: None,
        metrics_summary: false,
        trace_json: None,
        bench: false,
        scale_sweep: false,
        trajectory: false,
        suite: None,
        run: 1,
        compare: None,
        explain: None,
        experiments: Vec::new(),
    };
    let (mut scale_set, mut out_set) = (false, false);
    let mut args = std::env::args().skip(1);
    // `--compare`'s operand is optional: when the next argument is not a
    // baseline path it is pushed back and re-processed here.
    let mut pushback: Option<String> = None;
    while let Some(a) = pushback.take().or_else(|| args.next()) {
        match a.as_str() {
            "--seed" => opts.seed = num_operand("--seed", &operand(&mut args, "--seed", "N")),
            "--scale" => {
                opts.scale = num_operand("--scale", &operand(&mut args, "--scale", "D"));
                scale_set = true;
            }
            "--jobs" => opts.jobs = num_operand("--jobs", &operand(&mut args, "--jobs", "N")),
            "--out" => {
                opts.out = PathBuf::from(operand(&mut args, "--out", "DIR"));
                out_set = true;
            }
            "--chaos-seed" => {
                opts.chaos_seed =
                    Some(num_operand("--chaos-seed", &operand(&mut args, "--chaos-seed", "N")))
            }
            "--checkpoint-dir" => {
                opts.checkpoint_dir =
                    Some(PathBuf::from(operand(&mut args, "--checkpoint-dir", "DIR")))
            }
            "--metrics-json" => {
                opts.metrics_json =
                    Some(PathBuf::from(operand(&mut args, "--metrics-json", "PATH")))
            }
            "--metrics-summary" => opts.metrics_summary = true,
            "--trace-json" => {
                opts.trace_json = Some(PathBuf::from(operand(&mut args, "--trace-json", "PATH")))
            }
            "--compare" => {
                // Optional operand: a .json baseline path; otherwise the
                // newest other results/BENCH_*.json is picked at run time.
                opts.compare = Some(None);
                if let Some(peeked) = args.next() {
                    if peeked.ends_with(".json") {
                        opts.compare = Some(Some(PathBuf::from(peeked)));
                    } else {
                        // Not a baseline: re-process as a normal argument.
                        pushback = Some(peeked);
                    }
                }
            }
            "bench" => opts.bench = true,
            "--scale-sweep" => opts.scale_sweep = true,
            "--trajectory" => opts.trajectory = true,
            "--suite" => {
                let v = operand(&mut args, "--suite", "A|B|all");
                opts.suite = Some(bench_support::SuiteSel::parse(&v).unwrap_or_else(|| {
                    die(&format!("--suite: unknown suite {v:?}; want A, B, or all"))
                }));
            }
            "explain" => opts.explain = Some(operand(&mut args, "explain", "EPISODE-ID")),
            "daemon-bench" => {
                let rest: Vec<String> = args.collect();
                std::process::exit(daemon_bench(&rest));
            }
            "watch" => {
                let rest: Vec<String> = args.collect();
                std::process::exit(watch(&rest));
            }
            "validate-metrics" => {
                let file = PathBuf::from(operand(&mut args, "validate-metrics", "FILE"));
                std::process::exit(validate_metrics(&file));
            }
            "validate-trace" => {
                let file = PathBuf::from(operand(&mut args, "validate-trace", "FILE"));
                std::process::exit(validate_trace(&file));
            }
            "--help" | "-h" => {
                println!(
                    "repro [--seed N] [--scale D] [--jobs N] [--out DIR] \
                     [--chaos-seed N] [--checkpoint-dir DIR] \
                     [--metrics-json PATH] [--metrics-summary] \
                     [--trace-json PATH] [EXPERIMENT...]"
                );
                println!("repro bench                   replay the fixed bench subset,");
                println!("                              write results/BENCH_<date>[_runN].json");
                println!("repro bench --compare [FILE]  also diff against a baseline report");
                println!("repro bench --scale-sweep     scale x jobs throughput grid,");
                println!(
                    "                              write SWEEP_<date>[_runN].json under --out"
                );
                println!(
                    "                              (DNSIMPACT_SCALE_HEAVY=1|2 adds 150k/1.5M)"
                );
                println!("repro bench --suite A|B|all   spawn the release binaries as processes:");
                println!(
                    "                              Suite A pins the catalog across scale x jobs"
                );
                println!(
                    "                              (exact cross-process fingerprints), Suite B"
                );
                println!(
                    "                              merges per-process histograms across chaos"
                );
                println!(
                    "                              seeds; write SUITE_<date>[_runN].json under"
                );
                println!("                              --out (default results/)");
                println!("repro bench --trajectory      print the committed BENCH_/SWEEP_/SUITE_");
                println!(
                    "                              report series under --out (default results/)"
                );
                println!(
                    "                              as a wall / peak-RSS / records-per-sec time"
                );
                println!("                              series");
                println!("repro explain EPISODE-ID      print an episode's causal timeline");
                println!("                              (e.g. rsdos/3, milru/0, transip/1)");
                println!("repro daemon-bench            ingest the pinned daemon feed, serve it,");
                println!("                              fire a Zipf query load, write");
                println!("                              DAEMON_<date>[_runN].json under --out");
                println!("repro watch HOST:PORT         live stderr dashboard for a running");
                println!("                              dnsimpactd: sparkline series, SLO");
                println!("                              verdicts, staleness ([--interval-ms N]");
                println!("                              [--frames N])");
                println!("repro validate-metrics FILE   schema + invariant check a report");
                println!("repro validate-trace FILE     causality-check a --trace-json file");
                println!("run `repro --list` for the experiment catalog");
                std::process::exit(0);
            }
            "--list" => {
                for (id, what) in CATALOG {
                    println!("{id:<12} {what}");
                }
                std::process::exit(0);
            }
            other => opts.experiments.push(other.to_string()),
        }
    }
    if opts.bench {
        // Pin the bench configuration; explicit flags still win.
        if !scale_set {
            opts.scale = BENCH_SCALE;
        }
        if opts.chaos_seed.is_none() {
            opts.chaos_seed = Some(BENCH_CHAOS_SEED);
        }
        if !out_set && !opts.scale_sweep && !opts.trajectory && opts.suite.is_none() {
            // Bench CSVs are throwaway — keep them out of the committed
            // `results/` series. (Sweep mode instead writes its report
            // under `--out`, default `results/`; trajectory mode reads
            // the committed series from there.)
            opts.out = PathBuf::from("target/bench-out");
        }
        if opts.metrics_json.is_none()
            && !opts.scale_sweep
            && !opts.trajectory
            && opts.suite.is_none()
        {
            // Same-day runs never clobber: the first run of a date owns
            // BENCH_<date>.json, later runs get a _runN suffix, and the
            // report's meta.run records which slot this was.
            let (run, path) = next_bench_slot(Path::new("results"), &obs::report::today_utc());
            opts.run = run;
            opts.metrics_json = Some(path);
        }
        opts.metrics_summary = true;
        if opts.experiments.is_empty() {
            opts.experiments = BENCH_EXPERIMENTS.iter().map(|e| e.to_string()).collect();
        }
    }
    if let Some(id) = &opts.explain {
        // Replay only the experiments that populate the episode's scope.
        let scope = obs::trace::parse_episode_id(id).map(|(s, _)| s).unwrap_or_default();
        opts.experiments = vec![match scope.as_str() {
            "milru" | "rdz" => "russia".to_string(),
            "transip" => "table2".to_string(),
            _ => "table1".to_string(), // any longitudinal id traces "rsdos"
        }];
    }
    if opts.experiments.is_empty() || opts.experiments.iter().any(|e| e == "all") {
        opts.experiments = CATALOG.iter().map(|(id, _)| id.to_string()).collect();
    }
    opts
}

/// Pick this bench run's report slot for `date`: run 1 owns
/// `BENCH_<date>.json`; if that (or a `_runN`) already exists, the next
/// free `BENCH_<date>_run<N>.json` is used instead.
fn next_bench_slot(dir: &Path, date: &str) -> (u64, PathBuf) {
    next_slot(dir, "BENCH", date)
}

/// Same-day slot logic shared by `BENCH_` and `SWEEP_` report series.
fn next_slot(dir: &Path, prefix: &str, date: &str) -> (u64, PathBuf) {
    let mut run = 1u64;
    loop {
        let path = slot_path(dir, prefix, date, run);
        if !path.exists() {
            return (run, path);
        }
        run += 1;
    }
}

fn slot_path(dir: &Path, prefix: &str, date: &str, run: u64) -> PathBuf {
    if run <= 1 {
        dir.join(format!("{prefix}_{date}.json"))
    } else {
        dir.join(format!("{prefix}_{date}_run{run}.json"))
    }
}

/// The `validate-metrics` subcommand: schema-validate a previously
/// written report, dispatching on its `schema` field — run reports
/// (`dnsimpact-metrics/v2`) also get the counter-invariant checks, sweep
/// reports (`dnsimpact-sweep/v1`) the cell-grid checks, suite reports
/// (`dnsimpact-suite/v1`) the process-accounting and merged-histogram
/// checks, daemon reports (`dnsimpactd-report/v1`) the shed-accounting
/// check, and legacy pre-trace run reports (`dnsimpact-metrics/v1`) the
/// v1 rules so committed history stays checkable. A document whose
/// schema is missing or matches none of those is rejected (exit 2) with
/// the unknown id and the known schema list — a typo'd or future schema
/// must never silently fall through to the wrong validator. Returns the
/// process exit code.
fn validate_metrics(path: &Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            obs::progress("repro", &format!("cannot read {}: {e}", path.display()));
            return 2;
        }
    };
    let doc = match obs::Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            obs::progress("repro", &format!("{} is not valid JSON: {e}", path.display()));
            return 2;
        }
    };
    let report_violations = |kind: &str, errors: &[String]| {
        for e in errors {
            obs::progress("repro", &format!("{kind} violation: {e}"));
        }
        obs::progress("repro", &format!("{}: {} violation(s)", path.display(), errors.len()));
    };
    match doc.get("schema").and_then(|s| s.as_str()) {
        Some(obs::SWEEP_SCHEMA_ID) => match obs::sweep::validate(&doc) {
            Ok(()) => {
                let cells =
                    doc.get("cells").and_then(|c| c.as_array().map(|a| a.len())).unwrap_or(0);
                obs::progress(
                    "repro",
                    &format!(
                        "{} is a valid {} report ({cells} cell(s), sorted, finite)",
                        path.display(),
                        obs::SWEEP_SCHEMA_ID,
                    ),
                );
                0
            }
            Err(errors) => {
                report_violations("sweep", &errors);
                1
            }
        },
        Some(obs::SUITE_SCHEMA_ID) => match obs::suite::validate(&doc) {
            Ok(()) => {
                let n = |key: &str| {
                    doc.get(key).and_then(|c| c.as_array().map(|a| a.len())).unwrap_or(0)
                };
                obs::progress(
                    "repro",
                    &format!(
                        "{} is a valid {} report ({} suite A cell(s), {} suite B scale(s), \
                         {} verdict(s))",
                        path.display(),
                        obs::SUITE_SCHEMA_ID,
                        n("suite_a"),
                        n("suite_b"),
                        n("verdicts"),
                    ),
                );
                0
            }
            Err(errors) => {
                report_violations("suite", &errors);
                1
            }
        },
        Some(obs::DAEMON_SCHEMA_ID) => match obs::daemon::validate(&doc) {
            Ok(()) => {
                obs::progress(
                    "repro",
                    &format!(
                        "{} is a valid {} report (shed accounting balances, floats finite)",
                        path.display(),
                        obs::DAEMON_SCHEMA_ID,
                    ),
                );
                0
            }
            Err(errors) => {
                report_violations("daemon", &errors);
                1
            }
        },
        Some(obs::LIVE_SCHEMA_ID) => match obs::live::validate(&doc) {
            Ok(()) => {
                let n = |key: &str| {
                    doc.get("deterministic")
                        .and_then(|d| d.get(key))
                        .and_then(|c| c.as_array().map(|a| a.len()))
                        .unwrap_or(0)
                };
                obs::progress(
                    "repro",
                    &format!(
                        "{} is a valid {} report ({} deterministic series, {} SLO \
                         transition(s); delta conservation holds)",
                        path.display(),
                        obs::LIVE_SCHEMA_ID,
                        n("series"),
                        n("slo_transitions"),
                    ),
                );
                0
            }
            Err(errors) => {
                report_violations("live", &errors);
                1
            }
        },
        Some(obs::SCHEMA_ID) => {
            let mut errors = Vec::new();
            if let Err(e) = obs::report::validate(&doc) {
                errors.extend(e);
            }
            if let Err(e) = obs::report::check_invariants(&doc) {
                errors.extend(e);
            }
            if errors.is_empty() {
                let count = |key: &str| {
                    doc.get(key).and_then(|m| m.as_object().map(|o| o.len())).unwrap_or(0)
                };
                obs::progress(
                    "repro",
                    &format!(
                        "{} is a valid {} report ({} counters, {} gauges, {} histograms); \
                         invariants hold",
                        path.display(),
                        obs::SCHEMA_ID,
                        count("counters"),
                        count("gauges"),
                        count("histograms"),
                    ),
                );
                0
            } else {
                report_violations("metrics", &errors);
                1
            }
        }
        Some(obs::report::LEGACY_SCHEMA_ID) => {
            // Committed baselines that predate the v2 bump: validate under
            // the rules of their day (no meta.run / p95 / trace), with the
            // same counter invariants — the trajectory command still reads
            // them, so the hygiene gate must too.
            let mut errors = Vec::new();
            if let Err(e) = obs::report::validate_legacy_v1(&doc) {
                errors.extend(e);
            }
            if let Err(e) = obs::report::check_invariants(&doc) {
                errors.extend(e);
            }
            if errors.is_empty() {
                obs::progress(
                    "repro",
                    &format!(
                        "{} is a valid legacy {} report; invariants hold",
                        path.display(),
                        obs::report::LEGACY_SCHEMA_ID,
                    ),
                );
                0
            } else {
                report_violations("legacy metrics", &errors);
                1
            }
        }
        other => {
            obs::progress(
                "repro",
                &format!(
                    "{}: unknown schema {}; known schemas: {}, {}, {}, {}, {}",
                    path.display(),
                    other.map_or("<missing>".to_string(), |s| format!("{s:?}")),
                    obs::SCHEMA_ID,
                    obs::SWEEP_SCHEMA_ID,
                    obs::SUITE_SCHEMA_ID,
                    obs::DAEMON_SCHEMA_ID,
                    obs::LIVE_SCHEMA_ID,
                ),
            );
            2
        }
    }
}

/// The `validate-trace` subcommand: load a `--trace-json` file back from
/// its Chrome trace-event form and check the causality invariants. Returns
/// the process exit code.
fn validate_trace(path: &Path) -> i32 {
    let text = match std::fs::read_to_string(path) {
        Ok(t) => t,
        Err(e) => {
            obs::progress("repro", &format!("cannot read {}: {e}", path.display()));
            return 2;
        }
    };
    let doc = match obs::Json::parse(&text) {
        Ok(d) => d,
        Err(e) => {
            obs::progress("repro", &format!("{} is not valid JSON: {e}", path.display()));
            return 2;
        }
    };
    let events = match obs::trace::from_chrome_json(&doc) {
        Ok(ev) => ev,
        Err(errors) => {
            for e in &errors {
                obs::progress("repro", &format!("trace schema violation: {e}"));
            }
            return 2;
        }
    };
    let errors = obs::trace::check_causality(&events);
    if errors.is_empty() {
        let episodes = obs::trace::available_episodes(&events);
        obs::progress(
            "repro",
            &format!(
                "{} is a valid trace ({} events, {} episode scope(s)); causality holds",
                path.display(),
                events.len(),
                episodes.len(),
            ),
        );
        0
    } else {
        for e in &errors {
            obs::progress("repro", &format!("causality violation: {e}"));
        }
        obs::progress("repro", &format!("{}: {} violation(s)", path.display(), errors.len()));
        1
    }
}

/// `repro watch HOST:PORT`: poll a running daemon and render the live
/// dashboard to stderr. Returns the process exit code.
fn watch(args: &[String]) -> i32 {
    let mut addr: Option<String> = None;
    let mut cfg = bench_support::WatchConfig::default();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut val = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match a.as_str() {
            "--interval-ms" => cfg.interval_ms = num_operand("--interval-ms", &val(a)),
            "--frames" => cfg.frames = Some(num_operand("--frames", &val(a))),
            other => addr = Some(other.to_string()),
        }
    }
    let Some(addr) = addr else { die("watch needs HOST:PORT") };
    let addr = match addr.trim_start_matches("http://").parse() {
        Ok(a) => a,
        Err(e) => die(&format!("watch: bad address {addr:?}: {e}")),
    };
    bench_support::watch::run(addr, &cfg)
}

/// `repro daemon-bench`: one in-process pass over the daemon's whole
/// serving story — build the pinned feed, ingest it through the
/// supervised transport, serve it over HTTP, fire the Zipf query load,
/// and commit a validated `dnsimpactd-report/v1` snapshot to
/// `results/DAEMON_<date>[_runN].json` (same-day runs get `_runN` slots,
/// like `BENCH_`/`SWEEP_`). Returns the process exit code.
fn daemon_bench(args: &[String]) -> i32 {
    let mut seed = 42u64;
    let mut scale = 1_500u64;
    let mut months = 2usize;
    let mut jobs = 0usize;
    let mut chaos_seed: Option<u64> = None;
    let mut out = PathBuf::from("results");
    let mut qcfg = bench_support::QloadConfig::default();
    let mut staleness_bound_s = 1_800u64;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |flag: &str| {
            it.next().cloned().unwrap_or_else(|| die(&format!("{flag} needs a value")))
        };
        match flag.as_str() {
            "--seed" => seed = num_operand(flag, &val(flag)),
            "--scale-target" => scale = num_operand(flag, &val(flag)),
            "--months" => months = num_operand(flag, &val(flag)),
            "--jobs" => jobs = num_operand(flag, &val(flag)),
            "--chaos-seed" => chaos_seed = Some(num_operand(flag, &val(flag))),
            "--clients" => qcfg.clients = num_operand(flag, &val(flag)),
            "--queries" => qcfg.queries_per_client = num_operand(flag, &val(flag)),
            "--zipf-s" => qcfg.zipf_s = num_operand(flag, &val(flag)),
            "--staleness-bound-s" => staleness_bound_s = num_operand(flag, &val(flag)),
            "--out" => out = PathBuf::from(val(flag)),
            other => die(&format!("daemon-bench: unknown flag {other:?}")),
        }
    }
    qcfg.seed = seed;
    let jobs = streamproc::effective_jobs(jobs);

    let mut feed_cfg = dnsimpactd::FeedConfig::pinned(scale);
    feed_cfg.seed = seed;
    feed_cfg.months = months;
    obs::progress(
        "repro",
        &format!("daemon-bench: building feed (seed {seed}, scale {scale}, months {months}, jobs {jobs})"),
    );
    let source = dnsimpactd::feed::build(&feed_cfg, jobs);
    let dir = std::sync::Arc::new(dnsimpactd::DomainDir::build(&source.world.infra));
    let cell = std::sync::Arc::new(streamproc::SwapCell::new(dnsimpactd::IndexSnapshot::default()));

    let ingest_start = Instant::now();
    let mut ingestor = dnsimpactd::Ingestor::new(
        &source,
        dnsimpactd::IngestConfig { chaos_seed, ..dnsimpactd::IngestConfig::default() },
        std::sync::Arc::clone(&cell),
    );
    ingestor.run();
    let ingest_wall_ms = ingest_start.elapsed().as_millis() as u64;
    let fingerprint = format!("{:#018x}", ingestor.state.full_fingerprint());
    obs::progress(
        "repro",
        &format!(
            "daemon-bench: ingested {} batches / {} records in {ingest_wall_ms} ms, fp {fingerprint}",
            source.batches.len(),
            source.total_records
        ),
    );

    let server_cfg =
        dnsimpactd::ServerConfig { staleness_bound_s, ..dnsimpactd::ServerConfig::default() };
    let server = match dnsimpactd::Server::start(
        &server_cfg,
        std::sync::Arc::clone(&cell),
        dir.clone(),
        None,
    ) {
        Ok(s) => s,
        Err(e) => {
            obs::progress("repro", &format!("daemon-bench: cannot bind server: {e}"));
            return 1;
        }
    };
    let names: Vec<String> = dir.names().map(str::to_string).collect();
    obs::progress(
        "repro",
        &format!(
            "daemon-bench: firing {} clients x {} queries (zipf s={}) at {}",
            qcfg.clients,
            qcfg.queries_per_client,
            qcfg.zipf_s,
            server.addr()
        ),
    );
    let stats = bench_support::qload::run(server.addr(), &names, &qcfg);
    let snap = cell.load();
    server.shutdown();

    let rtt = obs::histogram("sched.qload.rtt_us").snapshot();
    let report = obs::DaemonReport {
        meta: obs::DaemonMeta {
            seed,
            scale,
            months: months as u64,
            jobs: jobs as u64,
            date: obs::report::today_utc(),
            clients: qcfg.clients as u64,
            zipf_s: qcfg.zipf_s,
            staleness_bound_s,
        },
        batches: source.batches.len() as u64,
        records: source.total_records,
        episodes: source.episodes_emitted,
        ingest_wall_ms,
        fingerprint,
        queries_sent: stats.sent,
        ok: stats.ok,
        not_found: stats.not_found,
        shed: stats.shed,
        errors: stats.errors,
        qps: stats.qps(),
        p50_us: rtt.p50 as f64,
        p95_us: rtt.p95 as f64,
        p99_us: rtt.p99 as f64,
        staleness_s: snap.staleness_s(),
    };
    let doc = report.to_json();
    if let Err(errors) = obs::daemon::validate(&doc) {
        for e in &errors {
            obs::progress("repro", &format!("daemon violation: {e}"));
        }
        obs::progress("repro", "refusing to write invalid daemon report");
        return 1;
    }
    std::fs::create_dir_all(&out)
        .unwrap_or_else(|e| die(&format!("cannot create out dir {}: {e}", out.display())));
    let (_, path) = next_slot(&out, "DAEMON", &obs::report::today_utc());
    let mut text = doc.pretty();
    text.push('\n');
    write_atomic(&path, &text)
        .unwrap_or_else(|e| die(&format!("cannot write daemon report {}: {e}", path.display())));
    eprint!("{}", report.summary_table());
    obs::progress("repro", &format!("daemon report written to {}", path.display()));
    0
}

fn index_line(a: &Artifact) -> String {
    format!("- `{}.csv` — {}\n", a.id, a.title)
}

const INDEX_HEADER: &str = "# results index\n\nCSV series produced by the `repro` harness.\n\n";

/// Rebuild `INDEX.md` deterministically: header, then any pre-existing
/// lines this run did not produce (earlier runs with other experiment
/// subsets), then this run's lines in canonical order. Atomic, so a kill
/// never leaves a truncated index.
fn rebuild_index(out: &std::path::Path, ours: &[String]) {
    let index = out.join("INDEX.md");
    let foreign: Vec<String> = std::fs::read_to_string(&index)
        .map(|s| {
            s.lines()
                .map(|l| format!("{l}\n"))
                .filter(|l| l.starts_with("- ") && !ours.contains(l))
                .collect()
        })
        .unwrap_or_default();
    let mut content = String::from(INDEX_HEADER);
    for l in foreign.iter().chain(ours) {
        content.push_str(l);
    }
    if std::fs::create_dir_all(out).is_ok() {
        let _ = write_atomic(&index, &content);
    }
}

/// Build the schema-`v2` run report from this run's identity, stage
/// timings, the global metrics registry, and the trace summary.
fn build_report(
    opts: &Options,
    known: &[String],
    jobs: usize,
    timings: &[(String, Duration)],
    total_wall: Duration,
) -> obs::RunReport {
    obs::RunReport {
        meta: obs::RunMeta {
            seed: opts.seed,
            scale: u64::from(opts.scale),
            jobs: jobs as u64,
            run: opts.run,
            chaos_seed: opts.chaos_seed,
            bench: opts.bench,
            date: obs::report::today_utc(),
            experiments: known.to_vec(),
        },
        total_wall_ms: total_wall.as_millis() as u64,
        peak_rss_kb: obs::rss::peak_rss_kb(),
        stages: timings
            .iter()
            .map(|(name, wall)| obs::StageWall {
                name: name.clone(),
                wall_ms: wall.as_millis() as u64,
            })
            .collect(),
        metrics: obs::registry().snapshot(),
        trace: obs::trace::summary(),
    }
}

/// Validate-then-write the run report: the emitting side runs the same
/// schema and invariant checks the CI gate does, so a broken report never
/// reaches disk silently.
fn emit_report(report: &obs::RunReport, path: &Path) {
    let doc = report.to_json();
    let mut errors = Vec::new();
    if let Err(e) = obs::report::validate(&doc) {
        errors.extend(e);
    }
    if let Err(e) = obs::report::check_invariants(&doc) {
        errors.extend(e);
    }
    if !errors.is_empty() {
        for e in &errors {
            obs::progress("repro", &format!("metrics violation: {e}"));
        }
        obs::progress(
            "repro",
            &format!("refusing to write invalid metrics report to {}", path.display()),
        );
        std::process::exit(1);
    }
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                die(&format!("cannot create metrics dir {}: {e}", parent.display()))
            });
        }
    }
    let mut text = doc.pretty();
    text.push('\n');
    write_atomic(path, &text)
        .unwrap_or_else(|e| die(&format!("cannot write metrics report {}: {e}", path.display())));
    obs::progress("repro", &format!("metrics report written to {}", path.display()));
}

fn main() {
    let opts = parse_args();
    if opts.trajectory {
        std::process::exit(run_trajectory_cmd(&opts));
    }
    if opts.scale_sweep {
        std::process::exit(run_scale_sweep_cmd(&opts));
    }
    if opts.suite.is_some() {
        std::process::exit(run_suite_cmd(&opts));
    }
    let known: Vec<String> = opts
        .experiments
        .iter()
        .filter(|e| {
            let ok = CATALOG.iter().any(|(id, _)| id == e);
            if !ok {
                obs::progress("repro", &format!("unknown experiment '{e}' (skipped)"));
            }
            ok
        })
        .cloned()
        .collect();
    let jobs = streamproc::effective_jobs(opts.jobs);
    let total = Instant::now();
    let ckpt = opts.checkpoint_dir.as_ref().map(|d| {
        CheckpointDir::new(d)
            .unwrap_or_else(|e| die(&format!("cannot create checkpoint dir {}: {e}", d.display())))
    });

    // Stage 1: the shared longitudinal pipeline, if any requested
    // experiment renders from it.
    let mut timings: Vec<(String, Duration)> = Vec::new();
    let ex: Option<Experiments> = known.iter().any(|e| needs_longitudinal(e)).then(|| {
        obs::progress(
            "repro",
            &format!(
                "running longitudinal pipeline (seed {}, scale 1/{}, jobs {jobs}{}) ...",
                opts.seed,
                opts.scale,
                opts.chaos_seed.map(|c| format!(", chaos {c}")).unwrap_or_default(),
            ),
        );
        let _span = obs::span("longitudinal");
        let start = Instant::now();
        let ex = run_experiments_chaos(
            opts.seed,
            PaperScale { divisor: opts.scale },
            &WorldConfig::default(),
            opts.jobs,
            opts.chaos_seed,
        );
        timings.push(("longitudinal pipeline".into(), start.elapsed()));
        ex
    });

    // Stage 2: schedule the experiments across the worker pool, each job
    // supervised (and crashed on schedule under --chaos-seed). Artifacts
    // are persisted from the worker as each job completes — atomically,
    // then checkpoint-marked — so a killed run keeps its finished jobs.
    let fault = opts.chaos_seed.map(|cs| {
        streamproc::FaultPlan::from_seed(
            cs,
            "experiment-catalog",
            streamproc::ChaosConfig::CALIBRATED,
        )
    });
    let out_dir = opts.out.clone();
    let ckpt_ref = ckpt.as_ref();
    let persist = |run: &ExperimentRun| {
        let mut lines = Vec::new();
        for a in &run.artifacts {
            write_output(&out_dir, &format!("{}.csv", a.id), &a.csv).unwrap_or_else(|e| {
                die(&format!("cannot write {}.csv under {}: {e}", a.id, out_dir.display()))
            });
            lines.push(index_line(a));
        }
        if let Some(c) = ckpt_ref {
            c.mark_done(&run.id, &lines).unwrap_or_else(|e| {
                die(&format!("cannot write checkpoint marker for {}: {e}", run.id))
            });
            obs::trace::emit(
                obs::EventKind::CheckpointWritten,
                &run.id,
                None,
                None,
                "completion marker",
                Some(run.artifacts.len() as u64),
            );
        }
    };
    let catalog_start = Instant::now();
    let (runs, chaos_stats) = {
        let _span = obs::span("catalog");
        run_catalog_checkpointed(
            ex.as_ref(),
            opts.seed,
            &known,
            opts.jobs,
            fault.as_ref(),
            ckpt_ref,
            &persist,
        )
    };
    timings.push(("experiment catalog".into(), catalog_start.elapsed()));

    // Stage 3: stdout in canonical order, then the results index. Under
    // `bench` and `explain` the artifact text is suppressed — the report
    // (or the episode timeline) is the product.
    let quiet = opts.bench || opts.explain.is_some();
    let _span_emit = obs::span("emit");
    let mut index_lines: Vec<String> = Vec::new();
    for run in &runs {
        if run.resumed {
            obs::progress("repro", &format!("{} already complete (checkpoint); skipped", run.id));
            if let Some(c) = ckpt_ref {
                index_lines.extend(c.done_index_lines(&run.id));
            }
        } else {
            for a in &run.artifacts {
                if !quiet {
                    println!("=== {} ===\n{}\n", a.title, a.text);
                }
                index_lines.push(index_line(a));
            }
        }
        timings.push((run.id.clone(), run.wall));
    }
    rebuild_index(&opts.out, &index_lines);
    drop(_span_emit);

    // Stage timing summary (stderr only, via obs — stdout stays reserved
    // for artifact text so the CI determinism diff is never polluted).
    obs::progress("repro", &format!("stage timings (jobs={jobs}):"));
    for (stage, wall) in &timings {
        obs::progress("repro", &format!("  {stage:<24} {wall:>8.2?}"));
    }
    obs::progress("repro", &format!("  {:<24} {:>8.2?} wall", "total", total.elapsed()));
    if let Some(cs) = opts.chaos_seed {
        obs::progress(
            "repro",
            &format!(
                "chaos (seed {cs}): {} injected crash(es) recovered, {} ms backoff",
                chaos_stats.restarts, chaos_stats.backoff_ms
            ),
        );
    }
    obs::progress("repro", &format!("CSV series written to {}", opts.out.display()));

    // The causal event trace: exported as Chrome trace-event JSON for
    // Perfetto / chrome://tracing. Read-only like the metrics report.
    if let Some(path) = &opts.trace_json {
        let events = obs::trace::snapshot();
        let mut text = obs::trace::to_chrome_json(&events).pretty();
        text.push('\n');
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent).unwrap_or_else(|e| {
                    die(&format!("cannot create trace dir {}: {e}", parent.display()))
                });
            }
        }
        write_atomic(path, &text)
            .unwrap_or_else(|e| die(&format!("cannot write trace {}: {e}", path.display())));
        obs::progress(
            "repro",
            &format!("trace ({} events) written to {}", events.len(), path.display()),
        );
    }

    // The run report: built from the registry snapshot after all stages,
    // validated, then written/printed. Strictly read-only with respect to
    // the pipeline — artifacts and stdout above are already final.
    if opts.metrics_json.is_some() || opts.metrics_summary || opts.compare.is_some() {
        let report = build_report(&opts, &known, jobs, &timings, total.elapsed());
        if let Some(path) = &opts.metrics_json {
            emit_report(&report, path);
        }
        if opts.metrics_summary {
            eprint!("{}", report.summary_table());
        }
        if let Some(baseline) = &opts.compare {
            compare_with_baseline(&report, baseline.as_deref(), opts.metrics_json.as_deref());
        }
    }

    // `explain`: print the requested episode's causal timeline to stdout
    // (the only stdout this mode produces).
    if let Some(id) = &opts.explain {
        let events = obs::trace::snapshot();
        let timeline = obs::trace::parse_episode_id(id)
            .and_then(|(scope, idx)| obs::trace::explain(&events, &scope, idx));
        match timeline {
            Some(text) => print!("{text}"),
            None => {
                obs::progress("repro", &format!("episode '{id}' not found in this run's trace"));
                obs::progress("repro", "episodes available (scope: events, max index):");
                for (scope, n, max) in obs::trace::available_episodes(&events) {
                    obs::progress("repro", &format!("  {scope}: {n} event(s), ids 0..={max}"));
                }
                std::process::exit(1);
            }
        }
    }
}

/// The `DNSIMPACT_SCALE_HEAVY` level: 0 (unset) = smoke cells only,
/// 1 adds the 150k-attack scale, 2 (or `full`) adds 1.5M too.
fn heavy_level() -> u64 {
    match std::env::var("DNSIMPACT_SCALE_HEAVY").ok().as_deref() {
        None | Some("") | Some("0") => 0,
        Some("1") => 1,
        Some(_) => 2,
    }
}

/// `bench --scale-sweep`: run the scale×jobs grid, check the cross-jobs
/// fingerprints and the largest-scale speedup, and emit the validated
/// `dnsimpact-sweep/v1` report. Returns the process exit code.
/// One report in a committed `BENCH_`/`SWEEP_` series: the slot filename
/// plus the parsed document.
struct SeriesReport {
    name: String,
    doc: obs::Json,
}

/// Parse `PREFIX_<date>[_run<N>].json` back into its `(date, run)` slot
/// key — the inverse of `slot_path` (run 1 owns the suffix-less name).
/// `None` when the filename is not part of this report series.
fn parse_slot_name(name: &str, prefix: &str) -> Option<(String, u64)> {
    let stem = name.strip_prefix(prefix)?.strip_prefix('_')?.strip_suffix(".json")?;
    Some(match stem.split_once("_run") {
        Some((date, n)) => (date.to_string(), n.parse().unwrap_or(0)),
        None => (stem.to_string(), 1),
    })
}

/// Every `<prefix>_<date>[_run<N>].json` under `dir`, parsed and ordered
/// by `(date, same-day run)`. Unreadable or non-JSON files are reported
/// and skipped, not fatal — one corrupt historical report must not hide
/// the rest of the series.
fn collect_report_series(dir: &Path, prefix: &str) -> Vec<SeriesReport> {
    let Ok(entries) = std::fs::read_dir(dir) else { return Vec::new() };
    let mut found: Vec<((String, u64), SeriesReport)> = Vec::new();
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(key) = parse_slot_name(&name, prefix) else { continue };
        let path = entry.path();
        let doc = match std::fs::read_to_string(&path)
            .map_err(|e| e.to_string())
            .and_then(|t| obs::Json::parse(&t).map_err(|e| e.to_string()))
        {
            Ok(d) => d,
            Err(e) => {
                obs::progress("repro", &format!("trajectory: skipping {}: {e}", path.display()));
                continue;
            }
        };
        found.push((key, SeriesReport { name, doc }));
    }
    found.sort_by(|a, b| a.0.cmp(&b.0));
    found.into_iter().map(|(_, r)| r).collect()
}

/// Percent change of `cur` against a previous value, or `-` when there is
/// no meaningful baseline.
fn pct_change(cur: f64, prev: f64) -> String {
    if prev > 0.0 {
        format!("{:+.1}%", (cur - prev) / prev * 100.0)
    } else {
        "-".to_string()
    }
}

/// `bench --trajectory`: the committed report series as a time series.
/// Reads every `BENCH_*.json`, `SWEEP_*.json`, and `SUITE_*.json` under
/// `--out` (default `results/`), orders them by `(date, same-day run)`
/// parsed from the slot filename, and prints wall-clock, peak RSS, and
/// records-per-second across runs — how the harness's performance moved
/// over the repo's history. Returns the process exit code.
fn run_trajectory_cmd(opts: &Options) -> i32 {
    if !opts.bench {
        obs::progress("repro", "--trajectory is a bench mode: run `repro bench --trajectory`");
        return 2;
    }
    let dir = &opts.out;
    let benches = collect_report_series(dir, "BENCH");
    let sweeps = collect_report_series(dir, "SWEEP");
    let suites = collect_report_series(dir, "SUITE");
    if benches.is_empty() && sweeps.is_empty() && suites.is_empty() {
        obs::progress(
            "repro",
            &format!(
                "no BENCH_*.json, SWEEP_*.json, or SUITE_*.json reports under {}",
                dir.display()
            ),
        );
        return 2;
    }
    if !benches.is_empty() {
        println!("bench trajectory ({} report(s) under {}):", benches.len(), dir.display());
        println!(
            "  {:<28} {:>7} {:>5} {:>10} {:>8} {:>12} {:>8}",
            "report", "scale", "jobs", "wall_ms", "dwall", "peak_rss_kb", "drss"
        );
        let mut prev: Option<(f64, f64)> = None;
        for r in &benches {
            let meta = |k: &str| {
                r.doc
                    .get("meta")
                    .and_then(|m| m.get(k))
                    .and_then(|v| v.as_u64())
                    .map_or_else(|| "-".to_string(), |v| v.to_string())
            };
            let wall = r.doc.get("total_wall_ms").and_then(|v| v.as_f64());
            let rss = r.doc.get("peak_rss_kb").and_then(|v| v.as_f64());
            let (Some(wall), Some(rss)) = (wall, rss) else {
                println!("  {:<28} (missing total_wall_ms/peak_rss_kb; skipped)", r.name);
                continue;
            };
            let (dwall, drss) = match prev {
                Some((pw, pr)) => (pct_change(wall, pw), pct_change(rss, pr)),
                None => ("-".to_string(), "-".to_string()),
            };
            println!(
                "  {:<28} {:>7} {:>5} {:>10.1} {:>8} {:>12.0} {:>8}",
                r.name,
                meta("scale"),
                meta("jobs"),
                wall,
                dwall,
                rss,
                drss,
            );
            prev = Some((wall, rss));
        }
    }
    if !sweeps.is_empty() {
        if !benches.is_empty() {
            println!();
        }
        println!(
            "sweep trajectory ({} report(s) under {}; one row per scale x jobs cell):",
            sweeps.len(),
            dir.display()
        );
        println!(
            "  {:<28} {:>9} {:>5} {:>10} {:>12} {:>13} {:>8}",
            "report", "scale", "jobs", "wall_ms", "peak_rss_kb", "records/s", "dthru"
        );
        // Throughput deltas compare each cell against the same
        // (scale, jobs) cell of the previous report that had one.
        let mut prev: std::collections::HashMap<(u64, u64), f64> = std::collections::HashMap::new();
        for r in &sweeps {
            let Some(cells) = r.doc.get("cells").and_then(|c| c.as_array()) else {
                println!("  {:<28} (no cells array; skipped)", r.name);
                continue;
            };
            for cell in cells {
                let scale = cell.get("scale").and_then(|v| v.as_u64());
                let jobs = cell.get("jobs").and_then(|v| v.as_u64());
                let wall = cell.get("wall_ms").and_then(|v| v.as_f64());
                let rss = cell.get("peak_rss_kb").and_then(|v| v.as_f64());
                let rps = cell.get("records_per_sec").and_then(|v| v.as_f64());
                let (Some(scale), Some(jobs), Some(wall), Some(rss), Some(rps)) =
                    (scale, jobs, wall, rss, rps)
                else {
                    continue;
                };
                let dthru =
                    prev.get(&(scale, jobs)).map_or("-".to_string(), |p| pct_change(rps, *p));
                println!(
                    "  {:<28} {:>9} {:>5} {:>10.1} {:>12.0} {:>13.0} {:>8}",
                    r.name, scale, jobs, wall, rss, rps, dthru
                );
                prev.insert((scale, jobs), rps);
            }
        }
    }
    if !suites.is_empty() {
        if !benches.is_empty() || !sweeps.is_empty() {
            println!();
        }
        println!(
            "suite trajectory ({} report(s) under {}; one row per Suite A cell):",
            suites.len(),
            dir.display()
        );
        println!(
            "  {:<28} {:<24} {:>10} {:>12} {:>13} {:>8}",
            "report", "cell", "wall_ms", "peak_rss_kb", "records/s", "dthru"
        );
        // Throughput deltas compare each cell against the same-labelled
        // cell of the previous suite report that had one.
        let mut prev: std::collections::HashMap<String, f64> = std::collections::HashMap::new();
        for r in &suites {
            let Some(cells) = r.doc.get("suite_a").and_then(|c| c.as_array()) else {
                println!("  {:<28} (no suite_a array; skipped)", r.name);
                continue;
            };
            for cell in cells {
                let label = cell.get("cell").and_then(|v| v.as_str());
                let wall = cell.get("wall_ms").and_then(|v| v.as_f64());
                let rss = cell.get("peak_rss_kb").and_then(|v| v.as_f64());
                let rps = cell.get("records_per_sec").and_then(|v| v.as_f64());
                let (Some(label), Some(wall), Some(rss), Some(rps)) = (label, wall, rss, rps)
                else {
                    continue;
                };
                let dthru = prev.get(label).map_or("-".to_string(), |p| pct_change(rps, *p));
                println!(
                    "  {:<28} {:<24} {:>10.1} {:>12.0} {:>13.0} {:>8}",
                    r.name, label, wall, rss, rps, dthru
                );
                prev.insert(label.to_string(), rps);
            }
        }
    }
    0
}

fn run_scale_sweep_cmd(opts: &Options) -> i32 {
    if !opts.bench {
        obs::progress("repro", "--scale-sweep is a bench mode: run `repro bench --scale-sweep`");
        return 2;
    }
    let heavy = heavy_level();
    let mut scales: Vec<u64> = vec![1_500, 15_000];
    if heavy >= 1 {
        scales.push(150_000);
    }
    if heavy >= 2 {
        scales.push(1_500_000);
    }
    // jobs=N: the machine's parallelism when it has any; on a single-CPU
    // host fall back to an 8-thread cell — no speedup to measure there,
    // but the sharded path and its cross-jobs fingerprint check still run
    // with real thread interleaving.
    let parallelism = streamproc::effective_jobs(opts.jobs);
    let jobs_n = if parallelism > 1 { parallelism } else { 8 };
    let jobs = vec![1, jobs_n];
    obs::progress(
        "repro",
        &format!(
            "scale sweep: scales {scales:?} x jobs {jobs:?} (seed {}, chaos {}, heavy {heavy})",
            opts.seed,
            opts.chaos_seed.map_or("off".to_string(), |c| c.to_string()),
        ),
    );
    let cfg = bench_support::SweepConfig {
        seed: opts.seed,
        chaos_seed: opts.chaos_seed,
        scales,
        jobs,
        world_cfg: WorldConfig::default(),
        heavy,
    };
    let report = match bench_support::run_scale_sweep(&cfg) {
        Ok(r) => r,
        Err(e) => {
            obs::progress("repro", &format!("scale sweep failed: {e}"));
            return 1;
        }
    };
    // Speedup sanity: the largest scale is where parallelism must pay —
    // a jobs=N cell no faster than jobs=1 there means the hot path
    // regressed to sequential. Only meaningful where the machine has
    // real parallelism; a 1-CPU host can't speed anything up.
    if let Some(last) = report.cells.last() {
        if parallelism > 1 && last.jobs > 1 && last.speedup_vs_jobs1 <= 1.0 {
            obs::progress(
                "repro",
                &format!(
                    "scale sweep: no speedup at scale {} jobs {} ({:.2}x <= 1.00x)",
                    last.scale, last.jobs, last.speedup_vs_jobs1
                ),
            );
            return 1;
        }
    }
    let doc = report.to_json();
    if let Err(errors) = obs::sweep::validate(&doc) {
        for e in &errors {
            obs::progress("repro", &format!("sweep violation: {e}"));
        }
        obs::progress("repro", "refusing to write invalid sweep report");
        return 1;
    }
    std::fs::create_dir_all(&opts.out).unwrap_or_else(|e| {
        die(&format!("cannot create sweep out dir {}: {e}", opts.out.display()))
    });
    let (_, path) = next_slot(&opts.out, "SWEEP", &obs::report::today_utc());
    write_atomic(&path, &doc.pretty())
        .unwrap_or_else(|e| die(&format!("cannot write sweep report {}: {e}", path.display())));
    eprint!("{}", report.summary_table());
    obs::progress("repro", &format!("sweep report written to {}", path.display()));
    0
}

/// `bench --suite`: run the process-based Suite A/B orchestrator
/// (`bench_support::run_suite`), validate the resulting
/// `dnsimpact-suite/v1` document, commit it to
/// `SUITE_<date>[_runN].json` under `--out`, and print the per-cell
/// summary + verdict table to stderr. Exit 0 only when every verdict
/// passed; 1 on a failed verdict or an orchestration error. Returns the
/// process exit code.
fn run_suite_cmd(opts: &Options) -> i32 {
    if !opts.bench {
        obs::progress("repro", "--suite is a bench mode: run `repro bench --suite A|B|all`");
        return 2;
    }
    let sel = opts.suite.expect("dispatched on opts.suite.is_some()");
    let scratch = std::env::temp_dir().join(format!("repro-suite-{}", std::process::id()));
    obs::progress(
        "repro",
        &format!("suite {} (seed {}, scratch {})", sel.label(), opts.seed, scratch.display()),
    );
    let cfg = bench_support::SuiteRunConfig { seed: opts.seed, sel, scratch: scratch.clone() };
    let result = bench_support::run_suite(&cfg);
    // The scratch dir only holds child reports/CSVs already folded into
    // the suite report (or abandoned by a failure) — always clean it.
    let _ = std::fs::remove_dir_all(&scratch);
    let report = match result {
        Ok(r) => r,
        Err(e) => {
            obs::progress("repro", &format!("suite failed: {e}"));
            return 1;
        }
    };
    let doc = report.to_json();
    if let Err(errors) = obs::suite::validate(&doc) {
        for e in &errors {
            obs::progress("repro", &format!("suite violation: {e}"));
        }
        obs::progress("repro", "refusing to write invalid suite report");
        return 1;
    }
    std::fs::create_dir_all(&opts.out).unwrap_or_else(|e| {
        die(&format!("cannot create suite out dir {}: {e}", opts.out.display()))
    });
    let (_, path) = next_slot(&opts.out, "SUITE", &obs::report::today_utc());
    write_atomic(&path, &doc.pretty())
        .unwrap_or_else(|e| die(&format!("cannot write suite report {}: {e}", path.display())));
    eprint!("{}", report.summary_table());
    obs::progress("repro", &format!("suite report written to {}", path.display()));
    if report.all_pass() {
        0
    } else {
        obs::progress("repro", "suite verdicts include failures");
        1
    }
}

/// `bench --compare`: diff the fresh report against a baseline (explicit,
/// or the newest other `results/BENCH_*.json`). Failures exit 1.
fn compare_with_baseline(report: &obs::RunReport, explicit: Option<&Path>, current: Option<&Path>) {
    let baseline = match explicit {
        Some(p) => p.to_path_buf(),
        None => match latest_bench_report(Path::new("results"), current) {
            Some(p) => p,
            None => {
                obs::progress(
                    "repro",
                    "no baseline BENCH_*.json found in results/; comparison skipped",
                );
                return;
            }
        },
    };
    let doc = match std::fs::read_to_string(&baseline)
        .map_err(|e| e.to_string())
        .and_then(|t| obs::Json::parse(&t).map_err(|e| e.to_string()))
    {
        Ok(d) => d,
        Err(e) => {
            obs::progress("repro", &format!("cannot load baseline {}: {e}", baseline.display()));
            std::process::exit(2);
        }
    };
    let (failures, warnings) = obs::report::compare_reports(&report.to_json(), &doc);
    for w in &warnings {
        obs::progress("repro", &format!("bench compare: {w}"));
    }
    if failures.is_empty() {
        obs::progress(
            "repro",
            &format!(
                "no regressions vs baseline {} ({} warning(s))",
                baseline.display(),
                warnings.len()
            ),
        );
    } else {
        for f in &failures {
            obs::progress("repro", &format!("bench regression: {f}"));
        }
        obs::progress(
            "repro",
            &format!("{} regression(s) vs baseline {}", failures.len(), baseline.display()),
        );
        std::process::exit(1);
    }
}

/// The newest `BENCH_*.json` in `dir`, excluding `current` (the file this
/// run is writing). "Newest" orders by `(date, same-day run counter)`
/// parsed from the `BENCH_<date>[_run<N>].json` name.
fn latest_bench_report(dir: &Path, current: Option<&Path>) -> Option<PathBuf> {
    let entries = std::fs::read_dir(dir).ok()?;
    let mut best: Option<((String, u64), PathBuf)> = None;
    for entry in entries.flatten() {
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(key) = parse_slot_name(&name, "BENCH") else {
            continue;
        };
        let path = entry.path();
        if current.is_some_and(|c| c == path.as_path()) {
            continue;
        }
        if best.as_ref().is_none_or(|(k, _)| *k < key) {
            best = Some((key, path));
        }
    }
    best.map(|(_, p)| p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_names_parse_back_to_their_keys() {
        assert_eq!(
            parse_slot_name("BENCH_2026-08-05.json", "BENCH"),
            Some(("2026-08-05".to_string(), 1))
        );
        assert_eq!(
            parse_slot_name("BENCH_2026-08-05_run3.json", "BENCH"),
            Some(("2026-08-05".to_string(), 3))
        );
        assert_eq!(parse_slot_name("SWEEP_2026-08-08.json", "BENCH"), None);
        assert_eq!(parse_slot_name("BENCH_2026-08-05.json.bak", "BENCH"), None);
        assert_eq!(parse_slot_name("BENCHMARK_2026-08-05.json", "BENCH"), None);
        assert_eq!(
            parse_slot_name("SUITE_2026-08-08.json", "SUITE"),
            Some(("2026-08-08".to_string(), 1))
        );
        assert_eq!(
            parse_slot_name("SUITE_2026-08-08_run2.json", "SUITE"),
            Some(("2026-08-08".to_string(), 2))
        );
    }

    #[test]
    fn slot_name_parser_survives_hostile_names() {
        // No underscore after the prefix, no .json suffix, empty stem,
        // prefix alone — all rejected rather than panicking.
        assert_eq!(parse_slot_name("SUITE", "SUITE"), None);
        assert_eq!(parse_slot_name("SUITE_", "SUITE"), None);
        assert_eq!(parse_slot_name("SUITE.json", "SUITE"), None);
        assert_eq!(parse_slot_name("SUITE2026-08-08.json", "SUITE"), None);
        assert_eq!(parse_slot_name("", "SUITE"), None);
        // An empty date stem parses (the series collector just orders
        // it first); a malformed run counter falls back to 0 so the file
        // still sorts ahead of the real run-1 slot instead of vanishing.
        assert_eq!(parse_slot_name("SUITE_.json", "SUITE"), Some((String::new(), 1)));
        assert_eq!(
            parse_slot_name("SUITE_2026-08-08_runX.json", "SUITE"),
            Some(("2026-08-08".to_string(), 0))
        );
    }

    #[test]
    fn slot_names_round_trip_with_the_writer() {
        for run in [1u64, 2, 7, 12] {
            let path = slot_path(Path::new("results"), "SWEEP", "2026-08-08", run);
            let name = path.file_name().unwrap().to_string_lossy().into_owned();
            assert_eq!(parse_slot_name(&name, "SWEEP"), Some(("2026-08-08".to_string(), run)));
        }
    }

    #[test]
    fn report_series_orders_by_date_then_same_day_run() {
        let dir =
            std::env::temp_dir().join(format!("repro-trajectory-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let write = |name: &str, wall: u32| {
            std::fs::write(
                dir.join(name),
                format!("{{\"total_wall_ms\": {wall}, \"peak_rss_kb\": 1}}"),
            )
            .unwrap();
        };
        write("BENCH_2026-08-08.json", 3);
        write("BENCH_2026-08-05_run2.json", 2);
        write("BENCH_2026-08-05.json", 1);
        std::fs::write(dir.join("BENCH_2026-08-06.json"), "not json").unwrap();
        std::fs::write(dir.join("SWEEP_2026-08-05.json"), "{}").unwrap();
        let series = collect_report_series(&dir, "BENCH");
        let names: Vec<&str> = series.iter().map(|r| r.name.as_str()).collect();
        // The corrupt 2026-08-06 report is skipped; the rest sort by
        // (date, run), with same-day runs after the suffix-less run 1.
        assert_eq!(
            names,
            ["BENCH_2026-08-05.json", "BENCH_2026-08-05_run2.json", "BENCH_2026-08-08.json"]
        );
        let walls: Vec<u64> = series
            .iter()
            .map(|r| r.doc.get("total_wall_ms").and_then(|v| v.as_u64()).unwrap())
            .collect();
        assert_eq!(walls, [1, 2, 3]);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
