//! The reproduction harness: regenerates every table and figure of the
//! paper's evaluation from the simulation, printing paper-style tables and
//! writing CSV series to `results/`.
//!
//! ```text
//! repro [--seed N] [--scale D] [--out DIR] [EXPERIMENT...]
//!
//! EXPERIMENT ∈ { table1 table2 table3 table4 table5 table6
//!                fig2 fig3 fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
//!                russia futurework ablate all }      (default: all)
//! ```
//!
//! `--scale D` divides the paper's monthly attack volumes by `D`
//! (default 40; `--scale 1` reproduces the full 4M-attack feed).

use bench_support::{
    ablate_baseline, fig10, fig11, fig12, fig13, fig5, fig6, fig7, fig8, fig9, run_experiments,
    table1, table3, table4, table5, table6, Artifact, Experiments,
};
use dnsimpact_core::casestudy::TimePoint;
use dnsimpact_core::report::{render_csv, render_table, write_output};
use reactive::ReactivePlatform;
use scenarios::{
    correlate_messages, osint, MilRuScenario, PaperScale, RdzScenario, TransIpScenario,
    WorldConfig,
};
use simcore::rng::RngFactory;
use simcore::time::SimDuration;
use std::path::{Path, PathBuf};
use std::sync::Arc;

struct Options {
    seed: u64,
    scale: u32,
    out: PathBuf,
    experiments: Vec<String>,
}

fn parse_args() -> Options {
    let mut opts = Options {
        seed: 42,
        scale: 40,
        out: PathBuf::from("results"),
        experiments: Vec::new(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--seed" => opts.seed = args.next().expect("--seed N").parse().expect("seed"),
            "--scale" => opts.scale = args.next().expect("--scale D").parse().expect("scale"),
            "--out" => opts.out = PathBuf::from(args.next().expect("--out DIR")),
            "--help" | "-h" => {
                println!("repro [--seed N] [--scale D] [--out DIR] [EXPERIMENT...]");
                println!("run `repro --list` for the experiment catalog");
                std::process::exit(0);
            }
            "--list" => {
                for (id, what) in [
                    ("table1", "RSDoS dataset summary"),
                    ("table2", "TransIP per-nameserver attack metrics"),
                    ("table3", "monthly attack activity (DNS vs other)"),
                    ("table4", "top 10 attacked ASNs"),
                    ("table5", "top 10 attacked IPs"),
                    ("table6", "most affected companies by RTT increase"),
                    ("fig2", "TransIP RTT time series"),
                    ("fig3", "TransIP March timeout shares"),
                    ("fig5", "potentially affected domains per month"),
                    ("fig6", "protocol/port distribution (+§6.3.1 contrast)"),
                    ("fig7", "resolution failures vs measured domains"),
                    ("fig8", "RTT impact vs hosted-domain count"),
                    ("fig9", "intensity vs impact correlation"),
                    ("fig10", "duration vs impact correlation"),
                    ("fig11", "anycast efficacy"),
                    ("fig12", "AS diversity efficacy"),
                    ("fig13", "/24 prefix diversity efficacy"),
                    ("russia", "mil.ru + RDZ reactive probing and OSINT correlation"),
                    ("futurework", "§9 multi-vantage probing vs anycast masking"),
                    ("ablate", "§4.1 day-before vs week-before baseline"),
                ] {
                    println!("{id:<12} {what}");
                }
                std::process::exit(0);
            }
            other => opts.experiments.push(other.to_string()),
        }
    }
    if opts.experiments.is_empty() || opts.experiments.iter().any(|e| e == "all") {
        opts.experiments = [
            "table1", "table2", "table3", "table4", "table5", "table6", "fig2", "fig3", "fig5",
            "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "russia",
            "futurework", "ablate",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
    }
    opts
}

fn emit(out: &Path, a: &Artifact) {
    println!("=== {} ===\n{}\n", a.title, a.text);
    write_output(out, &format!("{}.csv", a.id), &a.csv).expect("write results");
    // Maintain an index of everything written this run.
    let line = format!("- `{}.csv` — {}\n", a.id, a.title);
    let index = out.join("INDEX.md");
    let mut existing = std::fs::read_to_string(&index).unwrap_or_else(|_| {
        "# results index\n\nCSV series produced by the `repro` harness.\n\n".into()
    });
    if !existing.contains(&line) {
        existing.push_str(&line);
        let _ = std::fs::write(&index, existing);
    }
}

fn timeseries_artifact(id: &'static str, title: &str, series: &[TimePoint]) -> Artifact {
    let headers = ["window", "time", "domains", "avg_rtt_ms", "timeout_share", "failure_share"];
    let rows: Vec<Vec<String>> = series
        .iter()
        .map(|p| {
            vec![
                p.window.0.to_string(),
                p.window.start().to_string(),
                p.domains.to_string(),
                format!("{:.2}", p.avg_rtt_ms),
                format!("{:.4}", p.timeout_share),
                format!("{:.4}", p.failure_share),
            ]
        })
        .collect();
    // The stdout rendering shows an hourly summary; full resolution goes
    // to the CSV.
    let mut hourly: Vec<Vec<String>> = Vec::new();
    for chunk in series.chunks(12) {
        let domains: u64 = chunk.iter().map(|p| p.domains).sum();
        if domains == 0 {
            continue;
        }
        let rtt = chunk.iter().map(|p| p.avg_rtt_ms * p.domains as f64).sum::<f64>()
            / domains as f64;
        let to = chunk.iter().map(|p| p.timeout_share * p.domains as f64).sum::<f64>()
            / domains as f64;
        hourly.push(vec![
            chunk[0].window.start().to_string(),
            domains.to_string(),
            format!("{rtt:.1}"),
            format!("{:.1}%", to * 100.0),
        ]);
    }
    Artifact {
        id,
        title: title.into(),
        text: render_table(&["hour", "domains", "avg_rtt_ms", "timeout_share"], &hourly),
        csv: render_csv(&headers, &rows),
    }
}

fn run_transip(out: &Path, seed: u64) {
    let rngs = RngFactory::new(seed);
    let sc = TransIpScenario::build(&rngs);
    let feed = sc.feed(&rngs);
    let loads = sc.load_book();

    // Table 2.
    let headers = ["Attack", "NS", "Observed PPM", "Inferred volume (Gbps)", "Attacker IPs", "Duration (min)"];
    let mut rows = Vec::new();
    for (attack, range) in [("December 2020", sc.dec_range), ("March 2021", sc.mar_range)] {
        for m in sc.table2(&feed, range).into_iter().flatten() {
            rows.push(vec![
                attack.to_string(),
                m.label.clone(),
                format!("{:.0}", m.observed_ppm),
                format!("{:.2}", m.inferred_gbps),
                dnsimpact_core::report::fmt_count(m.attacker_ips),
                format!("{:.0}", m.duration_min),
            ]);
        }
    }
    emit(
        out,
        &Artifact {
            id: "table2",
            title: "Table 2: TransIP attack metrics (telescope-inferred)".into(),
            text: render_table(&headers, &rows),
            csv: render_csv(&headers, &rows),
        },
    );

    // Figures 2 and 3.
    let dec = sc.measure_series(sc.dec_range.0, sc.dec_range.1, &loads, &rngs);
    emit(
        out,
        &timeseries_artifact(
            "fig2",
            "Figure 2: RTT around the TransIP attacks (December window)",
            &dec,
        ),
    );
    let mar = sc.measure_series(sc.mar_range.0, sc.mar_range.1, &loads, &rngs);
    emit(
        out,
        &timeseries_artifact(
            "fig3",
            "Figure 3: timeout errors during the March 2021 TransIP attack",
            &mar,
        ),
    );
}

fn run_russia(out: &Path, seed: u64) {
    let rngs = RngFactory::new(seed);

    // mil.ru: reactive probing through the attack.
    let mil = MilRuScenario::build(&rngs);
    let feed = mil.feed(&rngs);
    let loads = mil.load_book();
    let infra = Arc::new(mil.infra);
    let platform = ReactivePlatform::default();
    // Execute three days of probing per victim (864 rounds) to keep the
    // run bounded while covering the blackout onset.
    let reports = platform.run(&infra, &feed.records, &loads, &rngs, 864);
    let headers = ["victim", "rounds", "unresolvable_rounds", "first_round", "recovered_by_probe_end"];
    let rows: Vec<Vec<String>> = reports
        .iter()
        .map(|r| {
            vec![
                r.plan.victim.to_string(),
                r.rounds.len().to_string(),
                r.unresolvable_rounds().to_string(),
                r.plan.start.to_string(),
                r.recovery_after(mil.blackout.1).map(|t| t.to_string()).unwrap_or("no".into()),
            ]
        })
        .collect();
    emit(
        out,
        &Artifact {
            id: "russia_milru",
            title: "§5.2.1: mil.ru reactive probing (blackout March 12–16)".into(),
            text: render_table(&headers, &rows),
            csv: render_csv(&headers, &rows),
        },
    );

    // RDZ: recovery timing + OSINT correlation.
    let rdz = RdzScenario::build(&rngs);
    let rdz_feed = rdz.feed(&rngs);
    let rdz_loads = rdz.load_book();
    let rdz_infra = Arc::new(rdz.infra);
    let reports = platform.run(&rdz_infra, &rdz_feed.records, &rdz_loads, &rngs, 200);
    let mut rows = Vec::new();
    for r in &reports {
        rows.push(vec![
            r.plan.victim.to_string(),
            r.unresolvable_rounds().to_string(),
            r.recovery_after(rdz.visible_span.1)
                .map(|t| t.to_string())
                .unwrap_or("not within probe horizon".into()),
        ]);
    }
    let log = osint::rdz_channel_log(&rdz.addrs);
    let matches = correlate_messages(&log, &rdz_feed.episodes, SimDuration::from_mins(30));
    let mut text = render_table(&["victim", "unresolvable_rounds", "recovery"], &rows);
    text.push_str("\nOSINT correlation (Figure 4 substitute):\n");
    for m in &matches {
        let msg = &log[m.message_idx];
        let ep = &rdz_feed.episodes[m.episode_idx];
        text.push_str(&format!(
            "  message {:?} at {} ↔ attack on {} starting {} (lag {} min)\n",
            msg.channel,
            msg.at,
            ep.victim,
            ep.first_window.start(),
            m.lag_secs / 60,
        ));
    }
    emit(
        out,
        &Artifact {
            id: "russia_rdz",
            title: "§5.2.2: RDZ railways reactive probing + coordination-channel correlation"
                .into(),
            text,
            csv: render_csv(&["victim", "unresolvable_rounds", "recovery"], &rows),
        },
    );
}

/// §9 future work: multi-vantage probing vs the anycast catchment mask.
fn run_futurework(out: &Path, seed: u64) {
    use dnsimpact_core::report::fmt_pct;
    use reactive::{probe_from_fleet, VantagePoint};
    use scenarios::world::{self, WorldConfig};

    let rngs = RngFactory::new(seed);
    let built = world::build(
        &WorldConfig { providers: 30, domains: 10_000, ..WorldConfig::default() },
        &rngs,
    );
    // Attack every *anycast* provider's nameservers with an aggregate rate
    // that is devastating regionally but survivable at a uniform catchment.
    let mut loads = dnssim::LoadBook::new();
    let at = simcore::time::SimTime::from_days(10);
    let mut targets = Vec::new();
    for n in built.infra.nameservers() {
        if n.deployment.is_anycast() && !n.open_resolver {
            loads.add(n.addr, at.window(), n.capacity_pps * 12.0);
            targets.push(n.id);
        }
    }
    let single = VantagePoint::single_nl();
    let fleet = VantagePoint::default_fleet();
    let mut rng = rngs.stream("futurework");
    let mut single_detects = 0u64;
    let mut fleet_detects = 0u64;
    let mut probed = 0u64;
    for &set in &built.provider_nssets {
        let (any, total) = built.infra.nsset_anycast(set);
        if any != total || total == 0 {
            continue;
        }
        let Some(&d) = built.infra.domains_of_nsset(set).first() else { continue };
        for _ in 0..20 {
            probed += 1;
            let sv = probe_from_fleet(&single, &built.infra, d, at, &loads, &mut rng);
            if sv.probes[0].1.responsive_ns() < sv.probes[0].1.outcomes.len() {
                single_detects += 1;
            }
            let mv = probe_from_fleet(&fleet, &built.infra, d, at, &loads, &mut rng);
            if mv.worst_ns_share() < 1.0 {
                fleet_detects += 1;
            }
        }
    }
    let headers = ["probes", "single-vantage detections", "5-vantage detections"];
    let rows = vec![vec![
        probed.to_string(),
        format!("{single_detects} ({})", fmt_pct(single_detects as f64 / probed.max(1) as f64)),
        format!("{fleet_detects} ({})", fmt_pct(fleet_detects as f64 / probed.max(1) as f64)),
    ]];
    emit(
        out,
        &Artifact {
            id: "futurework",
            title: "§9 future work: multi-vantage probing pierces the anycast catchment mask"
                .into(),
            text: render_table(&headers, &rows),
            csv: render_csv(&headers, &rows),
        },
    );
}

fn main() {
    let opts = parse_args();
    let needs_longitudinal = opts.experiments.iter().any(|e| {
        matches!(
            e.as_str(),
            "table1" | "table3" | "table4" | "table5" | "table6" | "fig5" | "fig6" | "fig7"
                | "fig8" | "fig9" | "fig10" | "fig11" | "fig12" | "fig13" | "ablate"
        )
    });
    let ex: Option<Experiments> = needs_longitudinal.then(|| {
        eprintln!(
            "[repro] running longitudinal pipeline (seed {}, scale 1/{}) ...",
            opts.seed, opts.scale
        );
        run_experiments(
            opts.seed,
            PaperScale { divisor: opts.scale },
            &WorldConfig::default(),
        )
    });
    let mut transip_done = false;
    for e in &opts.experiments {
        match (e.as_str(), &ex) {
            ("table1", Some(ex)) => emit(&opts.out, &table1(ex)),
            ("table3", Some(ex)) => emit(&opts.out, &table3(ex)),
            ("table4", Some(ex)) => emit(&opts.out, &table4(ex)),
            ("table5", Some(ex)) => emit(&opts.out, &table5(ex)),
            ("table6", Some(ex)) => emit(&opts.out, &table6(ex)),
            ("fig5", Some(ex)) => emit(&opts.out, &fig5(ex)),
            ("fig6", Some(ex)) => emit(&opts.out, &fig6(ex)),
            ("fig7", Some(ex)) => emit(&opts.out, &fig7(ex)),
            ("fig8", Some(ex)) => emit(&opts.out, &fig8(ex)),
            ("fig9", Some(ex)) => emit(&opts.out, &fig9(ex)),
            ("fig10", Some(ex)) => emit(&opts.out, &fig10(ex)),
            ("fig11", Some(ex)) => emit(&opts.out, &fig11(ex)),
            ("fig12", Some(ex)) => emit(&opts.out, &fig12(ex)),
            ("fig13", Some(ex)) => emit(&opts.out, &fig13(ex)),
            ("ablate", Some(ex)) => emit(&opts.out, &ablate_baseline(ex)),
            ("table2" | "fig2" | "fig3", _) => {
                // The three TransIP experiments share one scenario run.
                if !transip_done {
                    run_transip(&opts.out, opts.seed);
                    transip_done = true;
                }
            }
            ("russia", _) => run_russia(&opts.out, opts.seed),
            ("futurework", _) => run_futurework(&opts.out, opts.seed),
            (other, _) => eprintln!("[repro] unknown experiment '{other}' (skipped)"),
        }
    }
    eprintln!("[repro] CSV series written to {}", opts.out.display());
}
