//! The daemon's deterministic feed source.
//!
//! A real deployment would tail the RSDoS feed and the OpenINTEL daily
//! dumps from a broker; here the feed is regenerated from the pinned
//! synthetic world, which is what makes "checkpoint + feed replay" a
//! complete recovery story: the retained feed prefix is always available,
//! byte-identical, at restart.
//!
//! The source emits [`FeedBatch`]es — sequence-numbered, clock-stamped
//! groups of records ordered by *arrival* time:
//!
//! - [`FeedRecord::Episode`]: an RSDoS attack episode from the telescope.
//!   Arrival is the episode's last window's close, except inside a
//!   [`FeedGapModel`] gap, where the collector is down and the backlog
//!   arrives when the gap closes (or is lost outright).
//! - [`FeedRecord::DayBaseline`]: the OpenINTEL daily aggregate for an
//!   NSSet (expected RTT over the day's scheduled measurements), arriving
//!   at the end of its day — unless the [`OutageModel`] missed the day,
//!   in which case it is never emitted and consumers must degrade to the
//!   week-before baseline.
//! - [`FeedRecord::AttackObs`]: the during-attack aggregate for one
//!   (episode, NSSet) join, arriving at the attack's last window's close.
//!
//! Every batch carries the feed `clock` (sim time reached) and the data
//! `horizon` (the last window through which the telescope feed is
//! complete). During a gap the clock advances on empty "tick" batches
//! while the horizon stalls — that growing spread is exactly the
//! staleness the serving layer must report instead of hiding.

use attack::AttackScheduler;
use dnsimpact_core::columnar::JoinTable;
use dnssim::{Infra, LoadBook, NsSetId, Resolver};
use openintel::{expected_outcome, OutageModel, SweepSchedule};
use scenarios::{
    divisor_for_target, paper_longitudinal_config, world, BuiltWorld, PaperScale, WorldConfig,
};
use simcore::rng::RngFactory;
use simcore::time::{SimTime, Window, WINDOWS_PER_DAY, WINDOW_SECS};
use std::collections::{BTreeMap, BTreeSet};
use telescope::{
    AttackEpisode, BackscatterSampler, Darknet, EpisodeColumns, FeedGapModel, RsdosClassifier,
    RsdosRecord,
};

/// Identity and shape of the daemon's feed. Every field participates in
/// the determinism contract: two sources built from equal configs emit
/// byte-identical batch streams.
#[derive(Clone, Debug)]
pub struct FeedConfig {
    pub seed: u64,
    /// `PaperScale` divisor (see [`divisor_for_target`]).
    pub divisor: u32,
    /// Truncate the paper's 17-month interval to the first `months`
    /// (0 = full interval). Small values keep tests fast.
    pub months: usize,
    pub world: WorldConfig,
    /// Telescope gap schedule (seed + shape).
    pub gap_seed: u64,
    pub gap_prob: f64,
    pub max_gap_windows: u32,
    /// Fraction of in-gap episodes lost outright (the rest arrive late).
    pub loss_frac: f64,
    /// OpenINTEL sensor-outage schedule.
    pub outage_seed: u64,
    pub outage_prob: f64,
    /// Batch shape: cut after this many records …
    pub batch_records: usize,
    /// … or once the batch spans this many 5-minute windows of clock.
    pub batch_windows: u64,
}

impl FeedConfig {
    /// The pinned serving feed the CI gate and the perf snapshot run on:
    /// the paper catalog scaled to `scale_target` attacks, with the
    /// calibrated gap/outage schedules.
    pub fn pinned(scale_target: u64) -> FeedConfig {
        FeedConfig {
            seed: 42,
            divisor: divisor_for_target(scale_target),
            months: 0,
            world: WorldConfig::default(),
            gap_seed: 5,
            gap_prob: 0.25,
            max_gap_windows: 24,
            loss_frac: 0.1,
            outage_seed: 6,
            outage_prob: 0.05,
            batch_records: 64,
            batch_windows: 12,
        }
    }
}

/// One feed record. See the module docs for arrival semantics.
#[derive(Clone, Debug)]
pub enum FeedRecord {
    Episode(AttackEpisode),
    DayBaseline {
        nsset: NsSetId,
        day: u64,
        avg_rtt_ms: f64,
        domains_measured: u64,
    },
    AttackObs {
        nsset: NsSetId,
        first_window: Window,
        last_window: Window,
        avg_rtt_ms: f64,
        domains_measured: u64,
    },
}

/// A sequence-numbered ingest unit. Batches apply strictly in `seq`
/// order; the served index after batch `k` is a pure function of batches
/// `0..=k`.
#[derive(Clone, Debug)]
pub struct FeedBatch {
    pub seq: u64,
    /// Feed time reached once this batch is applied.
    pub clock: SimTime,
    /// Last window through which the telescope feed is complete at
    /// `clock`. `clock - horizon.end()` is the staleness the daemon must
    /// report.
    pub horizon: Window,
    pub records: Vec<FeedRecord>,
}

/// The built feed: the world it describes plus the full batch schedule.
pub struct FeedSource {
    pub world: BuiltWorld,
    pub batches: Vec<FeedBatch>,
    pub total_records: u64,
    pub episodes_emitted: u64,
    pub episodes_lost: u64,
    pub baselines_suppressed: u64,
}

/// The last complete telescope window at instant `clock`: normally the
/// window that just closed, but while the collector is down (or until a
/// closed gap's backlog has arrived) completeness stalls at the window
/// before the gap opened.
pub fn horizon_at(gap: &FeedGapModel, clock: SimTime) -> Window {
    let mut h = (clock.secs() / WINDOW_SECS).saturating_sub(1);
    while h > 0 && gap.in_gap(Window(h)) && gap.arrival_of(Window(h)).secs() > clock.secs() {
        h -= 1;
    }
    Window(h)
}

/// Internal: one arrival-ordered event. `rank` breaks same-instant ties
/// deterministically (baselines land before the attack observations that
/// may consume them; ticks last).
struct Ev {
    at: SimTime,
    rank: u8,
    idx: u64,
    rec: Option<FeedRecord>,
}

/// Expected-RTT aggregate for `nsset` over `[first, last]`, weighted by
/// how many of its domains the daily sweep schedules into each window —
/// the same weighting the batch pipeline's Equation 1 uses. Returns
/// `(avg_rtt_ms, domains_measured)`; `domains_measured == 0` means the
/// sweep never touched the span.
fn span_aggregate(
    infra: &Infra,
    schedule: &SweepSchedule,
    resolver: &Resolver,
    nsset: NsSetId,
    first: Window,
    last: Window,
    loads: &LoadBook,
) -> (f64, u64) {
    let mut counts: BTreeMap<u64, u64> = BTreeMap::new();
    for &d in infra.domains_of_nsset(nsset) {
        let wod = schedule.window_of_day(d);
        let base = first.0 - first.0 % WINDOWS_PER_DAY;
        let mut w = base + wod;
        if w < first.0 {
            w += WINDOWS_PER_DAY;
        }
        while w <= last.0 {
            *counts.entry(w).or_default() += 1;
            w += WINDOWS_PER_DAY;
        }
    }
    let mut num = 0.0;
    let mut n = 0u64;
    for (&w, &c) in &counts {
        let e = expected_outcome(infra, resolver, nsset, Window(w), loads);
        num += e.expected_rtt_ms * c as f64;
        n += c;
    }
    if n == 0 {
        (0.0, 0)
    } else {
        (num / n as f64, n)
    }
}

/// Build the feed. `jobs` parallelizes the build-time join that decides
/// which aggregates OpenINTEL would have produced; the emitted batch
/// stream is byte-identical for any value.
pub fn build(cfg: &FeedConfig, jobs: usize) -> FeedSource {
    let rngs = RngFactory::new(cfg.seed);
    let built = world::build(&cfg.world, &rngs);

    let mut schedule_cfg = paper_longitudinal_config(PaperScale { divisor: cfg.divisor });
    if cfg.months > 0 && cfg.months < schedule_cfg.months.len() {
        schedule_cfg.months.truncate(cfg.months);
        schedule_cfg.attacks_per_month.truncate(cfg.months);
        schedule_cfg.dns_share_per_month.truncate(cfg.months);
    }
    let attacks = AttackScheduler::new(schedule_cfg).generate(&built.target_pool(), &rngs);
    let mut loads = LoadBook::new();
    for (addr, w, pps) in attack::accumulate_windows(&attacks) {
        loads.add(addr, w, pps);
    }

    // Telescope view → episode stream (same chain as the batch pipeline).
    let darknet = Darknet::ucsd_like();
    let sampler = BackscatterSampler::new(&darknet);
    let observations = sampler.sample(&attacks, &rngs);
    let classifier = RsdosClassifier::new(telescope::RsdosThresholds::default());
    // Arena-block feed path: qualifying records pack into one shared
    // buffer and episodes decode straight out of it (held identical to
    // the row path by telescope's differential tests).
    let record_block = classifier.classify_into_block(&observations);
    let episodes = classifier.episodes_from_block(&record_block);

    let gap =
        FeedGapModel::from_seed(cfg.gap_seed, cfg.gap_prob, cfg.max_gap_windows, cfg.loss_frac);
    let outage = OutageModel::from_seed(cfg.outage_seed, cfg.outage_prob);

    // Build-time join: which episodes touch the DNS decides which
    // OpenINTEL aggregates exist. Sharded across `jobs`, byte-identical
    // to sequential for any worker count.
    let columns = EpisodeColumns::from_episodes(&episodes);
    let join = JoinTable::build(
        &built.infra,
        &built.infra,
        &columns,
        &built.meta.open_resolvers,
        false,
        1,
        jobs,
        None,
    );

    let resolver = Resolver::default();
    let sweep = SweepSchedule::new(rngs.seed());

    let mut events: Vec<Ev> = Vec::new();
    let mut idx = 0u64;
    fn push(events: &mut Vec<Ev>, at: SimTime, rank: u8, rec: Option<FeedRecord>, idx: &mut u64) {
        events.push(Ev { at, rank, idx: *idx, rec });
        *idx += 1;
    }

    // Episodes, gap-delayed; a deterministic fraction of in-gap episodes
    // is lost with the collector.
    let mut episodes_lost = 0u64;
    let mut episodes_emitted = 0u64;
    for e in &episodes {
        let probe = RsdosRecord {
            window: e.last_window,
            victim: e.victim,
            slash16s: e.slash16s,
            protocol: e.protocol,
            first_port: e.first_port,
            unique_ports: e.unique_ports,
            max_ppm: e.peak_ppm,
            packets: e.packets,
        };
        if gap.record_lost(&probe) {
            episodes_lost += 1;
            continue;
        }
        episodes_emitted += 1;
        push(
            &mut events,
            gap.arrival_of(e.last_window),
            1,
            Some(FeedRecord::Episode(e.clone())),
            &mut idx,
        );
    }

    // OpenINTEL aggregates for joined episodes: the during-attack
    // observation plus the baseline days it will want (day-before, and
    // week-before as the outage fallback).
    let mut baseline_days: BTreeSet<(NsSetId, u64)> = BTreeSet::new();
    for row in 0..join.len() {
        let ei = join.episode_idx[row] as usize;
        let (first, last) = (columns.first_windows[ei], columns.last_windows[ei]);
        for &nsset in join.nssets.row(row) {
            let (avg, n) =
                span_aggregate(&built.infra, &sweep, &resolver, nsset, first, last, &loads);
            if n > 0 {
                push(
                    &mut events,
                    last.end(),
                    2,
                    Some(FeedRecord::AttackObs {
                        nsset,
                        first_window: first,
                        last_window: last,
                        avg_rtt_ms: avg,
                        domains_measured: n,
                    }),
                    &mut idx,
                );
            }
            let day = first.day();
            for d in [day.checked_sub(1), day.checked_sub(7)].into_iter().flatten() {
                baseline_days.insert((nsset, d));
            }
        }
    }
    let mut baselines_suppressed = 0u64;
    for &(nsset, day) in &baseline_days {
        if outage.day_missed(day) {
            // The sensor was down: the daily dump never materializes.
            baselines_suppressed += 1;
            continue;
        }
        let first = Window(day * WINDOWS_PER_DAY);
        let last = Window((day + 1) * WINDOWS_PER_DAY - 1);
        let (avg, n) = span_aggregate(&built.infra, &sweep, &resolver, nsset, first, last, &loads);
        if n > 0 {
            push(
                &mut events,
                SimTime::from_days(day + 1),
                0,
                Some(FeedRecord::DayBaseline { nsset, day, avg_rtt_ms: avg, domains_measured: n }),
                &mut idx,
            );
        }
    }

    // Gap ticks: record-less events that advance the clock through the
    // collector's downtime so the horizon visibly stalls behind it.
    if let (Some(lo), Some(hi)) = (
        events.iter().map(|e| e.at.secs() / WINDOW_SECS).min(),
        events.iter().map(|e| e.at.secs() / WINDOW_SECS).max(),
    ) {
        for w in lo..=hi {
            if gap.in_gap(Window(w)) {
                push(&mut events, Window(w).end(), 3, None, &mut idx);
            }
        }
    }

    events.sort_by_key(|e| (e.at, e.rank, e.idx));

    // Cut the arrival-ordered stream into batches: bounded record count,
    // bounded clock span.
    let mut batches: Vec<FeedBatch> = Vec::new();
    let mut cur: Vec<FeedRecord> = Vec::new();
    let mut cur_first_w: Option<u64> = None;
    let mut cur_at = SimTime::EPOCH;
    let mut total_records = 0u64;
    let flush = |cur: &mut Vec<FeedRecord>, at: SimTime, batches: &mut Vec<FeedBatch>| {
        let seq = batches.len() as u64;
        batches.push(FeedBatch {
            seq,
            clock: at,
            horizon: horizon_at(&gap, at),
            records: std::mem::take(cur),
        });
    };
    for ev in events {
        let w = ev.at.secs() / WINDOW_SECS;
        let split = match cur_first_w {
            None => false,
            Some(fw) => {
                cur.len() >= cfg.batch_records.max(1)
                    || w.saturating_sub(fw) >= cfg.batch_windows.max(1)
            }
        };
        if split {
            flush(&mut cur, cur_at, &mut batches);
            cur_first_w = None;
        }
        cur_first_w.get_or_insert(w);
        cur_at = ev.at;
        if let Some(rec) = ev.rec {
            cur.push(rec);
            total_records += 1;
        }
    }
    if cur_first_w.is_some() {
        flush(&mut cur, cur_at, &mut batches);
    }

    obs::counter("daemon.feed.batches").add(batches.len() as u64);
    obs::counter("daemon.feed.records").add(total_records);
    obs::counter("daemon.feed.episodes_lost").add(episodes_lost);
    obs::counter("daemon.feed.baselines_suppressed").add(baselines_suppressed);

    FeedSource {
        world: built,
        batches,
        total_records,
        episodes_emitted,
        episodes_lost,
        baselines_suppressed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> FeedConfig {
        FeedConfig {
            seed: 7,
            divisor: divisor_for_target(2_000),
            months: 2,
            world: WorldConfig { providers: 20, domains: 6_000, ..WorldConfig::default() },
            gap_seed: 5,
            gap_prob: 0.5,
            max_gap_windows: 24,
            loss_frac: 0.1,
            outage_seed: 6,
            outage_prob: 0.1,
            batch_records: 32,
            batch_windows: 6,
        }
    }

    #[test]
    fn batches_are_sequenced_and_arrival_ordered() {
        let src = build(&tiny(), 2);
        assert!(!src.batches.is_empty());
        assert!(src.total_records > 0);
        let mut prev_clock = SimTime::EPOCH;
        for (i, b) in src.batches.iter().enumerate() {
            assert_eq!(b.seq, i as u64, "dense sequence numbers");
            assert!(b.clock >= prev_clock, "clock is monotone");
            assert!(
                b.horizon.end().secs() <= b.clock.secs(),
                "horizon never runs ahead of the clock"
            );
            prev_clock = b.clock;
        }
        let staleness_seen = src.batches.iter().any(|b| b.clock.secs() > b.horizon.end().secs());
        assert!(staleness_seen, "gap_prob 0.5 must stall the horizon somewhere");
    }

    #[test]
    fn feed_is_deterministic_across_jobs() {
        let a = build(&tiny(), 1);
        let b = build(&tiny(), 4);
        assert_eq!(format!("{:?}", a.batches), format!("{:?}", b.batches));
        assert_eq!(a.episodes_lost, b.episodes_lost);
        assert_eq!(a.baselines_suppressed, b.baselines_suppressed);
    }

    #[test]
    fn horizon_stalls_inside_gaps_only() {
        let gap = FeedGapModel::from_seed(5, 1.0, 24, 0.0);
        // Find a gapped window and check the stall.
        let w = (0..5_000).map(Window).find(|w| gap.in_gap(*w)).expect("gap exists");
        let h = horizon_at(&gap, w.end());
        assert!(h.0 < w.0, "horizon stalls before the gap");
        assert!(!gap.in_gap(h), "horizon rests on a complete window");
        // After the backlog arrives the horizon catches back up.
        let recovery = gap.arrival_of(w);
        assert_eq!(horizon_at(&gap, recovery).0, recovery.secs() / WINDOW_SECS - 1);
    }
}
