//! `dnsimpactd`: a crash-survivable, degradation-honest impact-query
//! daemon (DESIGN §12, ROADMAP item 2).
//!
//! The batch pipeline answers "was this domain's DNS impacted?" once per
//! run; this crate keeps the answer warm. A deterministic feed source
//! ([`feed`]) replays the RSDoS episode stream and OpenINTEL-style daily
//! aggregates as sequence-numbered batches; the ingester ([`ingest`])
//! pulls them through `streamproc`'s at-least-once supervised transport,
//! grows a columnar NSSet→impact index ([`index`]) incrementally, and
//! publishes each applied batch as an immutable hot-swapped snapshot. A
//! minimal HTTP/JSON server ([`http`]) answers domain queries from the
//! current snapshot behind a bounded admission queue that sheds — and
//! counts — overload instead of buffering it.
//!
//! The robustness contract, locked by `tests/daemon.rs` and the ci.sh
//! daemon gate:
//!
//! - **Replay determinism**: the served index is a pure function of the
//!   ingested batch prefix. kill -9 anywhere, restart, and checkpoint +
//!   feed replay reconverge to a byte-identical index (fingerprinted down
//!   to the f64 bits), for any `--jobs` and any chaos seed.
//! - **Honest degradation**: telescope feed gaps stall the data horizon
//!   while the clock advances; every answer carries `staleness_s` and a
//!   `degraded` flag, and `/readyz` flips not-ready once staleness
//!   exceeds the configured bound. Sensor outages surface as week-before
//!   or missing baselines, never as silently-fresh numbers.
//! - **Bounded overload**: admission is a fixed-capacity queue; overflow
//!   is an immediate 503 and a counted shed, so memory stays bounded and
//!   `accepted == served + shed + errors` holds exactly.
//! - **Deterministic telemetry**: the live plane ([`telemetry`]) ticks on
//!   applied feed sequence numbers, never wall clock, so the stored
//!   `live.*` series and the ingest SLO verdict sequence are a pure
//!   function of the feed prefix — byte-identical across chaos seeds,
//!   `--jobs` counts, and crash/recovery replays. Wall-clock timestamps
//!   and scheduling-dependent serving metrics ride along as annotation.

pub mod checkpoint;
pub mod feed;
pub mod http;
pub mod index;
pub mod ingest;
pub mod telemetry;

pub use feed::{FeedBatch, FeedConfig, FeedRecord, FeedSource};
pub use http::{http_get, Server, ServerConfig};
pub use index::{BaselineSource, DomainDir, IndexSnapshot, IndexState, NsSetImpact};
pub use ingest::{IngestConfig, Ingestor};
pub use telemetry::{Telemetry, TelemetryConfig};
