//! The daemon binary. Four subcommands:
//!
//! - `serve` — build the feed, start the HTTP server, recover from any
//!   checkpoint, run the supervised ingest to completion, then keep
//!   serving until killed. `--port-file` publishes the bound address
//!   atomically so a harness can find a port-0 listener.
//!   `--bench-oneshot` instead exits after ingest completes, printing one
//!   compact JSON line (records, ingest wall, full fingerprint, peak RSS)
//!   to stdout — the serving cell of the `repro bench --suite`
//!   orchestrator, which reads exactly that line per spawned process.
//!   `--live-report PATH` writes the `dnsimpactd-live/v1` telemetry
//!   report (tick-clock series + SLO transitions) after ingest;
//!   `--tick-cap` bounds the telemetry ring.
//! - `fingerprint` — apply the whole feed in-process (no daemon, no
//!   transport) and print the full index fingerprint: the clean-replay
//!   reference the CI gate diffs a crash-recovered daemon against.
//! - `domains` — print domain names from the built world; `--impacted`
//!   restricts to domains whose NSSet joined at least one episode.
//! - `get` — a tiny HTTP client (`curl` is not guaranteed in the CI
//!   container): fetch a path, print the body or one `--field` of it,
//!   exit 0 on 2xx and 3 otherwise. `--expo` instead parses the body as
//!   Prometheus text exposition (the CI live gate's `/metricsz` check).
//!
//! All flag parsing reports contextful errors on stderr and exits 2 —
//! never panics.

use dnsimpactd::{
    http_get, DomainDir, FeedConfig, IndexSnapshot, IndexState, IngestConfig, Ingestor, Server,
    ServerConfig, Telemetry, TelemetryConfig,
};
use obs::{Json, LiveFinal, LiveMeta};
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;
use streamproc::SwapCell;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        eprintln!("usage: dnsimpactd <serve|fingerprint|domains|get> [flags]");
        return ExitCode::from(2);
    };
    let rest = &args[1..];
    let result = match cmd.as_str() {
        "serve" => serve(rest),
        "fingerprint" => fingerprint(rest),
        "domains" => domains(rest),
        "get" => return get(rest),
        other => Err(format!("unknown subcommand {other:?}; want serve|fingerprint|domains|get")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("dnsimpactd: {e}");
            ExitCode::from(2)
        }
    }
}

/// Shared feed/ingest flags for serve/fingerprint/domains.
struct Opts {
    feed: FeedConfig,
    jobs: usize,
    chaos_seed: Option<u64>,
    pace_ms: u64,
    staleness_bound_s: u64,
    checkpoint_dir: Option<PathBuf>,
    bind: String,
    port_file: Option<PathBuf>,
    bench_oneshot: bool,
    impacted: bool,
    limit: usize,
    scale_target: u64,
    tick_cap: usize,
    live_report: Option<PathBuf>,
}

fn parse_opts(args: &[String]) -> Result<Opts, String> {
    let mut o = Opts {
        feed: FeedConfig::pinned(1_500),
        jobs: 2,
        chaos_seed: None,
        pace_ms: 0,
        staleness_bound_s: 1_800,
        checkpoint_dir: None,
        bind: "127.0.0.1:0".into(),
        port_file: None,
        bench_oneshot: false,
        impacted: false,
        limit: usize::MAX,
        scale_target: 1_500,
        tick_cap: 1_024,
        live_report: None,
    };
    let mut scale_target: Option<u64> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("flag {name} needs a value"))
        };
        fn num<T: std::str::FromStr>(name: &str, v: &str) -> Result<T, String>
        where
            T::Err: std::fmt::Display,
        {
            v.parse().map_err(|e| format!("flag {name}: bad value {v:?}: {e}"))
        }
        match flag.as_str() {
            "--seed" => o.feed.seed = num(flag, val(flag)?)?,
            "--scale-target" => scale_target = Some(num(flag, val(flag)?)?),
            "--months" => o.feed.months = num(flag, val(flag)?)?,
            "--domains" => o.feed.world.domains = num(flag, val(flag)?)?,
            "--providers" => o.feed.world.providers = num(flag, val(flag)?)?,
            "--gap-seed" => o.feed.gap_seed = num(flag, val(flag)?)?,
            "--gap-prob" => o.feed.gap_prob = num(flag, val(flag)?)?,
            "--outage-seed" => o.feed.outage_seed = num(flag, val(flag)?)?,
            "--outage-prob" => o.feed.outage_prob = num(flag, val(flag)?)?,
            "--jobs" => o.jobs = num::<usize>(flag, val(flag)?)?.max(1),
            "--chaos-seed" => o.chaos_seed = Some(num(flag, val(flag)?)?),
            "--pace-ms" => o.pace_ms = num(flag, val(flag)?)?,
            "--staleness-bound-s" => o.staleness_bound_s = num(flag, val(flag)?)?,
            "--checkpoint-dir" => o.checkpoint_dir = Some(PathBuf::from(val(flag)?)),
            "--bind" => o.bind = val(flag)?.clone(),
            "--port-file" => o.port_file = Some(PathBuf::from(val(flag)?)),
            "--bench-oneshot" => o.bench_oneshot = true,
            "--impacted" => o.impacted = true,
            "-n" | "--limit" => o.limit = num(flag, val(flag)?)?,
            "--tick-cap" => o.tick_cap = num::<usize>(flag, val(flag)?)?.max(1),
            "--live-report" => o.live_report = Some(PathBuf::from(val(flag)?)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    if let Some(t) = scale_target {
        o.feed.divisor = scenarios::divisor_for_target(t);
        o.scale_target = t;
    }
    Ok(o)
}

fn ingest_cfg(o: &Opts) -> IngestConfig {
    IngestConfig {
        chaos_seed: o.chaos_seed,
        pace_ms: o.pace_ms,
        checkpoint_dir: o.checkpoint_dir.clone(),
        ..IngestConfig::default()
    }
}

fn serve(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    obs::progress("daemon", "building feed");
    let source = dnsimpactd::feed::build(&o.feed, o.jobs);
    obs::progress(
        "daemon",
        &format!("feed ready: {} batches, {} records", source.batches.len(), source.total_records),
    );
    let dir = Arc::new(DomainDir::build(&source.world.infra));
    let cell = Arc::new(SwapCell::new(IndexSnapshot::default()));
    let server_cfg = ServerConfig {
        bind: o.bind.clone(),
        staleness_bound_s: o.staleness_bound_s,
        ..ServerConfig::default()
    };
    let telemetry = Telemetry::new(TelemetryConfig {
        tick_cap: o.tick_cap,
        staleness_slo_s: o.staleness_bound_s,
        ..TelemetryConfig::default()
    });
    let server = Server::start(&server_cfg, Arc::clone(&cell), dir, Some(Arc::clone(&telemetry)))
        .map_err(|e| format!("bind {}: {e}", o.bind))?;
    let addr = server.addr();
    obs::progress("daemon", &format!("serving on {addr}"));
    if let Some(pf) = &o.port_file {
        dnsimpact_core::report::write_atomic(pf, &format!("{addr}\n"))
            .map_err(|e| format!("write port file {}: {e}", pf.display()))?;
    }
    let ingest_start = std::time::Instant::now();
    let mut ingestor = Ingestor::new(&source, ingest_cfg(&o), Arc::clone(&cell))
        .with_telemetry(Arc::clone(&telemetry));
    let stats = ingestor.recover_and_run();
    let ingest_wall_ms = ingest_start.elapsed().as_millis() as u64;
    obs::progress(
        "daemon",
        &format!(
            "ingest complete: seq {} / {} batches, full_fp {:#018x} (restarts {})",
            ingestor.state.applied_seq,
            source.batches.len(),
            ingestor.state.full_fingerprint(),
            stats.restarts,
        ),
    );
    if let Some(path) = &o.live_report {
        let meta = LiveMeta {
            seed: o.feed.seed,
            scale: o.scale_target,
            months: o.feed.months as u64,
            jobs: o.jobs as u64,
            date: obs::report::today_utc(),
            chaos_seed: o.chaos_seed,
            tick_cap: o.tick_cap as u64,
        };
        let fin = LiveFinal {
            applied_seq: ingestor.state.applied_seq,
            total_batches: source.batches.len() as u64,
            records_applied: ingestor.state.records_applied,
            episodes: ingestor.state.columns.len() as u64,
            joined_rows: ingestor.state.join.len() as u64,
            staleness_s: ingestor.state.staleness_s(),
            full_fp: format!("{:#018x}", ingestor.state.full_fingerprint()),
        };
        let doc = telemetry.live_report(&meta, &fin);
        if let Err(errors) = obs::live::validate(&doc) {
            return Err(format!(
                "live report failed its own schema ({} errors): {}",
                errors.len(),
                errors.join("; ")
            ));
        }
        dnsimpact_core::report::write_atomic(path, &format!("{}\n", doc.pretty()))
            .map_err(|e| format!("write live report {}: {e}", path.display()))?;
        obs::progress("daemon", &format!("live report written to {}", path.display()));
    }
    if o.bench_oneshot {
        // The suite orchestrator's stdout protocol: exactly one compact
        // JSON line, then exit. Everything above went to stderr.
        let mut line = Json::obj();
        line.set("schema", Json::Str("dnsimpactd-oneshot/v1".into()));
        line.set("records", Json::U64(source.total_records));
        line.set("batches", Json::U64(source.batches.len() as u64));
        line.set("episodes", Json::U64(source.episodes_emitted));
        line.set("applied_seq", Json::U64(ingestor.state.applied_seq));
        line.set("ingest_wall_ms", Json::U64(ingest_wall_ms));
        line.set("full_fp", Json::Str(format!("{:#018x}", ingestor.state.full_fingerprint())));
        line.set("peak_rss_kb", Json::U64(obs::rss::peak_rss_kb()));
        line.set("restarts", Json::U64(stats.restarts));
        println!("{}", line.compact());
        server.shutdown();
        return Ok(());
    }
    // Keep serving until killed; the harness owns our lifetime.
    loop {
        std::thread::sleep(Duration::from_secs(3600));
    }
}

/// Apply the feed in-process — the clean single-pass replay reference.
fn replayed_state(o: &Opts) -> (dnsimpactd::FeedSource, IndexState) {
    let source = dnsimpactd::feed::build(&o.feed, o.jobs);
    let mut state = IndexState::default();
    for batch in &source.batches {
        state.apply(&source.world, batch);
    }
    (source, state)
}

fn fingerprint(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let (_, state) = replayed_state(&o);
    println!("{:#018x}", state.full_fingerprint());
    Ok(())
}

fn domains(args: &[String]) -> Result<(), String> {
    let o = parse_opts(args)?;
    let (source, state) = replayed_state(&o);
    let dir = DomainDir::build(&source.world.infra);
    let mut printed = 0usize;
    for name in dir.names() {
        if printed >= o.limit {
            break;
        }
        if o.impacted {
            let Some((_, nsset)) = dir.lookup(name) else { continue };
            let impacted = state
                .nssets
                .get(&nsset.0)
                .is_some_and(|s| s.attacks_seen > 0 && s.impact_on_rtt.is_some());
            if !impacted {
                continue;
            }
        }
        println!("{name}");
        printed += 1;
    }
    if o.impacted && printed == 0 {
        return Err("no impacted domains in this feed".into());
    }
    Ok(())
}

fn get(args: &[String]) -> ExitCode {
    let mut url: Option<&str> = None;
    let mut field: Option<&str> = None;
    let mut expo = false;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--field" => match it.next() {
                Some(f) => field = Some(f),
                None => {
                    eprintln!("dnsimpactd: --field needs a value");
                    return ExitCode::from(2);
                }
            },
            "--expo" => expo = true,
            other => url = Some(other),
        }
    }
    let Some(url) = url else {
        eprintln!("dnsimpactd: get needs HOST:PORT/PATH");
        return ExitCode::from(2);
    };
    let (hostport, path) = match url.trim_start_matches("http://").split_once('/') {
        Some((h, p)) => (h, format!("/{p}")),
        None => (url.trim_start_matches("http://"), "/".to_string()),
    };
    let addr = match hostport.parse() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("dnsimpactd: bad address {hostport:?}: {e}");
            return ExitCode::from(2);
        }
    };
    match http_get(addr, &path, Duration::from_secs(5)) {
        Ok((status, body)) => {
            if expo {
                // Exposition mode: strict-parse the text body instead of
                // printing it — the CI gate's "does /metricsz parse" check.
                return match obs::expo::parse_text(&body) {
                    Ok(families) if (200..300).contains(&status) => {
                        println!("expo-ok {} families", families.len());
                        ExitCode::SUCCESS
                    }
                    Ok(_) => {
                        eprintln!("dnsimpactd: HTTP {status}");
                        ExitCode::from(3)
                    }
                    Err(e) => {
                        eprintln!("dnsimpactd: exposition does not parse: {e}");
                        ExitCode::from(3)
                    }
                };
            }
            match field {
                Some(f) => match Json::parse(&body).ok().and_then(|d| d.get(f).cloned()) {
                    Some(Json::Str(s)) => println!("{s}"),
                    Some(v) => println!("{}", v.pretty()),
                    None => {
                        eprintln!("dnsimpactd: field {f:?} not in response: {body}");
                        return ExitCode::from(3);
                    }
                },
                None => println!("{body}"),
            }
            if (200..300).contains(&status) {
                ExitCode::SUCCESS
            } else {
                eprintln!("dnsimpactd: HTTP {status}");
                ExitCode::from(3)
            }
        }
        Err(e) => {
            eprintln!("dnsimpactd: GET {url}: {e}");
            ExitCode::from(3)
        }
    }
}
