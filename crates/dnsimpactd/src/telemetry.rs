//! The daemon's live telemetry plane: tick sampling, SLO evaluation, and
//! the query surfaces behind `/metricsz`, `/seriesz`, and `/sloz`.
//!
//! ## The tick clock
//!
//! A tick fires once per applied feed batch, numbered by `applied_seq` —
//! never by wall clock. Recovery replays tick exactly like live ingest,
//! so a crash-recovered daemon regrows the same series a clean one has.
//! Wall time is captured per tick but only as annotation.
//!
//! ## What is deterministic here
//!
//! The live plane's deterministic series are **derived from the index
//! state alone** (`live.*` names): applied batches, records, episodes,
//! joined rows as cumulative deltas; staleness, ingest lag, and the feed
//! clock as levels. This is deliberately *stricter* than the metric
//! namespace rule: plain-named registry counters like `chaos.*` or
//! `daemon.ckpt_write_errors` are deterministic across `--jobs` but not
//! across chaos seeds or checkpoint contents, and the live plane's
//! replay contract is "byte-identical for *any* chaos seed". Everything
//! sampled from the registry therefore lands in annotation, alongside
//! the `sched.*` serving counters and per-route latency.
//!
//! Reading registry counters here does not violate the out-of-band rule:
//! this module *is* the reporting layer — nothing in the pipeline
//! branches on what it samples.

use crate::index::IndexState;
use obs::slo::{SloKind, SloSet, SloSpec, SloStatus};
use obs::timeseries::TsStore;
use obs::{Json, LiveFinal, LiveMeta};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Live-plane policy: ring capacity and the SLO thresholds.
#[derive(Clone, Debug)]
pub struct TelemetryConfig {
    /// Retained ticks in the ring.
    pub tick_cap: usize,
    /// `ingest_staleness` SLO: breach when `live.staleness_s` exceeds
    /// this. Defaults to the serving staleness bound.
    pub staleness_slo_s: u64,
    /// `ingest_lag` SLO: breach while more batches than this remain.
    pub lag_slo_batches: u64,
    /// `query_p99_us` SLO (annotation): breach when the query route's
    /// p99 exceeds this.
    pub p99_slo_us: u64,
    /// `shed_ratio` SLO (annotation): breach when more than this
    /// permille of offered queries were shed.
    pub shed_slo_permille: u64,
    /// Burn-rate window, in ticks.
    pub slo_window: usize,
}

impl Default for TelemetryConfig {
    fn default() -> TelemetryConfig {
        TelemetryConfig {
            tick_cap: 1024,
            staleness_slo_s: 1_800,
            lag_slo_batches: 64,
            p99_slo_us: 50_000,
            shed_slo_permille: 100,
            slo_window: 16,
        }
    }
}

/// Whether a series name belongs to the live plane's deterministic half
/// (see module docs).
pub fn is_live_deterministic(name: &str) -> bool {
    name.starts_with("live.")
}

struct Inner {
    store: TsStore,
    slos: SloSet,
}

/// The shared live plane. The ingest thread ticks it; HTTP workers read
/// it. One mutex around the store + SLO set — ticks are per-batch and
/// reads are per-request, so contention is negligible next to either.
pub struct Telemetry {
    cfg: TelemetryConfig,
    inner: Mutex<Inner>,
    checkpoint_seq: AtomicU64,
}

impl Telemetry {
    pub fn new(cfg: TelemetryConfig) -> Arc<Telemetry> {
        let specs = vec![
            SloSpec {
                name: "ingest_staleness".into(),
                series: "live.staleness_s".into(),
                max: cfg.staleness_slo_s,
                window: cfg.slo_window,
                kind: SloKind::Ingest,
                deterministic: true,
            },
            SloSpec {
                name: "ingest_lag".into(),
                series: "live.ingest_lag".into(),
                max: cfg.lag_slo_batches,
                window: cfg.slo_window,
                kind: SloKind::Ingest,
                deterministic: true,
            },
            SloSpec {
                name: "query_p99_us".into(),
                series: "sched.daemon.http.p99_us.query".into(),
                max: cfg.p99_slo_us,
                window: cfg.slo_window,
                kind: SloKind::Serving,
                deterministic: false,
            },
            SloSpec {
                name: "shed_ratio".into(),
                series: "sched.daemon.shed_permille".into(),
                max: cfg.shed_slo_permille,
                window: cfg.slo_window,
                kind: SloKind::Serving,
                deterministic: false,
            },
        ];
        Arc::new(Telemetry {
            inner: Mutex::new(Inner {
                store: TsStore::new(cfg.tick_cap),
                slos: SloSet::new(specs),
            }),
            cfg,
            checkpoint_seq: AtomicU64::new(0),
        })
    }

    pub fn config(&self) -> &TelemetryConfig {
        &self.cfg
    }

    /// Record one tick after a batch apply. `state` is the index *after*
    /// the apply, so the tick id is `applied_seq` (1-based, strictly
    /// increasing across live ingest and recovery replay alike).
    pub fn tick(&self, state: &IndexState, total_batches: u64) {
        let tick = state.applied_seq;
        let wall_ms = std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);

        let mut counters = BTreeMap::new();
        counters.insert("live.batches".to_string(), state.applied_seq);
        counters.insert("live.records".to_string(), state.records_applied);
        counters.insert("live.episodes".to_string(), state.columns.len() as u64);
        counters.insert("live.joined_rows".to_string(), state.join.len() as u64);

        let mut levels = BTreeMap::new();
        levels.insert("live.staleness_s".to_string(), state.staleness_s());
        levels
            .insert("live.ingest_lag".to_string(), total_batches.saturating_sub(state.applied_seq));
        levels.insert("live.clock_s".to_string(), state.clock.secs());

        // Annotation: the serving side, sampled from the registry.
        let received = obs::counter("sched.daemon.queries_received").get();
        let shed = obs::counter("sched.daemon.queries_shed").get();
        counters.insert("sched.daemon.queries_received".to_string(), received);
        counters.insert("sched.daemon.queries_shed".to_string(), shed);
        counters.insert(
            "sched.daemon.queries_served".to_string(),
            obs::counter("sched.daemon.queries_served").get(),
        );
        levels.insert(
            "sched.daemon.shed_permille".to_string(),
            (shed * 1000).checked_div(received).unwrap_or(0),
        );
        levels.insert(
            "sched.daemon.http.p99_us.query".to_string(),
            obs::histogram("sched.daemon.http.latency_us.query").snapshot().p99,
        );

        let mut inner = self.inner.lock().unwrap();
        inner.store.observe(tick, wall_ms, &counters, &levels);
        inner.slos.observe_tick(tick, |name| {
            levels.get(name).copied().or_else(|| counters.get(name).copied())
        });
    }

    /// Discard every tick — only for the recovery path that throws away a
    /// lying checkpoint's replayed state and starts clean.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap();
        let specs: Vec<SloSpec> = inner.slos.specs().cloned().collect();
        inner.store = TsStore::new(self.cfg.tick_cap);
        inner.slos = SloSet::new(specs);
        self.checkpoint_seq.store(0, Ordering::Relaxed);
    }

    /// Record a durably written checkpoint (for `/statz`).
    pub fn note_checkpoint(&self, applied_seq: u64) {
        self.checkpoint_seq.store(applied_seq, Ordering::Relaxed);
    }

    pub fn checkpoint_seq(&self) -> u64 {
        self.checkpoint_seq.load(Ordering::Relaxed)
    }

    /// The `/seriesz` answer for one series: the deterministic window
    /// fields under `"deterministic"` (only for `live.*` series — an
    /// annotation series' points live under `"annotation"`), wall
    /// timestamps always under `"annotation"`.
    pub fn seriesz(&self, name: &str, last: usize) -> Option<Json> {
        let inner = self.inner.lock().unwrap();
        let w = inner.store.series(name, last)?;
        let mut points = Json::obj();
        points.set("name", Json::Str(w.name.clone()));
        points.set("kind", Json::Str(w.kind.as_str().into()));
        points.set("ticks", Json::Array(w.ticks.iter().map(|&t| Json::U64(t)).collect()));
        points.set("values", Json::Array(w.values.iter().map(|&v| Json::U64(v)).collect()));
        points.set("evicted_sum", Json::U64(w.evicted_sum));
        points.set("cumulative", Json::U64(w.cumulative));

        let mut ann = Json::obj();
        ann.set("wall_ms", Json::Array(w.wall_ms.iter().map(|&m| Json::U64(m)).collect()));

        let mut body = Json::obj();
        if is_live_deterministic(name) {
            body.set("deterministic", points);
        } else {
            let mut det = Json::obj();
            det.set("name", Json::Str(w.name));
            det.set("deterministic_series", Json::Bool(false));
            body.set("deterministic", det);
            ann.set("points", points);
        }
        body.set("annotation", ann);
        Some(body)
    }

    /// Known series names and kinds (for `/seriesz` without a match).
    pub fn series_names(&self) -> Vec<(String, &'static str)> {
        let inner = self.inner.lock().unwrap();
        inner.store.names().map(|(n, k)| (n.to_string(), k.as_str())).collect()
    }

    /// The `/sloz` answer: deterministic specs + verdict transitions
    /// under `"deterministic"`, live statuses and the diagnosis under
    /// `"annotation"`.
    pub fn sloz(&self) -> Json {
        let inner = self.inner.lock().unwrap();
        let mut specs = Vec::new();
        for s in inner.slos.specs().filter(|s| s.deterministic) {
            let mut o = Json::obj();
            o.set("name", Json::Str(s.name.clone()));
            o.set("series", Json::Str(s.series.clone()));
            o.set("max", Json::U64(s.max));
            o.set("window", Json::U64(s.window as u64));
            specs.push(o);
        }
        let transitions: Vec<Json> = inner
            .slos
            .deterministic_transitions()
            .iter()
            .map(|t| {
                let mut o = Json::obj();
                o.set("tick", Json::U64(t.tick));
                o.set("slo", Json::Str(t.slo.clone()));
                o.set("status", Json::Str(t.status.as_str().into()));
                o
            })
            .collect();
        let mut det = Json::obj();
        det.set("specs", Json::Array(specs));
        det.set("transitions", Json::Array(transitions));

        let statuses: Vec<Json> = inner
            .slos
            .statuses()
            .iter()
            .map(|v| {
                let mut o = Json::obj();
                o.set("name", Json::Str(v.name.clone()));
                o.set("series", Json::Str(v.series.clone()));
                o.set("status", Json::Str(v.status.as_str().into()));
                o.set("burn_permille", Json::U64(v.burn_permille));
                o.set("max", Json::U64(v.max));
                match v.last_value {
                    Some(x) => o.set("last_value", Json::U64(x)),
                    None => o.set("last_value", Json::Null),
                };
                o.set("deterministic", Json::Bool(v.deterministic));
                o
            })
            .collect();
        let mut ann = Json::obj();
        ann.set("statuses", Json::Array(statuses));
        ann.set("diagnosis", Json::Str(inner.slos.diagnose().into()));

        let mut body = Json::obj();
        body.set("deterministic", det);
        body.set("annotation", ann);
        body
    }

    /// Compact SLO verdicts for `/statz`: worst status, per-SLO states,
    /// and the diagnosis.
    pub fn statz_slo(&self) -> Json {
        let inner = self.inner.lock().unwrap();
        let statuses = inner.slos.statuses();
        let worst = statuses
            .iter()
            .map(|v| v.status)
            .max_by_key(|s| match s {
                SloStatus::Ok => 0,
                SloStatus::Warn => 1,
                SloStatus::Breach => 2,
            })
            .unwrap_or(SloStatus::Ok);
        let mut o = Json::obj();
        o.set("worst", Json::Str(worst.as_str().into()));
        o.set("diagnosis", Json::Str(inner.slos.diagnose().into()));
        let mut per = Json::obj();
        for v in &statuses {
            per.set(&v.name, Json::Str(v.status.as_str().into()));
        }
        o.set("status", per);
        o
    }

    /// Build the `dnsimpactd-live/v1` report (validated by the caller).
    pub fn live_report(&self, meta: &LiveMeta, fin: &LiveFinal) -> Json {
        let inner = self.inner.lock().unwrap();
        obs::live::build(
            meta,
            fin,
            &inner.store,
            &inner.slos,
            &is_live_deterministic,
            &obs::registry().snapshot(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::feed::{self, FeedConfig};
    use crate::index::IndexState;

    fn tiny_feed() -> crate::feed::FeedSource {
        let mut cfg = FeedConfig::pinned(1_500);
        cfg.months = 1;
        cfg.world.domains = 500;
        feed::build(&cfg, 1)
    }

    #[test]
    fn ticks_are_a_pure_function_of_the_feed_prefix() {
        let source = tiny_feed();
        let total = source.batches.len() as u64;
        let report = |tel: &Telemetry| {
            let mut out = Vec::new();
            for name in ["live.batches", "live.records", "live.staleness_s", "live.ingest_lag"] {
                let body = tel.seriesz(name, usize::MAX).unwrap();
                out.push(body.get("deterministic").unwrap().pretty());
            }
            out.push(tel.sloz().get("deterministic").unwrap().pretty());
            out
        };
        // Two independent applies of the same feed (the second in two
        // chunks, simulating a crash + replay) must agree byte-for-byte.
        let a = Telemetry::new(TelemetryConfig::default());
        let mut state = IndexState::default();
        for batch in &source.batches {
            state.apply(&source.world, batch);
            a.tick(&state, total);
        }
        let b = Telemetry::new(TelemetryConfig::default());
        let mut state2 = IndexState::default();
        let half = source.batches.len() / 2;
        for batch in &source.batches[..half] {
            state2.apply(&source.world, batch);
            b.tick(&state2, total);
        }
        for batch in &source.batches[half..] {
            state2.apply(&source.world, batch);
            b.tick(&state2, total);
        }
        let (ra, rb) = (report(&a), report(&b));
        assert_eq!(ra, rb, "deterministic live views diverged");
    }

    #[test]
    fn lag_slo_breaches_then_recovers() {
        let source = tiny_feed();
        let total = source.batches.len() as u64;
        let cfg = TelemetryConfig {
            lag_slo_batches: total / 2,
            slo_window: 4,
            ..TelemetryConfig::default()
        };
        let tel = Telemetry::new(cfg);
        let mut state = IndexState::default();
        for batch in &source.batches {
            state.apply(&source.world, batch);
            tel.tick(&state, total);
        }
        let sloz = tel.sloz();
        let det = sloz.get("deterministic").unwrap();
        let transitions = det.get("transitions").unwrap().as_array().unwrap();
        let lag: Vec<&str> = transitions
            .iter()
            .filter(|t| t.get("slo").and_then(|s| s.as_str()) == Some("ingest_lag"))
            .map(|t| t.get("status").and_then(|s| s.as_str()).unwrap())
            .collect();
        assert!(lag.first() == Some(&"breach"), "starts breached: {lag:?}");
        assert!(lag.last() == Some(&"ok"), "ends recovered: {lag:?}");
    }
}
