//! The hot NSSet→impact index and its serving snapshot.
//!
//! [`IndexState`] is the ingester's mutable view: the columnar episode
//! table and join grown incrementally per record
//! ([`EpisodeColumns::push_episode`], [`JoinTable::extend`]), plus the
//! per-NSSet impact summaries and the baseline cells the aggregates feed.
//! Application is strictly sequential and deterministic, so the state
//! after batch `k` is a pure function of batches `0..=k` — the property
//! the fingerprints lock.
//!
//! [`IndexSnapshot`] is the immutable serving view published through a
//! [`streamproc::SwapCell`] after every applied batch. Queries clone an
//! `Arc` to the current snapshot and never observe a half-applied batch.

use crate::feed::{FeedBatch, FeedRecord};
use dnsimpact_core::columnar::JoinTable;
use dnssim::{DomainId, Infra, NsSetId};
use scenarios::BuiltWorld;
use simcore::time::{SimTime, Window};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use telescope::EpisodeColumns;

/// Where an NSSet's current impact ratio got its baseline. Mirrors the
/// batch pipeline's fallback ladder: day-before sweep, else week-before
/// (sensor outage), else nothing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BaselineSource {
    DayBefore,
    WeekBefore,
    Missing,
}

impl BaselineSource {
    pub fn as_str(self) -> &'static str {
        match self {
            BaselineSource::DayBefore => "day_before",
            BaselineSource::WeekBefore => "week_before",
            BaselineSource::Missing => "missing",
        }
    }
}

/// Everything the daemon serves about one NSSet.
#[derive(Clone, Debug, Default)]
pub struct NsSetImpact {
    /// Episodes joined to this NSSet so far.
    pub attacks_seen: u64,
    pub first_attack_window: Option<Window>,
    pub last_attack_window: Option<Window>,
    pub peak_ppm: f64,
    /// Latest during-attack RTT aggregate.
    pub during_rtt_ms: Option<f64>,
    pub domains_measured: u64,
    /// Latest Impact_on_RTT (during / baseline), when a baseline existed.
    pub impact_on_rtt: Option<f64>,
    /// Worst ratio observed across all attacks.
    pub worst_impact_on_rtt: Option<f64>,
    pub baseline_source: Option<BaselineSource>,
}

/// The ingester's mutable index.
#[derive(Clone, Debug, Default)]
pub struct IndexState {
    pub columns: EpisodeColumns,
    pub join: JoinTable,
    pub nssets: BTreeMap<u32, NsSetImpact>,
    /// `(nsset, day)` → `(avg_rtt_ms, domains_measured)`.
    pub baselines: BTreeMap<(u32, u64), (f64, u64)>,
    /// Batches applied so far (the next expected `seq`).
    pub applied_seq: u64,
    pub records_applied: u64,
    pub clock: SimTime,
    pub horizon: Window,
}

impl IndexState {
    /// Apply one batch. Panics on out-of-order application — the
    /// transport below guarantees in-order delivery, and a violated
    /// guarantee must never be papered over into a wrong index.
    pub fn apply(&mut self, world: &BuiltWorld, batch: &FeedBatch) {
        assert_eq!(batch.seq, self.applied_seq, "batches must apply in seq order");
        for rec in &batch.records {
            self.apply_record(world, rec);
            self.records_applied += 1;
        }
        self.applied_seq = batch.seq + 1;
        self.clock = batch.clock;
        self.horizon = batch.horizon;
        obs::counter("daemon.batches_applied").incr();
        obs::counter("daemon.records_applied").add(batch.records.len() as u64);
        obs::gauge("daemon.staleness_s").set(self.staleness_s());
    }

    fn apply_record(&mut self, world: &BuiltWorld, rec: &FeedRecord) {
        match rec {
            FeedRecord::Episode(e) => {
                let from = self.columns.len();
                let rows_before = self.join.len();
                self.columns.push_episode(e);
                self.join.extend(
                    &world.infra,
                    &world.infra,
                    &self.columns,
                    from,
                    &world.meta.open_resolvers,
                    false,
                    1,
                    None,
                );
                for row in rows_before..self.join.len() {
                    for &nsset in self.join.nssets.row(row) {
                        let s = self.nssets.entry(nsset.0).or_default();
                        s.attacks_seen += 1;
                        s.first_attack_window = Some(
                            s.first_attack_window.map_or(e.first_window, |w| w.min(e.first_window)),
                        );
                        s.last_attack_window = Some(
                            s.last_attack_window.map_or(e.last_window, |w| w.max(e.last_window)),
                        );
                        if e.peak_ppm > s.peak_ppm {
                            s.peak_ppm = e.peak_ppm;
                        }
                    }
                }
                obs::counter("daemon.episodes_applied").incr();
            }
            FeedRecord::DayBaseline { nsset, day, avg_rtt_ms, domains_measured } => {
                self.baselines.insert((nsset.0, *day), (*avg_rtt_ms, *domains_measured));
                obs::counter("daemon.baselines_applied").incr();
            }
            FeedRecord::AttackObs { nsset, first_window, avg_rtt_ms, domains_measured, .. } => {
                let day = first_window.day();
                let (baseline, source) =
                    match day.checked_sub(1).and_then(|d| self.baselines.get(&(nsset.0, d))) {
                        Some(&(rtt, _)) => (Some(rtt), BaselineSource::DayBefore),
                        None => {
                            match day.checked_sub(7).and_then(|d| self.baselines.get(&(nsset.0, d)))
                            {
                                Some(&(rtt, _)) => (Some(rtt), BaselineSource::WeekBefore),
                                None => (None, BaselineSource::Missing),
                            }
                        }
                    };
                if source == BaselineSource::WeekBefore {
                    obs::counter("daemon.baseline_fallbacks").incr();
                }
                if source == BaselineSource::Missing {
                    obs::counter("daemon.baselines_missing").incr();
                }
                let s = self.nssets.entry(nsset.0).or_default();
                s.during_rtt_ms = Some(*avg_rtt_ms);
                s.domains_measured = *domains_measured;
                s.baseline_source = Some(source);
                s.impact_on_rtt = baseline.filter(|b| *b > 0.0).map(|b| avg_rtt_ms / b);
                if let Some(r) = s.impact_on_rtt {
                    if s.worst_impact_on_rtt.is_none_or(|w| r > w) {
                        s.worst_impact_on_rtt = Some(r);
                    }
                }
                obs::counter("daemon.attack_obs_applied").incr();
            }
        }
    }

    /// Clock-minus-horizon, in seconds: how far the served view lags the
    /// feed's own sense of now.
    pub fn staleness_s(&self) -> u64 {
        self.clock.secs().saturating_sub(self.horizon.end().secs())
    }

    /// FNV-1a over the scalar serving state (per-NSSet summaries,
    /// baselines, progress marks). Cheap enough to stamp into every
    /// checkpoint; `Debug` on `f64` prints the shortest round-tripping
    /// form, so equal fingerprints mean bit-equal floats.
    pub fn state_fingerprint(&self) -> u64 {
        let mut w = FnvWriter::new();
        let _ = write!(
            w,
            "{:?}|{:?}|{:?}|{:?}|{:?}|{:?}",
            self.applied_seq,
            self.records_applied,
            self.clock,
            self.horizon,
            self.nssets,
            self.baselines
        );
        w.finish()
    }

    /// FNV-1a over the scalar state *and* the columnar structures — the
    /// byte-identity the replay-determinism contract is stated over.
    pub fn full_fingerprint(&self) -> u64 {
        let mut w = FnvWriter::new();
        let _ = write!(w, "{:016x}|{:?}|{:?}", self.state_fingerprint(), self.columns, self.join);
        w.finish()
    }

    /// The immutable serving view of the current state. `with_full_fp`
    /// stamps the O(index)-cost full fingerprint (done once, after ingest
    /// completes); per-batch publishes carry only the cheap scalar one.
    pub fn snapshot(&self, total_batches: u64, with_full_fp: bool) -> IndexSnapshot {
        IndexSnapshot {
            applied_seq: self.applied_seq,
            total_batches,
            records_applied: self.records_applied,
            episodes: self.columns.len() as u64,
            joined_rows: self.join.len() as u64,
            clock: self.clock,
            horizon: self.horizon,
            nssets: self.nssets.clone(),
            state_fp: self.state_fingerprint(),
            full_fp: with_full_fp.then(|| self.full_fingerprint()),
        }
    }
}

/// What queries see: an immutable copy of the serving state, swapped
/// whole after each batch.
#[derive(Clone, Debug, Default)]
pub struct IndexSnapshot {
    pub applied_seq: u64,
    pub total_batches: u64,
    pub records_applied: u64,
    pub episodes: u64,
    pub joined_rows: u64,
    pub clock: SimTime,
    pub horizon: Window,
    pub nssets: BTreeMap<u32, NsSetImpact>,
    pub state_fp: u64,
    pub full_fp: Option<u64>,
}

impl IndexSnapshot {
    pub fn staleness_s(&self) -> u64 {
        self.clock.secs().saturating_sub(self.horizon.end().secs())
    }

    /// Readiness = something has been served-worthy ingested AND the view
    /// is fresher than the bound.
    pub fn ready(&self, staleness_bound_s: u64) -> bool {
        self.applied_seq > 0 && self.staleness_s() <= staleness_bound_s
    }

    pub fn ingest_done(&self) -> bool {
        self.total_batches > 0 && self.applied_seq >= self.total_batches
    }
}

/// Name → (domain, NSSet) lookup, built once from the static world. (The
/// world's domain table is config, not feed — only impact state streams.)
pub struct DomainDir {
    map: BTreeMap<String, (DomainId, NsSetId)>,
}

impl DomainDir {
    pub fn build(infra: &Infra) -> DomainDir {
        let mut map = BTreeMap::new();
        for id in 0..infra.domain_count() {
            let rec = infra.domain(DomainId(id as u32));
            map.insert(rec.name.to_string(), (DomainId(id as u32), rec.nsset));
        }
        DomainDir { map }
    }

    pub fn lookup(&self, name: &str) -> Option<(DomainId, NsSetId)> {
        self.map.get(name).copied()
    }

    /// All names, ascending — the deterministic rank order the Zipf query
    /// generator draws from.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.map.keys().map(String::as_str)
    }

    pub fn len(&self) -> usize {
        self.map.len()
    }

    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

/// FNV-1a over everything `Debug`-printed into it (the same construction
/// the scale sweep fingerprints artifacts with).
pub struct FnvWriter(u64);

impl FnvWriter {
    pub fn new() -> FnvWriter {
        FnvWriter(0xcbf2_9ce4_8422_2325)
    }

    pub fn finish(&self) -> u64 {
        self.0
    }
}

impl Default for FnvWriter {
    fn default() -> FnvWriter {
        FnvWriter::new()
    }
}

impl std::fmt::Write for FnvWriter {
    fn write_str(&mut self, s: &str) -> std::fmt::Result {
        for b in s.bytes() {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(0x100_0000_01b3);
        }
        Ok(())
    }
}
