//! Durable ingest progress: a tiny atomically-written marker, not a state
//! dump.
//!
//! Because the feed is replayable from offset 0 (see [`crate::feed`]),
//! recovery does not need the index serialized — it needs to know *how
//! far* the dead daemon had applied, and a fingerprint to prove the
//! replayed prefix reconverged to the same state the daemon was serving
//! when it died. That makes the checkpoint O(1): `{applied_seq,
//! records_applied, state_fp}`, written via temp-file + rename after
//! every batch, so a kill -9 at any instant leaves either the previous
//! or the next marker — never a torn one.
//!
//! A missing, corrupt, or schema-mismatched marker is not fatal: recovery
//! degrades to a full replay from the feed's start and says so.

use crate::index::IndexState;
use obs::Json;
use std::io;
use std::path::Path;

pub const CKPT_SCHEMA: &str = "dnsimpactd-ckpt/v1";
const FILE: &str = "daemon.ckpt.json";

/// A loaded marker.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Checkpoint {
    pub applied_seq: u64,
    pub records_applied: u64,
    pub state_fp: u64,
}

/// Write the marker for the current state (atomic: tmp + rename).
pub fn save(dir: &Path, state: &IndexState) -> io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let mut doc = Json::obj();
    doc.set("schema", Json::Str(CKPT_SCHEMA.into()));
    doc.set("applied_seq", Json::U64(state.applied_seq));
    doc.set("records_applied", Json::U64(state.records_applied));
    doc.set("state_fp", Json::Str(format!("{:#018x}", state.state_fingerprint())));
    dnsimpact_core::report::write_atomic(&dir.join(FILE), &doc.pretty())?;
    obs::counter("daemon.checkpoints_written").incr();
    Ok(())
}

/// Load the marker, or explain why recovery must start from scratch.
/// Every failure path is a degraded start, not an abort.
pub fn load(dir: &Path) -> Option<Checkpoint> {
    let path = dir.join(FILE);
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return None,
        Err(e) => {
            obs::progress("daemon", &format!("checkpoint unreadable ({e}); replaying from start"));
            obs::counter("daemon.ckpt_unreadable").incr();
            return None;
        }
    };
    let reject = |why: &str| {
        obs::progress("daemon", &format!("checkpoint rejected ({why}); replaying from start"));
        obs::counter("daemon.ckpt_rejected").incr();
        None
    };
    let doc = match Json::parse(&text) {
        Ok(d) => d,
        Err(e) => return reject(&format!("parse error: {e}")),
    };
    match doc.get("schema").and_then(Json::as_str) {
        Some(CKPT_SCHEMA) => {}
        Some(other) => return reject(&format!("schema {other:?}, want {CKPT_SCHEMA:?}")),
        None => return reject("no schema field"),
    }
    let field = |k: &str| doc.get(k).and_then(Json::as_u64);
    let fp = doc
        .get("state_fp")
        .and_then(Json::as_str)
        .and_then(|s| u64::from_str_radix(s.trim_start_matches("0x"), 16).ok());
    match (field("applied_seq"), field("records_applied"), fp) {
        (Some(applied_seq), Some(records_applied), Some(state_fp)) => {
            Some(Checkpoint { applied_seq, records_applied, state_fp })
        }
        _ => reject("missing or malformed fields"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("dnsimpactd-ckpt-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).expect("create test dir");
        dir
    }

    #[test]
    fn round_trips_and_survives_garbage() {
        let dir = tmpdir("rt");
        let state = IndexState { applied_seq: 17, records_applied: 120, ..IndexState::default() };
        save(&dir, &state).expect("save");
        let ck = load(&dir).expect("load");
        assert_eq!(ck.applied_seq, 17);
        assert_eq!(ck.records_applied, 120);
        assert_eq!(ck.state_fp, state.state_fingerprint());

        // Corrupt marker → degraded start, not a panic.
        std::fs::write(dir.join(FILE), "{ not json").expect("corrupt");
        assert_eq!(load(&dir), None);
        // Wrong schema → same.
        std::fs::write(dir.join(FILE), r#"{"schema":"other/v9"}"#).expect("wrong schema");
        assert_eq!(load(&dir), None);
        // Absent → silent fresh start.
        std::fs::remove_file(dir.join(FILE)).expect("rm");
        assert_eq!(load(&dir), None);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
