//! A minimal hand-rolled HTTP/1.1 server for the query API.
//!
//! No HTTP library exists in this workspace, and the API surface is four
//! GET routes returning small JSON bodies — so this is a deliberately
//! tiny server: an accept thread that admits connections into a
//! fixed-capacity [`streamproc::BoundedQueue`], and N worker threads
//! that pop, parse one request, and answer from the current
//! [`IndexSnapshot`].
//!
//! The overload contract lives at admission: `try_push` never blocks and
//! never buffers beyond capacity. A full queue means the connection gets
//! an immediate `503 {"error":"overloaded"}` and a counted shed — memory
//! stays bounded no matter the offered load, and the books balance:
//! `queries_received == queries_served + queries_shed + query_errors`.
//! (Those counters are `sched.`-prefixed: which queries shed depends on
//! thread timing, so they are real observability but excluded from
//! determinism diffs.)
//!
//! Routes:
//!
//! - `GET /healthz` — liveness: the process accepts and answers.
//! - `GET /readyz` — readiness: 200 only while the served snapshot is
//!   fresher than the staleness bound; 503 with the same JSON body
//!   otherwise, so probes and humans see *why*.
//! - `GET /query?domain=NAME` — the impact answer, always carrying
//!   `staleness_s` and `degraded`.
//! - `GET /statz` — ingest progress, fingerprints, the serving-side
//!   query accounting (received/served/shed/errors), the last durable
//!   checkpoint sequence, and current SLO verdicts — one consistent
//!   snapshot for the CI gate and the watchdog.
//! - `GET /metricsz` — every registered metric as Prometheus text
//!   exposition (`obs::expo`), `text/plain`.
//! - `GET /seriesz?name=NAME&last=N` — a window of one live time series,
//!   split into deterministic fields and annotation.
//! - `GET /sloz` — SLO specs, deterministic verdict transitions, live
//!   burn rates, and the overload-vs-starvation diagnosis.
//!
//! Every route is instrumented with a `sched.daemon.http.requests.*`
//! counter and a `sched.daemon.http.latency_us.*` histogram (the route
//! key set is fixed, so the metric names stay `&'static`).
//!
//! Query strings are parsed by [`parse_query`], which treats hostile
//! input as a structured `400` rather than a fallthrough: duplicate
//! keys, bad `%`-escapes, oversized keys/values, unknown parameters,
//! and non-UTF-8 decodes are all named in the error body.

use crate::index::{BaselineSource, DomainDir, IndexSnapshot};
use crate::telemetry::Telemetry;
use obs::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use streamproc::{BoundedQueue, PushError, SwapCell};

/// Serving policy.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (tests).
    pub bind: String,
    pub workers: usize,
    /// Admission queue capacity; overflow sheds with a 503.
    pub queue_cap: usize,
    /// `/readyz` flips not-ready when the snapshot is staler than this.
    pub staleness_bound_s: u64,
    /// Artificial per-request delay — a test hook to force queue overflow
    /// deterministically-enough to assert shedding happens and is counted.
    pub handle_delay_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            bind: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            staleness_bound_s: 1800,
            handle_delay_ms: 0,
        }
    }
}

/// A running server; dropping it does NOT stop it — call [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<TcpStream>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving the snapshots published through `cell`.
    /// `telemetry` enables the live plane (`/seriesz`, `/sloz`, and the
    /// SLO block in `/statz`); without it those routes answer 404.
    pub fn start(
        cfg: &ServerConfig,
        cell: Arc<SwapCell<IndexSnapshot>>,
        dir: Arc<DomainDir>,
        telemetry: Option<Arc<Telemetry>>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::new(cfg.queue_cap.max(1)));

        let accept = {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    obs::counter("sched.daemon.queries_received").incr();
                    match queue.try_push(conn) {
                        Ok(()) => {}
                        Err(PushError::Full(conn)) | Err(PushError::Closed(conn)) => {
                            obs::counter("sched.daemon.queries_shed").incr();
                            // Drain the request before answering: closing a
                            // socket with unread data RSTs the connection and
                            // can discard the queued 503 — the client would
                            // see a reset, not the shed verdict. Bounded by a
                            // short timeout so a slow client cannot stall
                            // admission for long.
                            let _ = drain_request(&conn, Duration::from_millis(250));
                            let _ = respond(conn, 503, &{
                                let mut b = Json::obj();
                                b.set("error", Json::Str("overloaded".into()));
                                b
                            });
                        }
                    }
                }
            })
        };

        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let cell = Arc::clone(&cell);
                let dir = Arc::clone(&dir);
                let cfg = cfg.clone();
                let telemetry = telemetry.clone();
                std::thread::spawn(move || {
                    while let Some(conn) = queue.pop() {
                        if cfg.handle_delay_ms > 0 {
                            std::thread::sleep(Duration::from_millis(cfg.handle_delay_ms));
                        }
                        match handle(conn, &cell, &dir, &cfg, telemetry.as_deref()) {
                            Ok(()) => obs::counter("sched.daemon.queries_served").incr(),
                            Err(_) => obs::counter("sched.daemon.query_errors").incr(),
                        }
                    }
                })
            })
            .collect();

        Ok(Server { addr, stop, queue, accept: Some(accept), workers })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the admitted queue, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in accept(); poke it awake. The
        // wakeup connection is seen after `stop` and never counted.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Best-effort read of one request's head (request line + headers) so the
/// peer's send buffer is empty before we respond and close. Stops at the
/// blank line, EOF, an 8 KiB cap, or `timeout` — whichever comes first.
fn drain_request(mut conn: &TcpStream, timeout: Duration) -> std::io::Result<()> {
    conn.set_read_timeout(Some(timeout))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = conn.read(&mut chunk)?;
        if n == 0 {
            return Ok(());
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            return Ok(());
        }
    }
}

/// The fixed route-metric table. Unknown paths share the `other` pair,
/// so hostile path spam cannot grow the registry.
fn route_metrics(path: &str) -> (&'static str, &'static str) {
    match path {
        "/healthz" => {
            ("sched.daemon.http.requests.healthz", "sched.daemon.http.latency_us.healthz")
        }
        "/readyz" => ("sched.daemon.http.requests.readyz", "sched.daemon.http.latency_us.readyz"),
        "/statz" => ("sched.daemon.http.requests.statz", "sched.daemon.http.latency_us.statz"),
        "/query" => ("sched.daemon.http.requests.query", "sched.daemon.http.latency_us.query"),
        "/metricsz" => {
            ("sched.daemon.http.requests.metricsz", "sched.daemon.http.latency_us.metricsz")
        }
        "/seriesz" => {
            ("sched.daemon.http.requests.seriesz", "sched.daemon.http.latency_us.seriesz")
        }
        "/sloz" => ("sched.daemon.http.requests.sloz", "sched.daemon.http.latency_us.sloz"),
        _ => ("sched.daemon.http.requests.other", "sched.daemon.http.latency_us.other"),
    }
}

/// Read one request line + headers (8 KiB cap), route, respond.
fn handle(
    mut conn: TcpStream,
    cell: &SwapCell<IndexSnapshot>,
    dir: &DomainDir,
    cfg: &ServerConfig,
    telemetry: Option<&Telemetry>,
) -> std::io::Result<()> {
    conn.set_read_timeout(Some(Duration::from_secs(5)))?;
    conn.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = conn.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let request_line = text.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        let mut body = Json::obj();
        body.set("error", Json::Str("only GET is served".into()));
        return respond(conn, 405, &body);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let (requests, latency) = route_metrics(path);
    obs::counter(requests).incr();
    let started = Instant::now();
    let result = if path == "/metricsz" {
        // Text exposition, not JSON — rendered from the whole registry.
        respond_text(conn, 200, &obs::expo::render(&obs::registry().snapshot()))
    } else {
        let snap = cell.load();
        let (status, body) = route(path, query, &snap, dir, cfg, telemetry);
        respond(conn, status, &body)
    };
    obs::histogram(latency).record(started.elapsed().as_micros() as u64);
    result
}

/// Query-string hardening limits. Small on purpose: every legitimate
/// client of this API sends one short pair.
const MAX_QUERY_PAIRS: usize = 8;
const MAX_KEY_LEN: usize = 64;
const MAX_VALUE_LEN: usize = 256;
const MAX_QUERY_LEN: usize = 2048;

fn percent_decode(s: &str) -> Result<String, String> {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'%' => {
                let hex = bytes
                    .get(i + 1..i + 3)
                    .ok_or_else(|| format!("truncated %-escape in {s:?}"))?;
                let decode = |b: u8| (b as char).to_digit(16);
                let (hi, lo) = match (decode(hex[0]), decode(hex[1])) {
                    (Some(hi), Some(lo)) => (hi, lo),
                    _ => {
                        return Err(format!(
                            "bad %-escape %{} in {s:?}",
                            String::from_utf8_lossy(hex)
                        ))
                    }
                };
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8(out).map_err(|_| format!("{s:?} does not decode to UTF-8"))
}

/// Strict query-string parser: every key must be in `allowed`, appear at
/// most once, carry a `=`, decode cleanly, and fit the size limits. Any
/// violation is an `Err` naming the offending piece — the route turns it
/// into a structured 400, never a 404 fallthrough.
fn parse_query(raw: Option<&str>, allowed: &[&str]) -> Result<Vec<(String, String)>, String> {
    let Some(raw) = raw else { return Ok(Vec::new()) };
    if raw.is_empty() {
        return Ok(Vec::new());
    }
    if raw.len() > MAX_QUERY_LEN {
        return Err(format!("query string is {} bytes; max {MAX_QUERY_LEN}", raw.len()));
    }
    let mut pairs: Vec<(String, String)> = Vec::new();
    for kv in raw.split('&') {
        if kv.is_empty() {
            return Err("empty query parameter (stray '&')".into());
        }
        if pairs.len() >= MAX_QUERY_PAIRS {
            return Err(format!("more than {MAX_QUERY_PAIRS} query parameters"));
        }
        let Some((k, v)) = kv.split_once('=') else {
            return Err(format!("query parameter {kv:?} has no '='"));
        };
        if k.len() > MAX_KEY_LEN {
            return Err(format!("query key is {} bytes; max {MAX_KEY_LEN}", k.len()));
        }
        if v.len() > MAX_VALUE_LEN {
            return Err(format!("value of {k:?} is {} bytes; max {MAX_VALUE_LEN}", v.len()));
        }
        let k = percent_decode(k)?;
        let v = percent_decode(v)?;
        if !allowed.contains(&k.as_str()) {
            return Err(format!("unknown query parameter {k:?}; expected one of {allowed:?}"));
        }
        if pairs.iter().any(|(seen, _)| *seen == k) {
            return Err(format!("duplicate query parameter {k:?}"));
        }
        pairs.push((k, v));
    }
    Ok(pairs)
}

fn bad_request(detail: String) -> (u16, Json) {
    let mut b = Json::obj();
    b.set("error", Json::Str("bad query string".into()));
    b.set("detail", Json::Str(detail));
    (400, b)
}

fn param<'a>(pairs: &'a [(String, String)], key: &str) -> Option<&'a str> {
    pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
}

fn route(
    path: &str,
    query: Option<&str>,
    snap: &IndexSnapshot,
    dir: &DomainDir,
    cfg: &ServerConfig,
    telemetry: Option<&Telemetry>,
) -> (u16, Json) {
    match path {
        "/healthz" => {
            let mut b = Json::obj();
            b.set("ok", Json::Bool(true));
            (200, b)
        }
        "/readyz" => {
            let ready = snap.ready(cfg.staleness_bound_s);
            let mut b = Json::obj();
            b.set("ready", Json::Bool(ready));
            b.set("staleness_s", Json::U64(snap.staleness_s()));
            b.set("staleness_bound_s", Json::U64(cfg.staleness_bound_s));
            b.set("applied_seq", Json::U64(snap.applied_seq));
            (if ready { 200 } else { 503 }, b)
        }
        "/statz" => {
            let mut b = Json::obj();
            b.set("applied_seq", Json::U64(snap.applied_seq));
            b.set("total_batches", Json::U64(snap.total_batches));
            b.set("records_applied", Json::U64(snap.records_applied));
            b.set("episodes", Json::U64(snap.episodes));
            b.set("joined_rows", Json::U64(snap.joined_rows));
            b.set("clock_s", Json::U64(snap.clock.secs()));
            b.set("staleness_s", Json::U64(snap.staleness_s()));
            b.set("ready", Json::Bool(snap.ready(cfg.staleness_bound_s)));
            b.set("ingest_done", Json::Bool(snap.ingest_done()));
            b.set("state_fp", Json::Str(format!("{:#018x}", snap.state_fp)));
            if let Some(fp) = snap.full_fp {
                b.set("full_fp", Json::Str(format!("{fp:#018x}")));
            }
            // The serving-side accounting, in the same snapshot the CI
            // gate and the watchdog already poll: shedding was previously
            // visible only in the final report.
            b.set(
                "queries_received",
                Json::U64(obs::counter("sched.daemon.queries_received").get()),
            );
            b.set("queries_served", Json::U64(obs::counter("sched.daemon.queries_served").get()));
            b.set("queries_shed", Json::U64(obs::counter("sched.daemon.queries_shed").get()));
            b.set("query_errors", Json::U64(obs::counter("sched.daemon.query_errors").get()));
            if let Some(tel) = telemetry {
                b.set("checkpoint_seq", Json::U64(tel.checkpoint_seq()));
                b.set("slo", tel.statz_slo());
            }
            (200, b)
        }
        "/query" => {
            let pairs = match parse_query(query, &["domain"]) {
                Ok(p) => p,
                Err(e) => return bad_request(e),
            };
            let Some(name) = param(&pairs, "domain").filter(|v| !v.is_empty()) else {
                return bad_request("missing ?domain=NAME".into());
            };
            let Some((_, nsset)) = dir.lookup(name) else {
                let mut b = Json::obj();
                b.set("error", Json::Str(format!("unknown domain {name:?}")));
                return (404, b);
            };
            (200, answer(name, nsset.0, snap, cfg))
        }
        "/seriesz" => {
            let Some(tel) = telemetry else {
                let mut b = Json::obj();
                b.set("error", Json::Str("live telemetry is not enabled".into()));
                return (404, b);
            };
            let pairs = match parse_query(query, &["name", "last"]) {
                Ok(p) => p,
                Err(e) => return bad_request(e),
            };
            let Some(name) = param(&pairs, "name").filter(|v| !v.is_empty()) else {
                return bad_request("missing ?name=SERIES".into());
            };
            let last = match param(&pairs, "last") {
                None => 64,
                Some(raw) => match raw.parse::<usize>() {
                    Ok(n) if n >= 1 => n,
                    _ => return bad_request(format!("last={raw:?} is not a positive integer")),
                },
            };
            match tel.seriesz(name, last) {
                Some(body) => (200, body),
                None => {
                    let mut b = Json::obj();
                    b.set("error", Json::Str(format!("unknown series {name:?}")));
                    b.set(
                        "known",
                        Json::Array(
                            tel.series_names().into_iter().map(|(n, _)| Json::Str(n)).collect(),
                        ),
                    );
                    (404, b)
                }
            }
        }
        "/sloz" => {
            let Some(tel) = telemetry else {
                let mut b = Json::obj();
                b.set("error", Json::Str("live telemetry is not enabled".into()));
                return (404, b);
            };
            (200, tel.sloz())
        }
        _ => {
            let mut b = Json::obj();
            b.set("error", Json::Str(format!("no route {path:?}")));
            (404, b)
        }
    }
}

/// The impact answer for one domain. Degradation is part of the answer,
/// not a side channel: `staleness_s` is always present, and `degraded`
/// is true whenever the view is stale past the bound OR the impact ratio
/// rests on a fallback (week-before) or missing baseline.
fn answer(name: &str, nsset: u32, snap: &IndexSnapshot, cfg: &ServerConfig) -> Json {
    let mut b = Json::obj();
    b.set("domain", Json::Str(name.into()));
    b.set("nsset", Json::U64(nsset as u64));
    b.set("staleness_s", Json::U64(snap.staleness_s()));
    let stale = snap.staleness_s() > cfg.staleness_bound_s;
    match snap.nssets.get(&nsset) {
        Some(s) => {
            b.set("attacks_seen", Json::U64(s.attacks_seen));
            b.set(
                "under_attack",
                Json::Bool(s.last_attack_window.is_some_and(|w| w >= snap.horizon)),
            );
            b.set("peak_ppm", Json::F64(s.peak_ppm));
            if let Some(w) = s.first_attack_window {
                b.set("first_attack_window", Json::U64(w.0));
            }
            if let Some(w) = s.last_attack_window {
                b.set("last_attack_window", Json::U64(w.0));
            }
            if let Some(rtt) = s.during_rtt_ms {
                b.set("during_rtt_ms", Json::F64(rtt));
            }
            if let Some(r) = s.impact_on_rtt {
                b.set("impact_on_rtt", Json::F64(r));
            }
            if let Some(r) = s.worst_impact_on_rtt {
                b.set("worst_impact_on_rtt", Json::F64(r));
            }
            let baseline = s.baseline_source.unwrap_or(BaselineSource::Missing);
            let weak_baseline = s.during_rtt_ms.is_some() && baseline != BaselineSource::DayBefore;
            b.set("baseline_source", Json::Str(baseline.as_str().into()));
            b.set("degraded", Json::Bool(stale || weak_baseline));
        }
        None => {
            b.set("attacks_seen", Json::U64(0));
            b.set("under_attack", Json::Bool(false));
            b.set("baseline_source", Json::Str("none_needed".into()));
            b.set("degraded", Json::Bool(stale));
        }
    }
    b
}

fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    }
}

fn respond(conn: TcpStream, status: u16, body: &Json) -> std::io::Result<()> {
    respond_raw(conn, status, "application/json", &body.pretty())
}

/// Prometheus text exposition (`/metricsz`) — the one route whose body is
/// not JSON.
fn respond_text(conn: TcpStream, status: u16, payload: &str) -> std::io::Result<()> {
    respond_raw(conn, status, "text/plain; version=0.0.4", payload)
}

fn respond_raw(
    mut conn: TcpStream,
    status: u16,
    content_type: &str,
    payload: &str,
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len(),
        reason = status_reason(status),
    );
    conn.write_all(head.as_bytes())?;
    conn.write_all(payload.as_bytes())?;
    conn.flush()
}

/// A blocking one-shot GET client — enough for the CI gate, the query
/// load generator, and tests; no external curl required.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let mut conn = TcpStream::connect_timeout(&addr, timeout)?;
    conn.set_read_timeout(Some(timeout))?;
    conn.set_write_timeout(Some(timeout))?;
    conn.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: dnsimpactd\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = String::new();
    conn.read_to_string(&mut raw)?;
    let status = raw
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed response: {raw:?}"),
            )
        })?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}

#[cfg(test)]
mod tests {
    use super::{parse_query, percent_decode, MAX_QUERY_PAIRS};

    #[test]
    fn parse_query_accepts_the_legitimate_shapes() {
        assert_eq!(parse_query(None, &["domain"]).unwrap(), vec![]);
        assert_eq!(parse_query(Some(""), &["domain"]).unwrap(), vec![]);
        assert_eq!(
            parse_query(Some("domain=ns1.example.org"), &["domain"]).unwrap(),
            vec![("domain".to_string(), "ns1.example.org".to_string())]
        );
        assert_eq!(
            parse_query(Some("name=live.batches&last=8"), &["name", "last"]).unwrap(),
            vec![
                ("name".to_string(), "live.batches".to_string()),
                ("last".to_string(), "8".to_string())
            ]
        );
        // Percent-escapes and '+' decode before the allowlist check.
        assert_eq!(
            parse_query(Some("domain=a%2Eb+c"), &["domain"]).unwrap(),
            vec![("domain".to_string(), "a.b c".to_string())]
        );
    }

    #[test]
    fn parse_query_rejects_duplicate_keys() {
        let err = parse_query(Some("domain=a&domain=b"), &["domain"]).unwrap_err();
        assert!(err.contains("duplicate"), "got {err:?}");
        // Including duplicates smuggled through percent-encoding.
        let err = parse_query(Some("domain=a&%64omain=b"), &["domain"]).unwrap_err();
        assert!(err.contains("duplicate"), "got {err:?}");
    }

    #[test]
    fn parse_query_rejects_unknown_keys_and_bare_words() {
        let err = parse_query(Some("nope=1"), &["domain"]).unwrap_err();
        assert!(err.contains("unknown query parameter"), "got {err:?}");
        let err = parse_query(Some("domain"), &["domain"]).unwrap_err();
        assert!(err.contains("no '='"), "got {err:?}");
        let err = parse_query(Some("domain=a&&domain=b"), &["domain"]).unwrap_err();
        assert!(err.contains("stray"), "got {err:?}");
    }

    #[test]
    fn parse_query_rejects_percent_junk() {
        for raw in ["domain=%", "domain=%2", "domain=%zz", "domain=%G1abc"] {
            let err = parse_query(Some(raw), &["domain"]).unwrap_err();
            assert!(err.contains("%-escape"), "{raw:?} gave {err:?}");
        }
        // A valid escape that decodes to invalid UTF-8 is also junk.
        let err = parse_query(Some("domain=%ff%fe"), &["domain"]).unwrap_err();
        assert!(err.contains("UTF-8"), "got {err:?}");
    }

    #[test]
    fn parse_query_enforces_size_limits() {
        let big_value = format!("domain={}", "a".repeat(300));
        let err = parse_query(Some(&big_value), &["domain"]).unwrap_err();
        assert!(err.contains("max 256"), "got {err:?}");

        let big_key = format!("{}=1", "k".repeat(70));
        let err = parse_query(Some(&big_key), &["domain"]).unwrap_err();
        assert!(err.contains("max 64"), "got {err:?}");

        let allowed = ["k0", "k1", "k2", "k3", "k4", "k5", "k6", "k7", "k8"];
        let many: String = allowed.iter().map(|k| format!("{k}=x")).collect::<Vec<_>>().join("&");
        assert!(allowed.len() > MAX_QUERY_PAIRS);
        let err = parse_query(Some(&many), &allowed).unwrap_err();
        assert!(err.contains("more than"), "got {err:?}");

        let huge = format!("domain={}", "a".repeat(4000));
        let err = parse_query(Some(&huge), &["domain"]).unwrap_err();
        assert!(err.contains("query string is"), "got {err:?}");
    }

    #[test]
    fn percent_decode_roundtrips_plain_text() {
        assert_eq!(percent_decode("plain-text_1.2").unwrap(), "plain-text_1.2");
        assert_eq!(percent_decode("%41%2b").unwrap(), "A+");
        assert_eq!(percent_decode("a+b").unwrap(), "a b");
    }
}
