//! A minimal hand-rolled HTTP/1.1 server for the query API.
//!
//! No HTTP library exists in this workspace, and the API surface is four
//! GET routes returning small JSON bodies — so this is a deliberately
//! tiny server: an accept thread that admits connections into a
//! fixed-capacity [`streamproc::BoundedQueue`], and N worker threads
//! that pop, parse one request, and answer from the current
//! [`IndexSnapshot`].
//!
//! The overload contract lives at admission: `try_push` never blocks and
//! never buffers beyond capacity. A full queue means the connection gets
//! an immediate `503 {"error":"overloaded"}` and a counted shed — memory
//! stays bounded no matter the offered load, and the books balance:
//! `queries_received == queries_served + queries_shed + query_errors`.
//! (Those counters are `sched.`-prefixed: which queries shed depends on
//! thread timing, so they are real observability but excluded from
//! determinism diffs.)
//!
//! Routes:
//!
//! - `GET /healthz` — liveness: the process accepts and answers.
//! - `GET /readyz` — readiness: 200 only while the served snapshot is
//!   fresher than the staleness bound; 503 with the same JSON body
//!   otherwise, so probes and humans see *why*.
//! - `GET /query?domain=NAME` — the impact answer, always carrying
//!   `staleness_s` and `degraded`.
//! - `GET /statz` — ingest progress and fingerprints, for the CI gate.

use crate::index::{BaselineSource, DomainDir, IndexSnapshot};
use obs::Json;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;
use streamproc::{BoundedQueue, PushError, SwapCell};

/// Serving policy.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address; port 0 picks a free port (tests).
    pub bind: String,
    pub workers: usize,
    /// Admission queue capacity; overflow sheds with a 503.
    pub queue_cap: usize,
    /// `/readyz` flips not-ready when the snapshot is staler than this.
    pub staleness_bound_s: u64,
    /// Artificial per-request delay — a test hook to force queue overflow
    /// deterministically-enough to assert shedding happens and is counted.
    pub handle_delay_ms: u64,
}

impl Default for ServerConfig {
    fn default() -> ServerConfig {
        ServerConfig {
            bind: "127.0.0.1:0".into(),
            workers: 4,
            queue_cap: 64,
            staleness_bound_s: 1800,
            handle_delay_ms: 0,
        }
    }
}

/// A running server; dropping it does NOT stop it — call [`Server::shutdown`].
pub struct Server {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    queue: Arc<BoundedQueue<TcpStream>>,
    accept: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Bind and start serving the snapshots published through `cell`.
    pub fn start(
        cfg: &ServerConfig,
        cell: Arc<SwapCell<IndexSnapshot>>,
        dir: Arc<DomainDir>,
    ) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&cfg.bind)?;
        let addr = listener.local_addr()?;
        let stop = Arc::new(AtomicBool::new(false));
        let queue = Arc::new(BoundedQueue::new(cfg.queue_cap.max(1)));

        let accept = {
            let stop = Arc::clone(&stop);
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                for conn in listener.incoming() {
                    if stop.load(Ordering::SeqCst) {
                        break;
                    }
                    let Ok(conn) = conn else { continue };
                    obs::counter("sched.daemon.queries_received").incr();
                    match queue.try_push(conn) {
                        Ok(()) => {}
                        Err(PushError::Full(conn)) | Err(PushError::Closed(conn)) => {
                            obs::counter("sched.daemon.queries_shed").incr();
                            // Drain the request before answering: closing a
                            // socket with unread data RSTs the connection and
                            // can discard the queued 503 — the client would
                            // see a reset, not the shed verdict. Bounded by a
                            // short timeout so a slow client cannot stall
                            // admission for long.
                            let _ = drain_request(&conn, Duration::from_millis(250));
                            let _ = respond(conn, 503, &{
                                let mut b = Json::obj();
                                b.set("error", Json::Str("overloaded".into()));
                                b
                            });
                        }
                    }
                }
            })
        };

        let workers = (0..cfg.workers.max(1))
            .map(|_| {
                let queue = Arc::clone(&queue);
                let cell = Arc::clone(&cell);
                let dir = Arc::clone(&dir);
                let cfg = cfg.clone();
                std::thread::spawn(move || {
                    while let Some(conn) = queue.pop() {
                        if cfg.handle_delay_ms > 0 {
                            std::thread::sleep(Duration::from_millis(cfg.handle_delay_ms));
                        }
                        match handle(conn, &cell, &dir, &cfg) {
                            Ok(()) => obs::counter("sched.daemon.queries_served").incr(),
                            Err(_) => obs::counter("sched.daemon.query_errors").incr(),
                        }
                    }
                })
            })
            .collect();

        Ok(Server { addr, stop, queue, accept: Some(accept), workers })
    }

    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stop accepting, drain the admitted queue, join every thread.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::SeqCst);
        // The accept loop is blocked in accept(); poke it awake. The
        // wakeup connection is seen after `stop` and never counted.
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.accept.take() {
            let _ = h.join();
        }
        self.queue.close();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// Best-effort read of one request's head (request line + headers) so the
/// peer's send buffer is empty before we respond and close. Stops at the
/// blank line, EOF, an 8 KiB cap, or `timeout` — whichever comes first.
fn drain_request(mut conn: &TcpStream, timeout: Duration) -> std::io::Result<()> {
    conn.set_read_timeout(Some(timeout))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = conn.read(&mut chunk)?;
        if n == 0 {
            return Ok(());
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            return Ok(());
        }
    }
}

/// Read one request line + headers (8 KiB cap), route, respond.
fn handle(
    mut conn: TcpStream,
    cell: &SwapCell<IndexSnapshot>,
    dir: &DomainDir,
    cfg: &ServerConfig,
) -> std::io::Result<()> {
    conn.set_read_timeout(Some(Duration::from_secs(5)))?;
    conn.set_write_timeout(Some(Duration::from_secs(5)))?;
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = conn.read(&mut chunk)?;
        if n == 0 {
            break;
        }
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() > 8192 {
            break;
        }
    }
    let text = String::from_utf8_lossy(&buf);
    let request_line = text.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, target) = (parts.next().unwrap_or(""), parts.next().unwrap_or(""));
    if method != "GET" {
        let mut body = Json::obj();
        body.set("error", Json::Str("only GET is served".into()));
        return respond(conn, 405, &body);
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };
    let snap = cell.load();
    let (status, body) = route(path, query, &snap, dir, cfg);
    respond(conn, status, &body)
}

fn route(
    path: &str,
    query: Option<&str>,
    snap: &IndexSnapshot,
    dir: &DomainDir,
    cfg: &ServerConfig,
) -> (u16, Json) {
    match path {
        "/healthz" => {
            let mut b = Json::obj();
            b.set("ok", Json::Bool(true));
            (200, b)
        }
        "/readyz" => {
            let ready = snap.ready(cfg.staleness_bound_s);
            let mut b = Json::obj();
            b.set("ready", Json::Bool(ready));
            b.set("staleness_s", Json::U64(snap.staleness_s()));
            b.set("staleness_bound_s", Json::U64(cfg.staleness_bound_s));
            b.set("applied_seq", Json::U64(snap.applied_seq));
            (if ready { 200 } else { 503 }, b)
        }
        "/statz" => {
            let mut b = Json::obj();
            b.set("applied_seq", Json::U64(snap.applied_seq));
            b.set("total_batches", Json::U64(snap.total_batches));
            b.set("records_applied", Json::U64(snap.records_applied));
            b.set("episodes", Json::U64(snap.episodes));
            b.set("joined_rows", Json::U64(snap.joined_rows));
            b.set("clock_s", Json::U64(snap.clock.secs()));
            b.set("staleness_s", Json::U64(snap.staleness_s()));
            b.set("ready", Json::Bool(snap.ready(cfg.staleness_bound_s)));
            b.set("ingest_done", Json::Bool(snap.ingest_done()));
            b.set("state_fp", Json::Str(format!("{:#018x}", snap.state_fp)));
            if let Some(fp) = snap.full_fp {
                b.set("full_fp", Json::Str(format!("{fp:#018x}")));
            }
            (200, b)
        }
        "/query" => {
            let Some(name) = query.and_then(|q| {
                q.split('&').find_map(|kv| kv.strip_prefix("domain=")).filter(|v| !v.is_empty())
            }) else {
                let mut b = Json::obj();
                b.set("error", Json::Str("missing ?domain=NAME".into()));
                return (400, b);
            };
            let Some((_, nsset)) = dir.lookup(name) else {
                let mut b = Json::obj();
                b.set("error", Json::Str(format!("unknown domain {name:?}")));
                return (404, b);
            };
            (200, answer(name, nsset.0, snap, cfg))
        }
        _ => {
            let mut b = Json::obj();
            b.set("error", Json::Str(format!("no route {path:?}")));
            (404, b)
        }
    }
}

/// The impact answer for one domain. Degradation is part of the answer,
/// not a side channel: `staleness_s` is always present, and `degraded`
/// is true whenever the view is stale past the bound OR the impact ratio
/// rests on a fallback (week-before) or missing baseline.
fn answer(name: &str, nsset: u32, snap: &IndexSnapshot, cfg: &ServerConfig) -> Json {
    let mut b = Json::obj();
    b.set("domain", Json::Str(name.into()));
    b.set("nsset", Json::U64(nsset as u64));
    b.set("staleness_s", Json::U64(snap.staleness_s()));
    let stale = snap.staleness_s() > cfg.staleness_bound_s;
    match snap.nssets.get(&nsset) {
        Some(s) => {
            b.set("attacks_seen", Json::U64(s.attacks_seen));
            b.set(
                "under_attack",
                Json::Bool(s.last_attack_window.is_some_and(|w| w >= snap.horizon)),
            );
            b.set("peak_ppm", Json::F64(s.peak_ppm));
            if let Some(w) = s.first_attack_window {
                b.set("first_attack_window", Json::U64(w.0));
            }
            if let Some(w) = s.last_attack_window {
                b.set("last_attack_window", Json::U64(w.0));
            }
            if let Some(rtt) = s.during_rtt_ms {
                b.set("during_rtt_ms", Json::F64(rtt));
            }
            if let Some(r) = s.impact_on_rtt {
                b.set("impact_on_rtt", Json::F64(r));
            }
            if let Some(r) = s.worst_impact_on_rtt {
                b.set("worst_impact_on_rtt", Json::F64(r));
            }
            let baseline = s.baseline_source.unwrap_or(BaselineSource::Missing);
            let weak_baseline = s.during_rtt_ms.is_some() && baseline != BaselineSource::DayBefore;
            b.set("baseline_source", Json::Str(baseline.as_str().into()));
            b.set("degraded", Json::Bool(stale || weak_baseline));
        }
        None => {
            b.set("attacks_seen", Json::U64(0));
            b.set("under_attack", Json::Bool(false));
            b.set("baseline_source", Json::Str("none_needed".into()));
            b.set("degraded", Json::Bool(stale));
        }
    }
    b
}

fn respond(mut conn: TcpStream, status: u16, body: &Json) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let payload = body.pretty();
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: application/json\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        payload.len()
    );
    conn.write_all(head.as_bytes())?;
    conn.write_all(payload.as_bytes())?;
    conn.flush()
}

/// A blocking one-shot GET client — enough for the CI gate, the query
/// load generator, and tests; no external curl required.
pub fn http_get(addr: SocketAddr, path: &str, timeout: Duration) -> std::io::Result<(u16, String)> {
    let mut conn = TcpStream::connect_timeout(&addr, timeout)?;
    conn.set_read_timeout(Some(timeout))?;
    conn.set_write_timeout(Some(timeout))?;
    conn.write_all(
        format!("GET {path} HTTP/1.1\r\nHost: dnsimpactd\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    let mut raw = String::new();
    conn.read_to_string(&mut raw)?;
    let status = raw
        .lines()
        .next()
        .and_then(|l| l.split_whitespace().nth(1))
        .and_then(|s| s.parse::<u16>().ok())
        .ok_or_else(|| {
            std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("malformed response: {raw:?}"),
            )
        })?;
    let body = raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    Ok((status, body))
}
