//! The supervised ingest loop: feed batches → at-least-once transport →
//! in-order apply → snapshot publish → checkpoint.
//!
//! Batches cross [`streamproc::reliable_stream`] in segments: sequence
//! numbers, chaos-transport dedup/re-ordering, gap-detecting retransmit
//! rounds, and a bounded fault-free final round guarantee each segment
//! arrives complete and in order whatever a chaos plan does to it. The
//! apply side is therefore exactly-once by construction, and the index
//! stays a pure function of the batch prefix for any chaos seed.
//!
//! Recovery ([`Ingestor::recover`]) is checkpoint + feed replay: read the
//! marker, re-apply batches `0..applied_seq` straight from the
//! regenerated feed (no transport, no pacing), and prove the replayed
//! prefix fingerprints to exactly what the dead daemon had durably
//! claimed. A missing or lying marker degrades to a full replay — the
//! daemon never serves a state it cannot derive from the feed.

use crate::checkpoint;
use crate::feed::{FeedBatch, FeedSource};
use crate::index::{IndexSnapshot, IndexState};
use crate::telemetry::Telemetry;
use std::path::PathBuf;
use std::sync::Arc;
use streamproc::{
    reliable_stream, ChaosConfig, FaultPlan, SuperviseStats, SupervisorConfig, SwapCell,
};

/// Ingest policy.
#[derive(Clone, Debug)]
pub struct IngestConfig {
    /// Chaos-inject the transport (None = clean runs are free).
    pub chaos_seed: Option<u64>,
    pub supervisor: SupervisorConfig,
    /// Batches per `reliable_stream` segment.
    pub segment: usize,
    /// Sleep between applied batches — lets an external observer (the CI
    /// gate, a human with curl) watch staleness evolve and kill the
    /// daemon mid-ingest.
    pub pace_ms: u64,
    /// Where the progress marker lives; None = no durability (tests).
    pub checkpoint_dir: Option<PathBuf>,
}

impl Default for IngestConfig {
    fn default() -> IngestConfig {
        IngestConfig {
            chaos_seed: None,
            supervisor: SupervisorConfig::default(),
            segment: 64,
            pace_ms: 0,
            checkpoint_dir: None,
        }
    }
}

/// Owns the mutable index and the publish cell.
pub struct Ingestor<'a> {
    source: &'a FeedSource,
    cfg: IngestConfig,
    pub state: IndexState,
    cell: Arc<SwapCell<IndexSnapshot>>,
    telemetry: Option<Arc<Telemetry>>,
}

impl<'a> Ingestor<'a> {
    pub fn new(
        source: &'a FeedSource,
        cfg: IngestConfig,
        cell: Arc<SwapCell<IndexSnapshot>>,
    ) -> Ingestor<'a> {
        Ingestor { source, cfg, state: IndexState::default(), cell, telemetry: None }
    }

    /// Attach the live telemetry plane: every applied batch — live or
    /// recovery replay — becomes one tick, so the stored series stays a
    /// pure function of the applied feed prefix.
    pub fn with_telemetry(mut self, telemetry: Arc<Telemetry>) -> Ingestor<'a> {
        self.telemetry = Some(telemetry);
        self
    }

    fn tick(&self) {
        if let Some(t) = &self.telemetry {
            t.tick(&self.state, self.source.batches.len() as u64);
        }
    }

    /// Recover from the checkpoint marker (if any): replay the claimed
    /// prefix from the feed and verify the fingerprint. Returns the
    /// number of batches replayed (0 = fresh start).
    pub fn recover(&mut self) -> u64 {
        let Some(dir) = self.cfg.checkpoint_dir.clone() else { return 0 };
        let Some(ck) = checkpoint::load(&dir) else { return 0 };
        let upto = (ck.applied_seq as usize).min(self.source.batches.len());
        for batch in &self.source.batches[..upto] {
            self.state.apply(&self.source.world, batch);
            self.tick();
        }
        if self.state.state_fingerprint() != ck.state_fp
            || self.state.records_applied != ck.records_applied
        {
            // The marker lies (torn feed config? foreign file?). Serving
            // a state the feed cannot derive is worse than a slow start.
            obs::progress(
                "daemon",
                "checkpoint fingerprint mismatch after replay; discarding and starting clean",
            );
            obs::counter("daemon.ckpt_mismatch").incr();
            self.state = IndexState::default();
            if let Some(t) = &self.telemetry {
                // The replayed ticks described a discarded state; the
                // clean restart regrows the series from tick 1.
                t.reset();
            }
            return 0;
        }
        obs::counter("daemon.replay_batches").add(upto as u64);
        self.publish(false);
        obs::progress(
            "daemon",
            &format!("recovered: replayed {upto} batches to fingerprint {:#018x}", ck.state_fp),
        );
        upto as u64
    }

    /// Ingest everything past the current `applied_seq` through the
    /// supervised transport; publish and checkpoint after every batch.
    /// The final publish carries the full (columnar) fingerprint.
    pub fn run(&mut self) -> SuperviseStats {
        let plan_base = self
            .cfg
            .chaos_seed
            .map(|s| FaultPlan::from_seed(s, "dnsimpactd-feed", ChaosConfig::CALIBRATED));
        let mut stats = SuperviseStats::default();
        let total = self.source.batches.len();
        let seg = self.cfg.segment.max(1);
        let mut next = self.state.applied_seq as usize;
        while next < total {
            let end = (next + seg).min(total);
            let segment: Vec<FeedBatch> = self.source.batches[next..end].to_vec();
            // Per-segment sub-plans keep fault schedules independent of
            // segment boundaries' absolute position in the run.
            let plan = plan_base.map(|p| p.for_substream((next / seg) as u64));
            let (delivered, s) =
                reliable_stream("dnsimpactd-feed", segment, plan.as_ref(), &self.cfg.supervisor);
            stats.merge(&s);
            for batch in &delivered {
                self.state.apply(&self.source.world, batch);
                self.tick();
                self.publish(false);
                if let Some(dir) = self.cfg.checkpoint_dir.clone() {
                    match checkpoint::save(&dir, &self.state) {
                        Ok(()) => {
                            if let Some(t) = &self.telemetry {
                                t.note_checkpoint(self.state.applied_seq);
                            }
                        }
                        Err(e) => {
                            // Durability is degraded, serving is not: keep
                            // going, count it, and say so.
                            obs::progress("daemon", &format!("checkpoint write failed: {e}"));
                            obs::counter("daemon.ckpt_write_errors").incr();
                        }
                    }
                }
                if self.cfg.pace_ms > 0 {
                    std::thread::sleep(std::time::Duration::from_millis(self.cfg.pace_ms));
                }
            }
            next = end;
        }
        self.publish(true);
        stats
    }

    fn publish(&self, with_full_fp: bool) {
        self.cell.store(self.state.snapshot(self.source.batches.len() as u64, with_full_fp));
        obs::counter("daemon.snapshots_published").incr();
    }

    /// Convenience for harnesses: recover (if configured) then ingest to
    /// completion, returning the transport stats.
    pub fn recover_and_run(&mut self) -> SuperviseStats {
        self.recover();
        self.run()
    }
}

#[cfg(test)]
mod tests {
    use attack::Protocol;
    use simcore::time::Window;
    use streamproc::Topic;
    use telescope::{AttackEpisode, EpisodeBlock, EpisodeColumns};

    fn episode(victim: &str, w0: u64, w1: u64) -> AttackEpisode {
        AttackEpisode {
            victim: victim.parse().unwrap(),
            first_window: Window(w0),
            last_window: Window(w1),
            packets: 4_000,
            peak_ppm: 123.5,
            protocol: Protocol::Udp,
            first_port: 53,
            unique_ports: 3,
            slash16s: 40,
        }
    }

    /// Blocks are the feed's transport form: fanning one out to N topic
    /// consumers clones a refcount, not the rows. Every consumer sees the
    /// same arena and ingests to exactly the columns the row path builds.
    #[test]
    fn episode_block_fans_out_by_refcount_not_copy() {
        let rows = vec![
            episode("203.0.113.5", 3, 7),
            episode("203.0.113.9", 4, 4),
            episode("203.0.113.5", 40, 44),
        ];
        let block = EpisodeBlock::from_episodes(&rows);

        let topic: Topic<EpisodeBlock> = Topic::new("episodes");
        let a = topic.subscribe();
        let b = topic.subscribe();
        topic.publish(block.clone());
        topic.close();

        let got_a = a.recv().expect("consumer a gets the block");
        let got_b = b.recv().expect("consumer b gets the block");
        assert!(EpisodeBlock::same_arena(&got_a, &block), "fan-out must share the arena");
        assert!(EpisodeBlock::same_arena(&got_b, &block), "fan-out must share the arena");

        let reference = EpisodeColumns::from_episodes(&rows);
        for got in [got_a, got_b] {
            let mut cols = EpisodeColumns::default();
            cols.push_block(&got);
            assert_eq!(format!("{cols:?}"), format!("{reference:?}"), "block ingest diverged");
        }
    }
}
