//! Authoritative answer construction for the per-query simulation path.
//!
//! The per-query fidelity builds real wire messages so the measurement loop
//! exercises `dnswire` end to end: query → encode → (simulated network) →
//! decode → authoritative answer → encode → decode.

use crate::ids::{DomainId, NsSetId};
use crate::infra::Infra;
use dnswire::{Message, Name, RData, Rcode, Record, RrType};

/// Default TTL for NS records in synthesized zones (seconds).
pub const NS_TTL: u32 = 3_600;
/// Default TTL for glue A records.
pub const GLUE_TTL: u32 = 3_600;

/// Build the authoritative response a healthy nameserver returns to an
/// explicit `NS` query for `domain`.
pub fn answer_ns_query(infra: &Infra, domain: DomainId, query: &Message) -> Message {
    let rec = infra.domain(domain);
    let mut resp = Message::response_to(query, Rcode::NoError, true);
    let set = infra.nsset(rec.nsset);
    for &ns in set.members() {
        let n = infra.nameserver(ns);
        resp.answers.push(Record::new(rec.name.clone(), NS_TTL, RData::Ns(n.name.clone())));
        resp.additionals.push(Record::new(n.name.clone(), GLUE_TTL, RData::A(n.addr)));
    }
    resp
}

/// Build a SERVFAIL response (an overloaded-but-responsive server).
pub fn answer_servfail(query: &Message) -> Message {
    Message::response_to(query, Rcode::ServFail, false)
}

/// Build the explicit, non-recursive `NS` query OpenINTEL sends for a
/// domain.
pub fn ns_query(id: u16, name: Name) -> Message {
    Message::query(id, name, RrType::Ns)
}

/// Extract the nameserver hostnames from an NS answer (the parent/child
/// consistency checks in the real platform start from this).
pub fn ns_names(answer: &Message) -> Vec<Name> {
    answer
        .answers
        .iter()
        .filter_map(|r| match &r.rdata {
            RData::Ns(n) => Some(n.clone()),
            _ => None,
        })
        .collect()
}

/// Round-trip a message through its wire encoding, as the simulated network
/// does. Panics on internal inconsistency (an encode/decode mismatch is a
/// bug, not a runtime condition).
pub fn via_wire(msg: &Message) -> Message {
    Message::decode(&msg.encode()).expect("self-encoded message must decode")
}

/// Summary of one domain's delegation as the measurement platform records
/// it on a healthy day: the NSSet and the glue addresses.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Delegation {
    pub domain: DomainId,
    pub nsset: NsSetId,
    pub ns_addrs: Vec<std::net::Ipv4Addr>,
}

/// Resolve the delegation (ground truth; what a successful measurement
/// learns).
pub fn delegation(infra: &Infra, domain: DomainId) -> Delegation {
    let rec = infra.domain(domain);
    Delegation {
        domain,
        nsset: rec.nsset,
        ns_addrs: infra
            .nsset(rec.nsset)
            .members()
            .iter()
            .map(|&n| infra.nameserver(n).addr)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use netbase::Asn;

    fn world() -> (Infra, DomainId) {
        let mut infra = Infra::new();
        let a = infra.add_nameserver(
            "ns0.transip.net".parse().unwrap(),
            "195.135.195.195".parse().unwrap(),
            Asn(20857),
            Deployment::Unicast,
            10_000.0,
            100.0,
            15.0,
        );
        let b = infra.add_nameserver(
            "ns1.transip.nl".parse().unwrap(),
            "195.8.195.195".parse().unwrap(),
            Asn(20857),
            Deployment::Unicast,
            10_000.0,
            100.0,
            15.0,
        );
        let set = infra.intern_nsset(vec![a, b]);
        let d = infra.add_domain("klant.nl".parse().unwrap(), set);
        (infra, d)
    }

    #[test]
    fn ns_answer_contains_full_set_with_glue() {
        let (infra, d) = world();
        let q = ns_query(77, "klant.nl".parse().unwrap());
        let resp = answer_ns_query(&infra, d, &q);
        assert_eq!(resp.header.id, 77);
        assert!(resp.header.flags.aa);
        assert_eq!(resp.rcode(), Rcode::NoError);
        assert_eq!(resp.answers.len(), 2);
        assert_eq!(resp.additionals.len(), 2);
        let names = ns_names(&resp);
        assert!(names.contains(&"ns0.transip.net".parse().unwrap()));
        assert!(names.contains(&"ns1.transip.nl".parse().unwrap()));
    }

    #[test]
    fn answer_survives_the_wire() {
        let (infra, d) = world();
        let q = ns_query(1, "klant.nl".parse().unwrap());
        let resp = answer_ns_query(&infra, d, &via_wire(&q));
        assert_eq!(via_wire(&resp), resp);
    }

    #[test]
    fn servfail_is_not_authoritative() {
        let q = ns_query(5, "klant.nl".parse().unwrap());
        let r = answer_servfail(&q);
        assert_eq!(r.rcode(), Rcode::ServFail);
        assert!(!r.header.flags.aa);
        assert!(r.answers.is_empty());
    }

    #[test]
    fn delegation_ground_truth() {
        let (infra, d) = world();
        let del = delegation(&infra, d);
        assert_eq!(del.ns_addrs.len(), 2);
        assert!(del.ns_addrs.contains(&"195.135.195.195".parse().unwrap()));
    }

    #[test]
    fn ns_query_is_nonrecursive_ns_type() {
        let q = ns_query(9, "mil.ru".parse().unwrap());
        assert_eq!(q.questions[0].rtype, RrType::Ns);
        assert!(!q.header.flags.rd);
    }
}
