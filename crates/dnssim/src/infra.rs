//! The infrastructure registry: domains, NSSets, nameservers, /24 uplinks,
//! and the per-window attack-load book.

use crate::deploy::{Deployment, Nameserver, Uplink};
use crate::ids::{DomainId, NsId, NsSet, NsSetId};
use crate::load::{LoadModel, ServiceState};
use dnswire::Name;
use netbase::{Asn, Slash24};
use simcore::time::Window;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// A registered domain: its name and the NSSet it delegates to.
///
/// `nsset` is the *child* (authoritative-zone) NS set — what an explicit
/// NS query answered by the authoritative servers returns, and what
/// OpenINTEL records (it "prefers the authoritative answer", §3.2).
/// `parent_nsset`, when present, is an *inconsistent parent-side
/// delegation* (the TLD zone lists different servers): resolution must
/// reach the parent-listed servers first, so their health — not the child
/// set's — gates reachability.
#[derive(Clone, Debug)]
pub struct DomainRec {
    pub name: Name,
    pub nsset: NsSetId,
    /// Parent-zone delegation when it disagrees with the child (lame or
    /// stale delegations à la Sommese et al. "When Parents and Children
    /// Disagree"). `None` = consistent.
    pub parent_nsset: Option<NsSetId>,
}

impl DomainRec {
    /// The NS set a resolver actually has to query through: the parent
    /// delegation when inconsistent, else the (identical) child set.
    pub fn query_nsset(&self) -> NsSetId {
        self.parent_nsset.unwrap_or(self.nsset)
    }

    pub fn is_inconsistent(&self) -> bool {
        self.parent_nsset.is_some_and(|p| p != self.nsset)
    }
}

/// Default uplink capacity (pps) given to a /24 that was not configured
/// explicitly: generous enough that only volumetric attacks congest it.
pub const DEFAULT_UPLINK_PPS: f64 = 2_000_000.0;

/// The simulated authoritative-DNS world.
#[derive(Clone, Debug, Default)]
pub struct Infra {
    nameservers: Vec<Nameserver>,
    by_addr: HashMap<Ipv4Addr, NsId>,
    nssets: Vec<NsSet>,
    nsset_ids: HashMap<NsSet, NsSetId>,
    /// For each nameserver, the NSSets it belongs to.
    sets_of_ns: Vec<Vec<NsSetId>>,
    domains: Vec<DomainRec>,
    domains_of_set: Vec<Vec<DomainId>>,
    uplinks: HashMap<Slash24, Uplink>,
    pub load_model: LoadModel,
}

impl Infra {
    pub fn new() -> Infra {
        Infra::default()
    }

    /// Register a nameserver. The service address must be unique.
    #[allow(clippy::too_many_arguments)]
    pub fn add_nameserver(
        &mut self,
        name: Name,
        addr: Ipv4Addr,
        asn: Asn,
        deployment: Deployment,
        capacity_pps: f64,
        legit_pps: f64,
        base_rtt_ms: f64,
    ) -> NsId {
        assert!(!self.by_addr.contains_key(&addr), "nameserver address {addr} already registered");
        let id = NsId(self.nameservers.len() as u32);
        self.nameservers.push(Nameserver {
            id,
            name,
            addr,
            asn,
            deployment,
            capacity_pps,
            legit_pps,
            base_rtt_ms,
            open_resolver: false,
            dual_stack_shared: None,
        });
        self.sets_of_ns.push(Vec::new());
        self.by_addr.insert(addr, id);
        id
    }

    /// Mark an address as an open resolver (misconfigured domains point NS
    /// records at these; the paper filters them out of the analysis, §6.1).
    pub fn mark_open_resolver(&mut self, ns: NsId) {
        self.nameservers[ns.0 as usize].open_resolver = true;
    }

    /// Declare the nameserver dual-stack: `shared = true` when IPv4 and
    /// IPv6 terminate on the same servers/links, `false` when IPv6 runs on
    /// separate infrastructure.
    pub fn set_dual_stack(&mut self, ns: NsId, shared: bool) {
        self.nameservers[ns.0 as usize].dual_stack_shared = Some(shared);
    }

    /// Intern an NSSet, returning a stable id for the canonical member set.
    pub fn intern_nsset(&mut self, members: Vec<NsId>) -> NsSetId {
        let set = NsSet::new(members);
        if let Some(&id) = self.nsset_ids.get(&set) {
            return id;
        }
        let id = NsSetId(self.nssets.len() as u32);
        for &ns in set.members() {
            self.sets_of_ns[ns.0 as usize].push(id);
        }
        self.nsset_ids.insert(set.clone(), id);
        self.nssets.push(set);
        self.domains_of_set.push(Vec::new());
        id
    }

    /// Register a domain with a consistent delegation to `nsset`.
    pub fn add_domain(&mut self, name: Name, nsset: NsSetId) -> DomainId {
        let id = DomainId(self.domains.len() as u32);
        self.domains.push(DomainRec { name, nsset, parent_nsset: None });
        self.domains_of_set[nsset.0 as usize].push(id);
        id
    }

    /// Register a domain whose parent-zone delegation disagrees with the
    /// authoritative (child) NS set. Measurement attribution follows the
    /// child set (the authoritative answer OpenINTEL prefers);
    /// reachability follows the parent.
    pub fn add_domain_inconsistent(
        &mut self,
        name: Name,
        child: NsSetId,
        parent: NsSetId,
    ) -> DomainId {
        let id = DomainId(self.domains.len() as u32);
        self.domains.push(DomainRec { name, nsset: child, parent_nsset: Some(parent) });
        self.domains_of_set[child.0 as usize].push(id);
        id
    }

    /// Configure the shared uplink of a /24 explicitly.
    pub fn set_uplink(&mut self, uplink: Uplink) {
        self.uplinks.insert(uplink.prefix, uplink);
    }

    // ------------------------------------------------------------------
    // Lookups
    // ------------------------------------------------------------------

    pub fn nameserver(&self, id: NsId) -> &Nameserver {
        &self.nameservers[id.0 as usize]
    }
    pub fn nameservers(&self) -> &[Nameserver] {
        &self.nameservers
    }
    pub fn ns_by_addr(&self, addr: Ipv4Addr) -> Option<NsId> {
        self.by_addr.get(&addr).copied()
    }
    pub fn nsset(&self, id: NsSetId) -> &NsSet {
        &self.nssets[id.0 as usize]
    }
    pub fn nsset_count(&self) -> usize {
        self.nssets.len()
    }
    pub fn nssets_of_ns(&self, ns: NsId) -> &[NsSetId] {
        &self.sets_of_ns[ns.0 as usize]
    }
    pub fn domain(&self, id: DomainId) -> &DomainRec {
        &self.domains[id.0 as usize]
    }
    pub fn domain_count(&self) -> usize {
        self.domains.len()
    }
    pub fn domains_of_nsset(&self, id: NsSetId) -> &[DomainId] {
        &self.domains_of_set[id.0 as usize]
    }
    pub fn uplink_capacity(&self, prefix: Slash24) -> f64 {
        self.uplinks.get(&prefix).map(|u| u.capacity_pps).unwrap_or(DEFAULT_UPLINK_PPS)
    }

    /// All nameservers in a /24 (the subnet-level join the longitudinal
    /// analysis performs).
    pub fn nameservers_in_slash24(&self, prefix: Slash24) -> Vec<NsId> {
        self.nameservers.iter().filter(|n| n.slash24() == prefix).map(|n| n.id).collect()
    }

    // ------------------------------------------------------------------
    // NSSet deployment metadata (the resilience dimensions of §6.6)
    // ------------------------------------------------------------------

    /// Distinct origin ASes of the set's nameservers.
    pub fn nsset_asns(&self, id: NsSetId) -> Vec<Asn> {
        let mut v: Vec<Asn> =
            self.nsset(id).members().iter().map(|&n| self.nameserver(n).asn).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Distinct /24 prefixes of the set's nameservers.
    pub fn nsset_slash24s(&self, id: NsSetId) -> Vec<Slash24> {
        let mut v: Vec<Slash24> =
            self.nsset(id).members().iter().map(|&n| self.nameserver(n).slash24()).collect();
        v.sort();
        v.dedup();
        v
    }

    /// Anycast adoption inside the set: `(anycast_members, total_members)`.
    pub fn nsset_anycast(&self, id: NsSetId) -> (usize, usize) {
        let set = self.nsset(id);
        let any =
            set.members().iter().filter(|&&n| self.nameserver(n).deployment.is_anycast()).count();
        (any, set.len())
    }

    // ------------------------------------------------------------------
    // Service quality under load
    // ------------------------------------------------------------------

    /// Service state of `ns` in `window` given the attack-load book, as
    /// seen from the default vantage point (uniform anycast catchment).
    pub fn service_state(&self, ns: NsId, window: Window, loads: &LoadBook) -> ServiceState {
        let n = self.nameserver(ns);
        self.service_state_with_dilution(ns, window, loads, n.deployment.attack_dilution())
    }

    /// Service state with an explicit attack-dilution factor — the share
    /// of the attack absorbed by the anycast site that answers *this*
    /// vantage point. Multi-vantage measurement (the paper's §9 future
    /// work) probes the same deployment with different catchment shares.
    pub fn service_state_with_dilution(
        &self,
        ns: NsId,
        window: Window,
        loads: &LoadBook,
        dilution: f64,
    ) -> ServiceState {
        let n = self.nameserver(ns);
        let direct_attack = loads.attack_on_addr(n.addr, window);
        let offered = n.legit_pps + direct_attack * dilution;
        let prefix = n.slash24();
        let uplink_attack = loads.attack_on_slash24(prefix, window);
        // The uplink carries the prefix's aggregate legitimate traffic too;
        // approximate it with this server's share since co-hosted services
        // are not modeled individually.
        let uplink_offered = n.legit_pps + uplink_attack * dilution;
        self.load_model.evaluate(
            n.capacity_pps,
            offered,
            self.uplink_capacity(prefix),
            uplink_offered,
        )
    }

    /// Service quality of the nameserver's IPv6 path during an IPv4
    /// attack (limitation 2 of §4.3). The RSDoS feed is IPv4-only, so the
    /// attack load book describes IPv4 traffic: a *shared* dual-stack
    /// deployment degrades identically; *separate* IPv6 infrastructure
    /// stays healthy; an IPv4-only server has no IPv6 path (`None`).
    pub fn service_state_v6(
        &self,
        ns: NsId,
        window: Window,
        loads: &LoadBook,
    ) -> Option<ServiceState> {
        let n = self.nameserver(ns);
        match n.dual_stack_shared {
            None => None,
            Some(true) => Some(self.service_state(ns, window, loads)),
            Some(false) => Some(self.load_model.evaluate_server_only(n.capacity_pps, n.legit_pps)),
        }
    }
}

/// Attack traffic offered per window, by exact address and aggregated per
/// /24 (for uplink collateral). Filled in by the attack scheduler; read by
/// both simulation fidelities.
///
/// Keys are packed `(id << 32) | window` u64s: a full-feed 17-month run
/// carries tens of millions of cells, and the packed keys keep it inside
/// laptop memory. (The 17-month interval spans ≈150 K windows, far below
/// the 2³² packing limit.)
#[derive(Clone, Debug, Default)]
pub struct LoadBook {
    by_addr: HashMap<u64, f64>,
    by_slash24: HashMap<u64, f64>,
}

#[inline]
fn pack(id: u32, window: Window) -> u64 {
    debug_assert!(window.0 < u32::MAX as u64, "window beyond packing range");
    ((id as u64) << 32) | (window.0 & 0xFFFF_FFFF)
}

/// Attack load on one address in one window, in packets per second.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttackLoad {
    pub addr: Ipv4Addr,
    pub window: Window,
    pub pps: f64,
}

impl LoadBook {
    pub fn new() -> LoadBook {
        LoadBook::default()
    }

    /// Add `pps` of attack traffic toward `addr` during `window`.
    pub fn add(&mut self, addr: Ipv4Addr, window: Window, pps: f64) {
        assert!(pps >= 0.0);
        *self.by_addr.entry(pack(u32::from(addr), window)).or_insert(0.0) += pps;
        *self.by_slash24.entry(pack(Slash24::of(addr).0, window)).or_insert(0.0) += pps;
    }

    pub fn attack_on_addr(&self, addr: Ipv4Addr, window: Window) -> f64 {
        self.by_addr.get(&pack(u32::from(addr), window)).copied().unwrap_or(0.0)
    }

    pub fn attack_on_slash24(&self, prefix: Slash24, window: Window) -> f64 {
        self.by_slash24.get(&pack(prefix.0, window)).copied().unwrap_or(0.0)
    }

    pub fn is_empty(&self) -> bool {
        self.by_addr.is_empty()
    }

    /// Number of (addr, window) cells carrying load.
    pub fn len(&self) -> usize {
        self.by_addr.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(s: &str) -> Ipv4Addr {
        s.parse().unwrap()
    }
    fn name(s: &str) -> Name {
        s.parse().unwrap()
    }

    fn build_world() -> (Infra, NsId, NsId, NsSetId) {
        let mut infra = Infra::new();
        let a = infra.add_nameserver(
            name("ns0.transip.net"),
            ip("195.135.195.195"),
            Asn(20857),
            Deployment::Unicast,
            50_000.0,
            1_000.0,
            15.0,
        );
        let b = infra.add_nameserver(
            name("ns1.transip.nl"),
            ip("195.8.195.195"),
            Asn(20857),
            Deployment::Unicast,
            50_000.0,
            1_000.0,
            15.0,
        );
        let set = infra.intern_nsset(vec![a, b]);
        for i in 0..10 {
            infra.add_domain(name(&format!("klant{i}.nl")), set);
        }
        (infra, a, b, set)
    }

    #[test]
    fn interning_dedupes_nssets() {
        let (mut infra, a, b, set) = build_world();
        assert_eq!(infra.intern_nsset(vec![b, a]), set);
        assert_eq!(infra.intern_nsset(vec![a, b, b]), set);
        assert_eq!(infra.nsset_count(), 1);
        let solo = infra.intern_nsset(vec![a]);
        assert_ne!(solo, set);
        assert_eq!(infra.nsset_count(), 2);
    }

    #[test]
    fn reverse_indexes() {
        let (infra, a, b, set) = build_world();
        assert_eq!(infra.nssets_of_ns(a), &[set]);
        assert_eq!(infra.nssets_of_ns(b), &[set]);
        assert_eq!(infra.domains_of_nsset(set).len(), 10);
        assert_eq!(infra.ns_by_addr(ip("195.135.195.195")), Some(a));
        assert_eq!(infra.ns_by_addr(ip("1.1.1.1")), None);
        assert_eq!(infra.domain(DomainId(0)).nsset, set);
    }

    #[test]
    #[should_panic]
    fn duplicate_address_panics() {
        let mut infra = Infra::new();
        infra.add_nameserver(
            name("a.x"),
            ip("1.2.3.4"),
            Asn(1),
            Deployment::Unicast,
            1.0,
            0.0,
            1.0,
        );
        infra.add_nameserver(
            name("b.x"),
            ip("1.2.3.4"),
            Asn(2),
            Deployment::Unicast,
            1.0,
            0.0,
            1.0,
        );
    }

    #[test]
    fn metadata_dimensions() {
        let (mut infra, a, b, set) = build_world();
        assert_eq!(infra.nsset_asns(set), vec![Asn(20857)]);
        assert_eq!(infra.nsset_slash24s(set).len(), 2);
        assert_eq!(infra.nsset_anycast(set), (0, 2));
        // Add an anycast member → partial anycast.
        let c = infra.add_nameserver(
            name("ns2.transip.net"),
            ip("37.97.199.195"),
            Asn(20857),
            Deployment::Anycast { sites: 10 },
            500_000.0,
            1_000.0,
            8.0,
        );
        let set3 = infra.intern_nsset(vec![a, b, c]);
        assert_eq!(infra.nsset_anycast(set3), (1, 3));
    }

    #[test]
    fn loadbook_accumulates_and_aggregates() {
        let mut book = LoadBook::new();
        let w = Window(100);
        book.add(ip("10.0.0.1"), w, 1_000.0);
        book.add(ip("10.0.0.1"), w, 500.0);
        book.add(ip("10.0.0.200"), w, 300.0);
        assert_eq!(book.attack_on_addr(ip("10.0.0.1"), w), 1_500.0);
        assert_eq!(book.attack_on_addr(ip("10.0.0.200"), w), 300.0);
        assert_eq!(book.attack_on_addr(ip("10.0.0.1"), Window(101)), 0.0);
        // /24 aggregation sums both victims.
        assert_eq!(book.attack_on_slash24(Slash24::of(ip("10.0.0.9")), w), 1_800.0);
        assert_eq!(book.len(), 2);
    }

    #[test]
    fn service_state_responds_to_attack() {
        let (infra, a, _, _) = build_world();
        let mut book = LoadBook::new();
        let w = Window(50);
        let idle = infra.service_state(a, w, &book);
        assert!(idle.rtt_mult < 1.1);
        assert_eq!(idle.answer_prob, 1.0);
        // 45 kpps of attack on a 50 kpps server with 1 kpps legit → ρ=0.92.
        book.add(ip("195.135.195.195"), w, 45_000.0);
        let loaded = infra.service_state(a, w, &book);
        assert!(loaded.rtt_mult > 8.0, "rtt_mult {}", loaded.rtt_mult);
        // 200 kpps → saturated, most queries lost.
        book.add(ip("195.135.195.195"), w, 155_000.0);
        let sat = infra.service_state(a, w, &book);
        assert!(sat.answer_prob < 0.3, "answer_prob {}", sat.answer_prob);
    }

    #[test]
    fn collateral_hits_same_slash24() {
        let mut infra = Infra::new();
        let ns = infra.add_nameserver(
            name("ns1.mil.ru"),
            ip("188.128.110.5"),
            Asn(8342),
            Deployment::Unicast,
            100_000.0,
            1_000.0,
            40.0,
        );
        infra.set_uplink(Uplink::new(Slash24::of(ip("188.128.110.5")), 200_000.0));
        let mut book = LoadBook::new();
        let w = Window(7);
        // Attack the *web server* on the same /24, not the nameserver.
        book.add(ip("188.128.110.70"), w, 600_000.0);
        let s = infra.service_state(ns, w, &book);
        assert!(
            s.answer_prob < 0.5,
            "shared uplink congestion should degrade the nameserver: {s:?}"
        );
    }

    #[test]
    fn anycast_dilutes_attack() {
        let mut infra = Infra::new();
        let uni = infra.add_nameserver(
            name("ns1.uni.net"),
            ip("192.0.2.1"),
            Asn(1),
            Deployment::Unicast,
            100_000.0,
            1_000.0,
            20.0,
        );
        let any = infra.add_nameserver(
            name("ns1.any.net"),
            ip("198.51.100.1"),
            Asn(2),
            Deployment::Anycast { sites: 20 },
            100_000.0,
            1_000.0,
            20.0,
        );
        let mut book = LoadBook::new();
        let w = Window(1);
        for addr in ["192.0.2.1", "198.51.100.1"] {
            book.add(ip(addr), w, 95_000.0);
        }
        let s_uni = infra.service_state(uni, w, &book);
        let s_any = infra.service_state(any, w, &book);
        assert!(s_uni.rtt_mult > 10.0);
        assert!(s_any.rtt_mult < 1.2, "anycast absorbs the spoofed attack: {s_any:?}");
    }

    #[test]
    fn open_resolver_flag() {
        let (mut infra, a, _, _) = build_world();
        assert!(!infra.nameserver(a).open_resolver);
        infra.mark_open_resolver(a);
        assert!(infra.nameserver(a).open_resolver);
    }

    #[test]
    fn slash24_member_listing() {
        let (infra, a, _, _) = build_world();
        let p = infra.nameserver(a).slash24();
        assert_eq!(infra.nameservers_in_slash24(p), vec![a]);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// The /24 aggregate always equals the sum of its member-address
        /// loads, per window.
        #[test]
        fn loadbook_slash24_is_sum_of_members(
            adds in prop::collection::vec(
                (0u8..4, 0u8..8, 0u64..5, 0.0f64..10_000.0),
                1..100,
            ),
        ) {
            let mut book = LoadBook::new();
            let mut manual: HashMap<(u32, u64), f64> = HashMap::new();
            let mut manual24: HashMap<(Slash24, u64), f64> = HashMap::new();
            for (net, host, w, pps) in adds {
                let addr = Ipv4Addr::new(10, 0, net, host);
                book.add(addr, Window(w), pps);
                *manual.entry((u32::from(addr), w)).or_insert(0.0) += pps;
                *manual24.entry((Slash24::of(addr), w)).or_insert(0.0) += pps;
            }
            for ((addr, w), pps) in &manual {
                let got = book.attack_on_addr(Ipv4Addr::from(*addr), Window(*w));
                prop_assert!((got - pps).abs() < 1e-9);
            }
            for ((p24, w), pps) in &manual24 {
                let got = book.attack_on_slash24(*p24, Window(*w));
                prop_assert!((got - pps).abs() < 1e-6);
            }
        }

        /// Service quality is monotone in direct attack load.
        #[test]
        fn service_state_monotone_in_load(loads in prop::collection::vec(0.0f64..1e6, 2..10)) {
            let mut infra = Infra::new();
            let ns = infra.add_nameserver(
                "ns.mono.net".parse().unwrap(),
                "198.51.100.1".parse().unwrap(),
                Asn(1),
                Deployment::Unicast,
                50_000.0,
                1_000.0,
                20.0,
            );
            let mut sorted = loads.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut last_ans = 1.1f64;
            let mut last_mult = 0.0f64;
            for (i, pps) in sorted.iter().enumerate() {
                let mut book = LoadBook::new();
                book.add("198.51.100.1".parse().unwrap(), Window(i as u64), *pps);
                let s = infra.service_state(ns, Window(i as u64), &book);
                prop_assert!(s.answer_prob <= last_ans + 1e-12);
                prop_assert!(s.rtt_mult >= last_mult - 1e-12);
                last_ans = s.answer_prob;
                last_mult = s.rtt_mult;
            }
        }
    }
}
