//! Nameserver deployments and shared /24 uplinks.

use crate::ids::NsId;
use dnswire::Name;
use netbase::{Asn, Slash24};
use std::net::Ipv4Addr;

/// How a nameserver's service address is provisioned.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Deployment {
    /// One physical server, one location.
    Unicast,
    /// An anycast deployment with `sites` replicas announcing the address.
    /// A uniformly-spoofed volumetric attack spreads across all sites, so
    /// the site serving our vantage point absorbs only `1/sites` of the
    /// attack (§6.6.1 is where this pays off).
    Anycast { sites: u32 },
}

impl Deployment {
    pub fn is_anycast(&self) -> bool {
        matches!(self, Deployment::Anycast { .. })
    }

    /// Fraction of a uniformly-sourced attack absorbed by the site that
    /// answers our vantage point.
    pub fn attack_dilution(&self) -> f64 {
        match self {
            Deployment::Unicast => 1.0,
            Deployment::Anycast { sites } => 1.0 / (*sites).max(1) as f64,
        }
    }
}

/// An authoritative nameserver.
#[derive(Clone, Debug)]
pub struct Nameserver {
    pub id: NsId,
    /// Hostname in the NS record (e.g. `ns0.transip.net`).
    pub name: Name,
    /// IPv4 service address (the RSDoS join key).
    pub addr: Ipv4Addr,
    /// Origin AS of the covering announcement.
    pub asn: Asn,
    pub deployment: Deployment,
    /// Per-site capacity in queries/packets per second.
    pub capacity_pps: f64,
    /// Baseline legitimate load in pps.
    pub legit_pps: f64,
    /// Unloaded RTT from the measurement vantage point, in milliseconds.
    pub base_rtt_ms: f64,
    /// Whether this address is actually an open resolver that misconfigured
    /// domains point NS records at (§6.1 filters these out).
    pub open_resolver: bool,
    /// IPv6 serving mode (the paper's limitation 2): `None` = IPv4-only;
    /// `Some(true)` = dual-stack on *shared* infrastructure (an IPv4
    /// attack degrades the IPv6 path too, per Beverly & Berger's
    /// server-sibling findings); `Some(false)` = separate IPv6
    /// infrastructure that rides out IPv4-only attacks.
    pub dual_stack_shared: Option<bool>,
}

impl Nameserver {
    /// The /24 this address sits in — the unit of shared network
    /// infrastructure in the paper's resilience analysis.
    pub fn slash24(&self) -> Slash24 {
        Slash24::of(self.addr)
    }

    /// Spare capacity headroom (multiple of legitimate load).
    pub fn headroom(&self) -> f64 {
        self.capacity_pps / self.legit_pps.max(1e-9)
    }
}

/// A shared /24 uplink. Attacks on *any* address in the /24 consume the
/// shared link, which is how the mil.ru web site and nameservers degraded
/// together (§5.2.3).
#[derive(Clone, Debug)]
pub struct Uplink {
    pub prefix: Slash24,
    /// Link capacity in pps.
    pub capacity_pps: f64,
}

impl Uplink {
    pub fn new(prefix: Slash24, capacity_pps: f64) -> Uplink {
        assert!(capacity_pps > 0.0);
        Uplink { prefix, capacity_pps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ns(addr: &str, deployment: Deployment) -> Nameserver {
        Nameserver {
            id: NsId(0),
            name: "ns1.example.net".parse().unwrap(),
            addr: addr.parse().unwrap(),
            asn: Asn(64500),
            deployment,
            capacity_pps: 50_000.0,
            legit_pps: 1_000.0,
            base_rtt_ms: 20.0,
            open_resolver: false,
            dual_stack_shared: None,
        }
    }

    #[test]
    fn unicast_takes_full_attack() {
        assert_eq!(Deployment::Unicast.attack_dilution(), 1.0);
        assert!(!Deployment::Unicast.is_anycast());
    }

    #[test]
    fn anycast_dilutes_by_sites() {
        let d = Deployment::Anycast { sites: 20 };
        assert!(d.is_anycast());
        assert!((d.attack_dilution() - 0.05).abs() < 1e-12);
        // Degenerate zero-site deployment behaves like one site.
        assert_eq!(Deployment::Anycast { sites: 0 }.attack_dilution(), 1.0);
    }

    #[test]
    fn slash24_derived_from_addr() {
        let n = ns("195.135.195.195", Deployment::Unicast);
        assert_eq!(n.slash24(), Slash24::of("195.135.195.1".parse().unwrap()));
        assert!((n.headroom() - 50.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic]
    fn uplink_requires_positive_capacity() {
        Uplink::new(Slash24(1), 0.0);
    }
}
