//! Loading delegations from zone data into the simulated infrastructure.
//!
//! Bridges `dnswire::zonefile` and [`crate::Infra`]: NS records define the
//! delegations, glue A records supply nameserver addresses, and every
//! delegated owner becomes a registered domain on an interned NSSet. This
//! is how a downstream user feeds *real* zone snapshots into the
//! simulator instead of the synthetic world generator.

use crate::deploy::Deployment;
use crate::ids::{DomainId, NsId};
use crate::infra::Infra;
use dnswire::{Name, RData, Record};
use netbase::{Asn, Prefix2As};
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// Errors loading zone data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ZoneLoadError {
    /// An NS target has no glue A record and no existing registration.
    MissingGlue { owner: Name, target: Name },
    /// An owner has NS records but they all failed to resolve.
    EmptyDelegation { owner: Name },
}

impl std::fmt::Display for ZoneLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ZoneLoadError::MissingGlue { owner, target } => {
                write!(f, "delegation of {owner} names {target}, which has no glue A record")
            }
            ZoneLoadError::EmptyDelegation { owner } => {
                write!(f, "delegation of {owner} resolved to no nameservers")
            }
        }
    }
}
impl std::error::Error for ZoneLoadError {}

/// Defaults applied to nameservers first seen in zone data (zones don't
/// carry capacity or latency).
#[derive(Clone, Copy, Debug)]
pub struct ZoneLoader {
    pub capacity_pps: f64,
    pub legit_pps: f64,
    pub base_rtt_ms: f64,
    pub deployment: Deployment,
    /// ASN assigned when no prefix2as table covers the glue address.
    pub fallback_asn: Asn,
}

impl Default for ZoneLoader {
    fn default() -> ZoneLoader {
        ZoneLoader {
            capacity_pps: 50_000.0,
            legit_pps: 500.0,
            base_rtt_ms: 20.0,
            deployment: Deployment::Unicast,
            fallback_asn: Asn(64_512),
        }
    }
}

impl ZoneLoader {
    /// Load delegations from `records` into `infra`. Returns the domains
    /// registered, in owner order of first appearance.
    pub fn load(
        &self,
        infra: &mut Infra,
        records: &[Record],
        prefix2as: Option<&Prefix2As>,
    ) -> Result<Vec<DomainId>, ZoneLoadError> {
        // Glue: hostname → addresses.
        let mut glue: HashMap<Name, Vec<Ipv4Addr>> = HashMap::new();
        for r in records {
            if let RData::A(a) = &r.rdata {
                glue.entry(r.name.clone()).or_default().push(*a);
            }
        }
        // Delegations: owner → NS target names, keeping first-seen order.
        let mut owners: Vec<Name> = Vec::new();
        let mut delegations: HashMap<Name, Vec<Name>> = HashMap::new();
        for r in records {
            if let RData::Ns(target) = &r.rdata {
                let e = delegations.entry(r.name.clone()).or_default();
                if e.is_empty() {
                    owners.push(r.name.clone());
                }
                e.push(target.clone());
            }
        }

        let mut out = Vec::new();
        for owner in owners {
            let targets = &delegations[&owner];
            let mut ns_ids: Vec<NsId> = Vec::new();
            for target in targets {
                let addrs = glue.get(target);
                match addrs {
                    Some(addrs) => {
                        for &addr in addrs {
                            ns_ids.push(self.ensure_ns(infra, target, addr, prefix2as));
                        }
                    }
                    None => {
                        // Out-of-zone target: accept if a server with that
                        // hostname is already registered.
                        match infra.nameservers().iter().find(|n| &n.name == target) {
                            Some(n) => ns_ids.push(n.id),
                            None => {
                                return Err(ZoneLoadError::MissingGlue {
                                    owner,
                                    target: target.clone(),
                                })
                            }
                        }
                    }
                }
            }
            if ns_ids.is_empty() {
                return Err(ZoneLoadError::EmptyDelegation { owner });
            }
            let set = infra.intern_nsset(ns_ids);
            out.push(infra.add_domain(owner, set));
        }
        Ok(out)
    }

    fn ensure_ns(
        &self,
        infra: &mut Infra,
        name: &Name,
        addr: Ipv4Addr,
        prefix2as: Option<&Prefix2As>,
    ) -> NsId {
        if let Some(id) = infra.ns_by_addr(addr) {
            return id;
        }
        let asn = prefix2as.and_then(|t| t.asn_of(addr)).unwrap_or(self.fallback_asn);
        infra.add_nameserver(
            name.clone(),
            addr,
            asn,
            self.deployment,
            self.capacity_pps,
            self.legit_pps,
            self.base_rtt_ms,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::zonefile::parse_zone;

    fn origin() -> Name {
        "nl".parse().unwrap()
    }

    const TLD_SNIPPET: &str = "\
$TTL 3600
klant1      IN NS ns0.transip.net.
klant1      IN NS ns1.transip.net.
klant2      IN NS ns0.transip.net.
klant2      IN NS ns1.transip.net.
solo        IN NS ns.solo.nl.
ns0.transip.net. IN A 195.135.195.195
ns1.transip.net. IN A 195.8.195.195
ns.solo.nl.      IN A 203.0.113.5
";

    #[test]
    fn loads_delegations_and_interns_nssets() {
        let records = parse_zone(TLD_SNIPPET, &origin()).unwrap();
        let mut infra = Infra::new();
        let domains = ZoneLoader::default().load(&mut infra, &records, None).unwrap();
        assert_eq!(domains.len(), 3);
        assert_eq!(infra.domain_count(), 3);
        // klant1 and klant2 share one interned NSSet.
        let s1 = infra.domain(domains[0]).nsset;
        let s2 = infra.domain(domains[1]).nsset;
        assert_eq!(s1, s2);
        assert_eq!(infra.nsset(s1).len(), 2);
        let s3 = infra.domain(domains[2]).nsset;
        assert_ne!(s1, s3);
        // Three nameservers registered, addresses resolvable.
        assert_eq!(infra.nameservers().len(), 3);
        assert!(infra.ns_by_addr("195.135.195.195".parse().unwrap()).is_some());
    }

    #[test]
    fn prefix2as_assigns_origin_asns() {
        let records = parse_zone(TLD_SNIPPET, &origin()).unwrap();
        let mut p2a = Prefix2As::new();
        p2a.announce("195.135.195.0/24".parse().unwrap(), Asn(20857));
        let mut infra = Infra::new();
        ZoneLoader::default().load(&mut infra, &records, Some(&p2a)).unwrap();
        let ns = infra.ns_by_addr("195.135.195.195".parse().unwrap()).unwrap();
        assert_eq!(infra.nameserver(ns).asn, Asn(20857));
        // Uncovered glue falls back.
        let solo = infra.ns_by_addr("203.0.113.5".parse().unwrap()).unwrap();
        assert_eq!(infra.nameserver(solo).asn, Asn(64_512));
    }

    #[test]
    fn missing_glue_is_an_error_unless_preregistered() {
        let z = "klant IN NS ns.elsewhere.example.\n";
        let records = parse_zone(z, &origin()).unwrap();
        let mut infra = Infra::new();
        let e = ZoneLoader::default().load(&mut infra, &records, None).unwrap_err();
        assert!(matches!(e, ZoneLoadError::MissingGlue { .. }));
        assert!(e.to_string().contains("elsewhere"));

        // Pre-register the out-of-zone server → the load succeeds.
        let mut infra = Infra::new();
        infra.add_nameserver(
            "ns.elsewhere.example".parse().unwrap(),
            "198.51.100.99".parse().unwrap(),
            Asn(1),
            Deployment::Unicast,
            10_000.0,
            100.0,
            25.0,
        );
        let domains = ZoneLoader::default().load(&mut infra, &records, None).unwrap();
        assert_eq!(domains.len(), 1);
    }

    #[test]
    fn loaded_world_resolves() {
        use crate::infra::LoadBook;
        use crate::resolver::{QueryStatus, Resolver};
        use rand::SeedableRng;
        let records = parse_zone(TLD_SNIPPET, &origin()).unwrap();
        let mut infra = Infra::new();
        let domains = ZoneLoader::default().load(&mut infra, &records, None).unwrap();
        let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
        let out = Resolver::default().resolve(
            &infra,
            domains[0],
            simcore::time::Window(0),
            &LoadBook::new(),
            &mut rng,
        );
        assert_eq!(out.status, QueryStatus::Ok);
    }

    #[test]
    fn duplicate_glue_addresses_reuse_registrations() {
        // Two zones loaded sequentially share nameserver registrations.
        let records = parse_zone(TLD_SNIPPET, &origin()).unwrap();
        let mut infra = Infra::new();
        ZoneLoader::default().load(&mut infra, &records, None).unwrap();
        let before = infra.nameservers().len();
        let more = parse_zone(
            "klant9 IN NS ns0.transip.net.\nns0.transip.net. IN A 195.135.195.195\n",
            &origin(),
        )
        .unwrap();
        ZoneLoader::default().load(&mut infra, &more, None).unwrap();
        assert_eq!(infra.nameservers().len(), before, "no duplicate registration");
        assert_eq!(infra.domain_count(), 4);
    }
}
