//! The offered-load → service-quality model.
//!
//! One model serves both simulation fidelities: the per-query path samples
//! individual outcomes from the [`ServiceState`] probabilities, and the
//! aggregate path (used for the 17-month longitudinal run) converts the same
//! state into expected per-window statistics. That shared origin is what
//! makes the two fidelities agree in expectation (tested in the workspace
//! integration suite).
//!
//! The server is an M/M/1-flavored queue:
//! - utilization `ρ = offered / capacity`;
//! - while `ρ < 1` every query is answered and the response time scales as
//!   `1 / (1 - ρ)` (capped);
//! - at `ρ ≥ 1` the server answers `capacity / offered` of queries, at the
//!   capped response time; the rest time out (or, for a small share,
//!   surface as SERVFAIL — the paper observed 92% timeout / 8% SERVFAIL in
//!   failed resolutions, §6.3.1).
//!
//! A congested shared /24 uplink contributes additional delay and loss with
//! the same curve; excess delays add, losses compose multiplicatively.

/// Tunable parameters of the load model.
#[derive(Clone, Copy, Debug)]
pub struct LoadModel {
    /// Per-queue delay-inflation cap: a real server has a *finite* buffer,
    /// so queueing delay saturates — answered queries never wait the
    /// unbounded M/M/1 `1/(1-ρ)`; beyond this multiple the excess load is
    /// shed as loss instead. (Without this cap a saturated server would
    /// "answer" at absurd delays and every answer would classify as a
    /// timeout, which is not what the paper's ≈20%-timeout episodes look
    /// like.)
    pub queue_mult_cap: f64,
    /// Final clamp on the combined (server + uplink) RTT multiplier.
    pub max_rtt_mult: f64,
    /// Share of *failed* queries that surface as SERVFAIL rather than
    /// timeout. The resolver surfaces an upstream SERVFAIL immediately
    /// (no retry), which amplifies this per-query share into the ≈8% of
    /// failed *resolutions* the paper reports (§6.3.1).
    pub servfail_share: f64,
}

impl Default for LoadModel {
    fn default() -> LoadModel {
        LoadModel { queue_mult_cap: 30.0, max_rtt_mult: 500.0, servfail_share: 0.025 }
    }
}

/// Instantaneous service quality of one nameserver (as seen from the
/// vantage point) in one 5-minute window.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceState {
    /// Probability a single query is answered at all.
    pub answer_prob: f64,
    /// Multiplier on the unloaded RTT for answered queries.
    pub rtt_mult: f64,
    /// Probability a single query fails with SERVFAIL (subset of
    /// `1 - answer_prob`; the remainder of failures are timeouts).
    pub servfail_prob: f64,
}

impl ServiceState {
    /// A healthy, unloaded server.
    pub const IDLE: ServiceState =
        ServiceState { answer_prob: 1.0, rtt_mult: 1.0, servfail_prob: 0.0 };

    pub fn timeout_prob(&self) -> f64 {
        (1.0 - self.answer_prob) - self.servfail_prob
    }
}

impl LoadModel {
    /// Quality of a single queue with `capacity` pps facing `offered` pps.
    /// Returns `(delivered_fraction, rtt_multiplier)`.
    fn queue(&self, capacity: f64, offered: f64) -> (f64, f64) {
        assert!(capacity > 0.0, "capacity must be positive");
        let rho = (offered / capacity).max(0.0);
        if rho < 1.0 {
            let mult = (1.0 / (1.0 - rho)).min(self.queue_mult_cap);
            (1.0, mult)
        } else {
            // Finite buffer: the queue delay tops out; excess load is lost.
            (1.0 / rho, self.queue_mult_cap)
        }
    }

    /// Combine the server queue and its /24 uplink into a [`ServiceState`].
    ///
    /// - `capacity`/`offered`: the server's own queue (legitimate + attack
    ///   traffic reaching this site).
    /// - `uplink_capacity`/`uplink_offered`: the shared /24 link, carrying
    ///   everything destined to the prefix (collateral included).
    pub fn evaluate(
        &self,
        capacity: f64,
        offered: f64,
        uplink_capacity: f64,
        uplink_offered: f64,
    ) -> ServiceState {
        let (d_srv, m_srv) = self.queue(capacity, offered);
        let (d_up, m_up) = self.queue(uplink_capacity, uplink_offered);
        let answer_prob = d_srv * d_up;
        // Excess delays add; the cap still bounds the total.
        let rtt_mult = (1.0 + (m_srv - 1.0) + (m_up - 1.0)).min(self.max_rtt_mult);
        let fail = 1.0 - answer_prob;
        ServiceState { answer_prob, rtt_mult, servfail_prob: fail * self.servfail_share }
    }

    /// Quality of a server with no uplink contention.
    pub fn evaluate_server_only(&self, capacity: f64, offered: f64) -> ServiceState {
        let (d, m) = self.queue(capacity, offered);
        let fail = 1.0 - d;
        ServiceState { answer_prob: d, rtt_mult: m, servfail_prob: fail * self.servfail_share }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const M: LoadModel =
        LoadModel { queue_mult_cap: 30.0, max_rtt_mult: 500.0, servfail_share: 0.08 };

    #[test]
    fn idle_server_is_perfect() {
        let s = M.evaluate_server_only(10_000.0, 0.0);
        assert_eq!(s.answer_prob, 1.0);
        assert_eq!(s.rtt_mult, 1.0);
        assert_eq!(s.servfail_prob, 0.0);
        assert_eq!(s.timeout_prob(), 0.0);
    }

    #[test]
    fn latency_grows_hyperbolically() {
        // ρ = 0.5 → 2x; ρ = 0.9 → 10x; ρ = 0.96 → 25x.
        for (rho, expect) in [(0.5, 2.0), (0.9, 10.0), (0.96, 25.0)] {
            let s = M.evaluate_server_only(1_000.0, rho * 1_000.0);
            assert!((s.rtt_mult - expect).abs() / expect < 1e-6, "ρ={rho}: {}", s.rtt_mult);
            assert_eq!(s.answer_prob, 1.0, "below saturation nothing is lost");
        }
    }

    #[test]
    fn saturation_sheds_load() {
        // Offered 5x capacity → only 20% answered, at the capped RTT.
        let s = M.evaluate_server_only(1_000.0, 5_000.0);
        assert!((s.answer_prob - 0.2).abs() < 1e-9);
        // Finite buffer: answered queries wait the queue cap, not 1/(1-ρ).
        assert_eq!(s.rtt_mult, 30.0);
        // Failures split 92/8 between timeout and SERVFAIL.
        assert!((s.servfail_prob - 0.8 * 0.08).abs() < 1e-9);
        assert!((s.timeout_prob() - 0.8 * 0.92).abs() < 1e-9);
    }

    #[test]
    fn rtt_mult_is_capped_at_queue_cap() {
        let s = M.evaluate_server_only(1_000.0, 999.9999);
        assert!(s.rtt_mult <= 30.0, "near-saturation delay bounded: {}", s.rtt_mult);
        // ρ = 0.99 would be 100x unbounded; the finite buffer caps it.
        let s = M.evaluate_server_only(1_000.0, 990.0);
        assert_eq!(s.rtt_mult, 30.0);
    }

    #[test]
    fn uplink_congestion_composes() {
        // Server fine, uplink at 2x capacity → half the queries delivered.
        let s = M.evaluate(10_000.0, 100.0, 1_000.0, 2_000.0);
        assert!((s.answer_prob - 0.5).abs() < 0.01);
        assert!((s.rtt_mult - 30.01).abs() < 0.01, "uplink at its queue cap: {}", s.rtt_mult);
        // Both congested: losses multiply.
        let s = M.evaluate(1_000.0, 2_000.0, 1_000.0, 2_000.0);
        assert!((s.answer_prob - 0.25).abs() < 1e-9);
    }

    #[test]
    fn excess_delays_add_not_multiply() {
        // Server at ρ=0.5 (2x) and uplink at ρ=0.5 (2x) → 3x, not 4x.
        let s = M.evaluate(1_000.0, 500.0, 1_000.0, 500.0);
        assert!((s.rtt_mult - 3.0).abs() < 1e-9);
    }

    #[test]
    fn monotone_in_load() {
        let mut last = M.evaluate_server_only(1_000.0, 0.0);
        for offered in (0..30).map(|i| i as f64 * 200.0) {
            let s = M.evaluate_server_only(1_000.0, offered);
            assert!(s.answer_prob <= last.answer_prob + 1e-12);
            assert!(s.rtt_mult >= last.rtt_mult - 1e-12);
            last = s;
        }
    }

    #[test]
    #[should_panic]
    fn zero_capacity_panics() {
        M.evaluate_server_only(0.0, 10.0);
    }
}
