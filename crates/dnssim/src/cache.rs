//! A TTL record cache.
//!
//! OpenINTEL's *first* NS query per domain bypasses the cache (so attacks
//! are visible), but its additional queries may be served from cached NS
//! records (§3.2, footnote 1) — which *reduces* visibility of attacks. The
//! reactive prober uses this cache to reproduce that masking effect, and an
//! integration test demonstrates it.

use dnswire::{Name, Record, RrType};
use simcore::time::SimTime;
use std::collections::HashMap;

/// Cache key: owner name + record type.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct CacheKey {
    pub name: Name,
    pub rtype: RrType,
}

#[derive(Clone, Debug)]
struct CacheEntry {
    records: Vec<Record>,
    expires: SimTime,
}

/// A simple TTL cache over resource-record sets.
#[derive(Clone, Debug, Default)]
pub struct TtlCache {
    entries: HashMap<CacheKey, CacheEntry>,
    hits: u64,
    misses: u64,
}

impl TtlCache {
    pub fn new() -> TtlCache {
        TtlCache::default()
    }

    /// Store an RRset observed at `now`; expiry is `now + min(TTL)` of the
    /// set (the conservative choice a validating cache makes).
    pub fn put(&mut self, key: CacheKey, records: Vec<Record>, now: SimTime) {
        assert!(!records.is_empty(), "caching an empty RRset is meaningless");
        let ttl = records.iter().map(|r| r.ttl).min().unwrap_or(0);
        let expires = now + simcore::time::SimDuration::from_secs(ttl as u64);
        self.entries.insert(key, CacheEntry { records, expires });
    }

    /// Fetch an unexpired RRset. A hit at exactly the expiry instant is a
    /// miss (TTL semantics are "valid for TTL seconds after receipt").
    pub fn get(&mut self, key: &CacheKey, now: SimTime) -> Option<&[Record]> {
        match self.entries.get(key) {
            Some(e) if now < e.expires => {
                self.hits += 1;
                Some(self.entries.get(key).map(|e| e.records.as_slice()).unwrap())
            }
            _ => {
                self.misses += 1;
                None
            }
        }
    }

    /// Remove expired entries (housekeeping; correctness never depends on
    /// calling this).
    pub fn evict_expired(&mut self, now: SimTime) {
        self.entries.retain(|_, e| now < e.expires);
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
    pub fn hits(&self) -> u64 {
        self.hits
    }
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dnswire::RData;
    use simcore::time::SimDuration;

    fn key(name: &str) -> CacheKey {
        CacheKey { name: name.parse().unwrap(), rtype: RrType::Ns }
    }

    fn ns_record(owner: &str, target: &str, ttl: u32) -> Record {
        Record::new(owner.parse().unwrap(), ttl, RData::Ns(target.parse().unwrap()))
    }

    #[test]
    fn hit_within_ttl_miss_after() {
        let mut c = TtlCache::new();
        let t0 = SimTime(1_000);
        c.put(key("klant.nl"), vec![ns_record("klant.nl", "ns0.transip.net", 300)], t0);
        assert!(c.get(&key("klant.nl"), t0 + SimDuration::from_secs(299)).is_some());
        assert!(c.get(&key("klant.nl"), t0 + SimDuration::from_secs(300)).is_none());
        assert_eq!(c.hits(), 1);
        assert_eq!(c.misses(), 1);
    }

    #[test]
    fn min_ttl_governs_rrset() {
        let mut c = TtlCache::new();
        let t0 = SimTime(0);
        c.put(
            key("klant.nl"),
            vec![
                ns_record("klant.nl", "ns0.transip.net", 3_600),
                ns_record("klant.nl", "ns1.transip.nl", 60),
            ],
            t0,
        );
        assert!(c.get(&key("klant.nl"), SimTime(59)).is_some());
        assert!(c.get(&key("klant.nl"), SimTime(60)).is_none());
    }

    #[test]
    fn distinct_keys_are_independent() {
        let mut c = TtlCache::new();
        c.put(key("a.nl"), vec![ns_record("a.nl", "ns.x.net", 100)], SimTime(0));
        assert!(c.get(&key("b.nl"), SimTime(1)).is_none());
        assert!(c.get(&key("a.nl"), SimTime(1)).is_some());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn replace_refreshes_expiry() {
        let mut c = TtlCache::new();
        c.put(key("a.nl"), vec![ns_record("a.nl", "ns.x.net", 100)], SimTime(0));
        c.put(key("a.nl"), vec![ns_record("a.nl", "ns.x.net", 100)], SimTime(90));
        assert!(c.get(&key("a.nl"), SimTime(150)).is_some());
    }

    #[test]
    fn evict_expired_shrinks() {
        let mut c = TtlCache::new();
        c.put(key("a.nl"), vec![ns_record("a.nl", "ns.x.net", 10)], SimTime(0));
        c.put(key("b.nl"), vec![ns_record("b.nl", "ns.y.net", 1_000)], SimTime(0));
        c.evict_expired(SimTime(500));
        assert_eq!(c.len(), 1);
        assert!(c.get(&key("b.nl"), SimTime(500)).is_some());
    }

    #[test]
    #[should_panic]
    fn empty_rrset_panics() {
        TtlCache::new().put(key("a.nl"), vec![], SimTime(0));
    }
}
