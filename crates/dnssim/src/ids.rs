//! Interned identifiers and the NSSet abstraction.
//!
//! The paper aggregates measurements per *NSSet* — "all IPv4 nameserver IP
//! addresses in common for one or more domains" (§4.1) — because OpenINTEL
//! cannot attribute an answer to a specific nameserver. NSSets are interned
//! so millions of domains sharing a provider's deployment map to one id.

use std::fmt;

/// A registered domain name (second-level domain in the measured zones).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DomainId(pub u32);

/// An authoritative nameserver (one IPv4 service address; possibly an
/// anycast deployment behind that address).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NsId(pub u32);

/// An interned, deduplicated set of nameservers.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NsSetId(pub u32);

impl fmt::Debug for DomainId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "D{}", self.0)
    }
}
impl fmt::Debug for NsId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "NS{}", self.0)
    }
}
impl fmt::Debug for NsSetId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SET{}", self.0)
    }
}

/// A sorted, deduplicated set of nameserver ids. Construction canonicalizes
/// order so equal sets intern to the same [`NsSetId`].
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct NsSet {
    members: Vec<NsId>,
}

impl NsSet {
    pub fn new(mut members: Vec<NsId>) -> NsSet {
        members.sort();
        members.dedup();
        assert!(!members.is_empty(), "an NSSet must contain at least one nameserver");
        NsSet { members }
    }

    pub fn members(&self) -> &[NsId] {
        &self.members
    }

    pub fn len(&self) -> usize {
        self.members.len()
    }

    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    pub fn contains(&self, ns: NsId) -> bool {
        self.members.binary_search(&ns).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonicalizes_order_and_dupes() {
        let a = NsSet::new(vec![NsId(3), NsId(1), NsId(2), NsId(1)]);
        let b = NsSet::new(vec![NsId(1), NsId(2), NsId(3)]);
        assert_eq!(a, b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.members(), &[NsId(1), NsId(2), NsId(3)]);
    }

    #[test]
    fn contains_uses_sorted_members() {
        let s = NsSet::new(vec![NsId(9), NsId(4), NsId(7)]);
        assert!(s.contains(NsId(7)));
        assert!(!s.contains(NsId(5)));
    }

    #[test]
    #[should_panic]
    fn empty_set_panics() {
        NsSet::new(vec![]);
    }

    #[test]
    fn debug_formats() {
        assert_eq!(format!("{:?}", DomainId(5)), "D5");
        assert_eq!(format!("{:?}", NsId(2)), "NS2");
        assert_eq!(format!("{:?}", NsSetId(8)), "SET8");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Canonicalization: permutations and duplicates of the same
        /// members produce equal sets.
        #[test]
        fn nsset_canonical(mut ids in prop::collection::vec(0u32..50, 1..12)) {
            let a = NsSet::new(ids.iter().map(|&i| NsId(i)).collect());
            ids.reverse();
            ids.extend(ids.clone()); // duplicates
            let b = NsSet::new(ids.iter().map(|&i| NsId(i)).collect());
            prop_assert_eq!(&a, &b);
            // Members sorted and deduplicated.
            prop_assert!(a.members().windows(2).all(|w| w[0] < w[1]));
            for m in a.members() {
                prop_assert!(a.contains(*m));
            }
        }
    }
}
