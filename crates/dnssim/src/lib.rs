//! DNS infrastructure simulator.
//!
//! Models the population of authoritative nameservers the paper studies:
//! domains delegate to *NSSets* (sets of nameserver IPv4 addresses), each
//! nameserver is a unicast host or an anycast deployment with finite
//! capacity, and query performance degrades under offered load (legitimate
//! traffic + attack traffic + collateral from attacks on the same /24).
//!
//! - [`ids`]: interned identifiers for domains, nameservers and NSSets.
//! - [`deploy`]: nameserver deployments (unicast/anycast, capacity, ASN,
//!   prefix) and shared /24 uplinks.
//! - [`load`]: the offered-load → (answer probability, RTT multiplier)
//!   queueing model, shared by the per-query and aggregate simulation paths.
//! - [`infra`]: the registry tying domains, NSSets and nameservers together,
//!   with the per-window attack-load book.
//! - [`server`]: authoritative answer construction (real `dnswire`
//!   messages) for the per-query path.
//! - [`resolver`]: the unbound-like resolver (random nameserver selection,
//!   timeout, bounded retries) and query outcomes.
//! - [`cache`]: a TTL cache for resolution paths that are allowed to reuse
//!   cached NS records.
//! - [`zone`]: loading real zone-file delegations into the registry.

pub mod cache;
pub mod deploy;
pub mod ids;
pub mod infra;
pub mod load;
pub mod resolver;
pub mod server;
pub mod zone;

pub use deploy::{Deployment, Nameserver, Uplink};
pub use ids::{DomainId, NsId, NsSet, NsSetId};
pub use infra::{AttackLoad, Infra, LoadBook};
pub use load::{LoadModel, ServiceState};
pub use resolver::{AttemptTrace, QueryOutcome, QueryStatus, Resolver};
pub use zone::{ZoneLoadError, ZoneLoader};
