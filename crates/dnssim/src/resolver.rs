//! The unbound-like measurement resolver.
//!
//! OpenINTEL resolves through unbound with an *agnostic* nameserver choice:
//! for each domain's first query it picks an authoritative nameserver at
//! random (§3.2). We reproduce that: a query goes to a uniformly random
//! member of the domain's NSSet; on timeout the resolver retries other
//! members (up to a bound), which is how real resolvers mask single-server
//! failures; SERVFAIL is surfaced immediately.
//!
//! The outcome RTT accumulates the time burned on dead servers — during the
//! TransIP attacks that accumulation is exactly the 10× resolution-time
//! blow-up OpenINTEL measured.

use crate::ids::DomainId;
use crate::infra::{Infra, LoadBook};
use crate::load::ServiceState;
use crate::server;
use rand::Rng;
use simcore::time::Window;

/// Terminal status of one resolution attempt, matching OpenINTEL's status
/// taxonomy.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum QueryStatus {
    /// Authoritative answer received.
    Ok,
    /// All attempts timed out.
    Timeout,
    /// The server answered SERVFAIL.
    ServFail,
}

/// Outcome of resolving one domain once.
#[derive(Clone, Debug, PartialEq)]
pub struct QueryOutcome {
    pub status: QueryStatus,
    /// Total wall-clock resolution time in milliseconds, including time
    /// wasted on servers that never answered.
    pub rtt_ms: f64,
    /// How many servers were contacted.
    pub attempts: u32,
}

/// Resolver configuration.
#[derive(Clone, Copy, Debug)]
pub struct Resolver {
    /// Per-attempt timeout in milliseconds.
    pub timeout_ms: f64,
    /// Maximum servers tried before giving up with TIMEOUT.
    pub max_attempts: u32,
    /// When true, queries and answers are round-tripped through their wire
    /// encodings (slower; used by the per-query fidelity and the reactive
    /// prober).
    pub exercise_wire: bool,
}

impl Default for Resolver {
    fn default() -> Resolver {
        // unbound defaults in the OpenINTEL deployment: ~1.5 s usable
        // per-server budget, and it will move on to other servers.
        Resolver { timeout_ms: 1_500.0, max_attempts: 3, exercise_wire: false }
    }
}

/// One contacted server within a resolution, for packet-level export and
/// per-server diagnostics.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AttemptTrace {
    pub ns: crate::ids::NsId,
    pub status: QueryStatus,
    /// Time this attempt consumed: the answer RTT, or the full per-attempt
    /// timeout.
    pub rtt_ms: f64,
}

impl Resolver {
    /// Resolve `domain`'s NS RRset during `window`, drawing outcomes from
    /// each contacted server's [`ServiceState`].
    pub fn resolve<R: Rng + ?Sized>(
        &self,
        infra: &Infra,
        domain: DomainId,
        window: Window,
        loads: &LoadBook,
        rng: &mut R,
    ) -> QueryOutcome {
        self.resolve_traced(infra, domain, window, loads, rng).0
    }

    /// As [`Resolver::resolve`], additionally returning the per-server
    /// attempt trace (which servers were contacted, in order, and how each
    /// attempt ended).
    pub fn resolve_traced<R: Rng + ?Sized>(
        &self,
        infra: &Infra,
        domain: DomainId,
        window: Window,
        loads: &LoadBook,
        rng: &mut R,
    ) -> (QueryOutcome, Vec<AttemptTrace>) {
        // Resolution must go through the parent-side delegation when it
        // disagrees with the child zone (§3.2): the parent decides which
        // servers a cold-cache resolver can reach.
        let nsset = infra.domain(domain).query_nsset();
        let members = infra.nsset(nsset).members();
        let mut rtt_total = 0.0;
        let mut attempts = 0;
        let mut trace = Vec::new();
        // Random starting member, then rotate — unbound tries servers it
        // has not yet failed on.
        let start = rng.random_range(0..members.len());
        for k in 0..members.len().min(self.max_attempts as usize) {
            let ns = members[(start + k) % members.len()];
            attempts += 1;
            let state = infra.service_state(ns, window, loads);
            match self.one_attempt(infra, domain, ns, &state, rng) {
                AttemptResult::Answered(rtt) => {
                    trace.push(AttemptTrace { ns, status: QueryStatus::Ok, rtt_ms: rtt });
                    return (
                        QueryOutcome { status: QueryStatus::Ok, rtt_ms: rtt_total + rtt, attempts },
                        trace,
                    );
                }
                AttemptResult::ServFail(rtt) => {
                    trace.push(AttemptTrace { ns, status: QueryStatus::ServFail, rtt_ms: rtt });
                    return (
                        QueryOutcome {
                            status: QueryStatus::ServFail,
                            rtt_ms: rtt_total + rtt,
                            attempts,
                        },
                        trace,
                    );
                }
                AttemptResult::Timeout => {
                    trace.push(AttemptTrace {
                        ns,
                        status: QueryStatus::Timeout,
                        rtt_ms: self.timeout_ms,
                    });
                    rtt_total += self.timeout_ms;
                }
            }
        }
        (QueryOutcome { status: QueryStatus::Timeout, rtt_ms: rtt_total, attempts }, trace)
    }

    fn one_attempt<R: Rng + ?Sized>(
        &self,
        infra: &Infra,
        domain: DomainId,
        ns: crate::ids::NsId,
        state: &ServiceState,
        rng: &mut R,
    ) -> AttemptResult {
        let u: f64 = rng.random();
        let n = infra.nameserver(ns);
        if u < state.answer_prob {
            // Loaded-server response time, capped by what fits in the
            // attempt timeout (a reply slower than the timeout is a
            // timeout).
            let rtt = n.base_rtt_ms * state.rtt_mult;
            if rtt >= self.timeout_ms {
                return AttemptResult::Timeout;
            }
            if self.exercise_wire {
                let q = server::via_wire(&server::ns_query(
                    rng.random(),
                    infra.domain(domain).name.clone(),
                ));
                let resp = server::via_wire(&server::answer_ns_query(infra, domain, &q));
                debug_assert_eq!(resp.header.id, q.header.id);
            }
            AttemptResult::Answered(rtt)
        } else if u < state.answer_prob + state.servfail_prob {
            if self.exercise_wire {
                let q = server::ns_query(rng.random(), infra.domain(domain).name.clone());
                let resp = server::via_wire(&server::answer_servfail(&q));
                debug_assert_eq!(resp.rcode(), dnswire::Rcode::ServFail);
            }
            AttemptResult::ServFail(n.base_rtt_ms * state.rtt_mult.min(10.0))
        } else {
            AttemptResult::Timeout
        }
    }
}

impl Resolver {
    /// The "additional queries" path of §3.2, footnote 1: consult a TTL
    /// cache first. A fresh cached NS RRset answers locally (masking any
    /// ongoing attack until expiry); a miss resolves authoritatively and,
    /// on success, refreshes the cache. Returns the outcome and whether it
    /// was served from cache.
    pub fn resolve_cached<R: Rng + ?Sized>(
        &self,
        infra: &Infra,
        cache: &mut crate::cache::TtlCache,
        domain: DomainId,
        at: simcore::time::SimTime,
        loads: &LoadBook,
        rng: &mut R,
    ) -> (QueryOutcome, bool) {
        use crate::cache::CacheKey;
        use dnswire::{RData, Record, RrType};
        let name = infra.domain(domain).name.clone();
        let key = CacheKey { name: name.clone(), rtype: RrType::Ns };
        if cache.get(&key, at).is_some() {
            // Local cache hit: sub-millisecond, no authoritative contact.
            return (QueryOutcome { status: QueryStatus::Ok, rtt_ms: 0.1, attempts: 0 }, true);
        }
        let out = self.resolve(infra, domain, at.window(), loads, rng);
        if out.status == QueryStatus::Ok {
            let rec = infra.domain(domain);
            let records: Vec<Record> = infra
                .nsset(rec.nsset)
                .members()
                .iter()
                .map(|&ns| {
                    Record::new(
                        name.clone(),
                        crate::server::NS_TTL,
                        RData::Ns(infra.nameserver(ns).name.clone()),
                    )
                })
                .collect();
            cache.put(key, records, at);
        }
        (out, false)
    }
}

enum AttemptResult {
    Answered(f64),
    ServFail(f64),
    Timeout,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::Deployment;
    use netbase::Asn;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::net::Ipv4Addr;

    fn world(capacity: f64) -> (Infra, DomainId, Vec<Ipv4Addr>) {
        let mut infra = Infra::new();
        let addrs: Vec<Ipv4Addr> = vec![
            "195.135.195.195".parse().unwrap(),
            "195.8.195.195".parse().unwrap(),
            "37.97.199.195".parse().unwrap(),
        ];
        let ids: Vec<_> = addrs
            .iter()
            .enumerate()
            .map(|(i, &addr)| {
                infra.add_nameserver(
                    format!("ns{i}.transip.net").parse().unwrap(),
                    addr,
                    Asn(20857),
                    Deployment::Unicast,
                    capacity,
                    1_000.0,
                    15.0,
                )
            })
            .collect();
        let set = infra.intern_nsset(ids);
        let d = infra.add_domain("klant.nl".parse().unwrap(), set);
        (infra, d, addrs)
    }

    #[test]
    fn healthy_world_resolves_fast() {
        let (infra, d, _) = world(50_000.0);
        let book = LoadBook::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let r = Resolver::default();
        for _ in 0..200 {
            let out = r.resolve(&infra, d, Window(0), &book, &mut rng);
            assert_eq!(out.status, QueryStatus::Ok);
            assert!(out.rtt_ms < 20.0, "rtt {}", out.rtt_ms);
            assert_eq!(out.attempts, 1);
        }
    }

    #[test]
    fn saturated_world_times_out() {
        let (infra, d, addrs) = world(50_000.0);
        let mut book = LoadBook::new();
        for a in &addrs {
            book.add(*a, Window(0), 5_000_000.0); // 100x capacity
        }
        let mut rng = SmallRng::seed_from_u64(2);
        let r = Resolver::default();
        let mut timeouts = 0;
        let n = 500;
        for _ in 0..n {
            let out = r.resolve(&infra, d, Window(0), &book, &mut rng);
            if out.status == QueryStatus::Timeout {
                timeouts += 1;
                // Wasted the full budget on all attempts.
                assert!(out.rtt_ms >= r.timeout_ms * out.attempts as f64 - 1e-9);
            }
        }
        assert!(timeouts > n * 8 / 10, "only {timeouts}/{n} timed out");
    }

    #[test]
    fn partial_attack_inflates_rtt_but_resolves() {
        let (infra, d, addrs) = world(50_000.0);
        let mut book = LoadBook::new();
        // ρ ≈ 0.92 on every server → ~12x RTT, no loss.
        for a in &addrs {
            book.add(*a, Window(0), 45_000.0);
        }
        let mut rng = SmallRng::seed_from_u64(3);
        let r = Resolver::default();
        let mut sum = 0.0;
        let n = 300;
        for _ in 0..n {
            let out = r.resolve(&infra, d, Window(0), &book, &mut rng);
            assert_eq!(out.status, QueryStatus::Ok);
            sum += out.rtt_ms;
        }
        let avg = sum / n as f64;
        assert!(avg > 100.0, "expected ~10x of 15ms baseline, got {avg}");
    }

    #[test]
    fn one_dead_server_masked_by_retries() {
        let (infra, d, addrs) = world(50_000.0);
        let mut book = LoadBook::new();
        book.add(addrs[0], Window(0), 50_000_000.0); // only ns0 dead
        let mut rng = SmallRng::seed_from_u64(4);
        let r = Resolver::default();
        let mut ok = 0;
        let mut slow = 0;
        let n = 600;
        for _ in 0..n {
            let out = r.resolve(&infra, d, Window(0), &book, &mut rng);
            if out.status == QueryStatus::Ok {
                ok += 1;
                if out.rtt_ms > 1_000.0 {
                    slow += 1; // burned a timeout on the dead server first
                }
            }
        }
        assert!(ok > n * 95 / 100, "retries should mask one dead server: {ok}/{n}");
        // About a third of queries start at the dead server.
        assert!(slow > n / 5, "some queries should pay the timeout: {slow}");
    }

    #[test]
    fn wire_exercise_path_agrees() {
        let (infra, d, _) = world(50_000.0);
        let book = LoadBook::new();
        let mut rng = SmallRng::seed_from_u64(5);
        let r = Resolver { exercise_wire: true, ..Resolver::default() };
        let out = r.resolve(&infra, d, Window(0), &book, &mut rng);
        assert_eq!(out.status, QueryStatus::Ok);
    }

    #[test]
    fn cached_resolution_masks_attacks_until_ttl_expiry() {
        use crate::cache::TtlCache;
        use simcore::time::{SimDuration, SimTime};
        let (infra, d, addrs) = world(50_000.0);
        let mut cache = TtlCache::new();
        let mut rng = SmallRng::seed_from_u64(23);
        let r = Resolver::default();
        // Warm the cache while healthy.
        let t0 = SimTime::from_days(2);
        let (out, from_cache) =
            r.resolve_cached(&infra, &mut cache, d, t0, &LoadBook::new(), &mut rng);
        assert_eq!(out.status, QueryStatus::Ok);
        assert!(!from_cache, "first query is authoritative");
        // The attack starts; everything authoritative is dead.
        let mut book = LoadBook::new();
        let t1 = t0 + SimDuration::from_mins(30);
        for a in &addrs {
            book.add(*a, t1.window(), 50_000_000.0);
        }
        let (out, from_cache) = r.resolve_cached(&infra, &mut cache, d, t1, &book, &mut rng);
        assert_eq!(out.status, QueryStatus::Ok, "cache masks the outage");
        assert!(from_cache);
        assert!(out.rtt_ms < 1.0);
        // Past the NS TTL (3600 s) the mask falls and resolution fails.
        let t2 = t0 + SimDuration::from_secs(crate::server::NS_TTL as u64 + 60);
        for a in &addrs {
            book.add(*a, t2.window(), 50_000_000.0);
        }
        let (out, from_cache) = r.resolve_cached(&infra, &mut cache, d, t2, &book, &mut rng);
        assert!(!from_cache);
        assert_ne!(out.status, QueryStatus::Ok, "empty cache exposes the attack");
    }

    #[test]
    fn inconsistent_parent_gates_reachability() {
        // Child zone lists three healthy servers, but the parent (TLD)
        // delegation still points at a single stale server. When that
        // stale server is attacked, resolution fails even though the
        // authoritative NS set looks perfectly healthy — the reason
        // OpenINTEL issues explicit NS queries and why lame delegations
        // hurt resilience.
        let (mut infra, _d, _addrs) = world(50_000.0);
        let stale_addr: Ipv4Addr = "203.0.113.199".parse().unwrap();
        let stale = infra.add_nameserver(
            "old-ns.transip.net".parse().unwrap(),
            stale_addr,
            Asn(20857),
            Deployment::Unicast,
            50_000.0,
            1_000.0,
            15.0,
        );
        let child = infra.domain(DomainId(0)).nsset;
        let parent = infra.intern_nsset(vec![stale]);
        let d2 = infra.add_domain_inconsistent("legacy.nl".parse().unwrap(), child, parent);
        assert!(infra.domain(d2).is_inconsistent());
        assert_eq!(infra.domain(d2).query_nsset(), parent);

        let mut book = LoadBook::new();
        book.add(stale_addr, Window(0), 50_000_000.0); // stale server dead
        let mut rng = SmallRng::seed_from_u64(17);
        let r = Resolver::default();
        let mut failures = 0;
        for _ in 0..100 {
            if r.resolve(&infra, d2, Window(0), &book, &mut rng).status != QueryStatus::Ok {
                failures += 1;
            }
        }
        assert!(failures > 95, "healthy child set cannot save a lame parent: {failures}/100");

        // A consistent sibling domain on the same child set is unaffected.
        let out = r.resolve(&infra, DomainId(0), Window(0), &book, &mut rng);
        assert_eq!(out.status, QueryStatus::Ok);
    }

    #[test]
    fn servfail_surfaces() {
        let (infra, d, addrs) = world(50_000.0);
        let mut book = LoadBook::new();
        for a in &addrs {
            book.add(*a, Window(0), 500_000.0); // ~10x capacity: heavy loss
        }
        let mut rng = SmallRng::seed_from_u64(6);
        let r = Resolver::default();
        let mut saw_servfail = false;
        for _ in 0..2_000 {
            if r.resolve(&infra, d, Window(0), &book, &mut rng).status == QueryStatus::ServFail {
                saw_servfail = true;
                break;
            }
        }
        assert!(saw_servfail, "8% of failures should be SERVFAIL");
    }
}
