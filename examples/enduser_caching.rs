//! §6.3.1's end-user argument, quantified: how record TTL and domain
//! popularity decide whether users *feel* a complete authoritative outage.
//!
//! ```sh
//! cargo run --example enduser_caching
//! ```

use dnsimpact::core::enduser::{caching_contrast, CacheImpactModel};
use dnsimpact::prelude::*;

fn main() {
    println!(
        "User-visible failure fraction during a complete authoritative outage\n\
         (one resolver cache; rows = domain profile, columns = outage length)\n"
    );
    let outages = [5u64, 15, 60, 240, 1_440];
    print!("{:<22}", "domain profile");
    for m in outages {
        print!("{:>9}", format!("{m} min"));
    }
    println!();
    let profiles: [(&str, f64, f64); 5] = [
        ("popular, TTL 24h", 1.0, 86_400.0),
        ("popular, TTL 1h", 1.0, 3_600.0),
        ("popular, TTL 5m", 1.0, 300.0),
        ("unpopular, TTL 1h", 1.0 / 7_200.0, 3_600.0),
        ("unpopular, TTL 5m", 1.0 / 7_200.0, 300.0),
    ];
    for (label, rate, ttl) in profiles {
        let m = CacheImpactModel::new(rate, ttl);
        print!("{label:<22}");
        for mins in outages {
            let f = m.user_failure_fraction(SimDuration::from_mins(mins));
            print!("{:>9}", format!("{:.0}%", f * 100.0));
        }
        println!();
    }

    println!("\nThe paper's qualitative claim (§6.3.1), for the modal 30-minute attack:");
    for (label, f) in caching_contrast(SimDuration::from_mins(30)) {
        println!("  {label:<22} {:.0}% of in-outage queries fail", f * 100.0);
    }
    println!(
        "\nMoura et al.'s dike holds while TTL ≫ outage; it breaks for\n\
         low-TTL (CDN-style) records and for long-tail domains nobody has\n\
         cached — exactly the populations the paper flags as most exposed."
    );
}
