//! §5.2: the March 2022 attacks on Russian infrastructure, driven through
//! the reactive measurement platform — including the coordination-channel
//! correlation that substitutes for the paper's Figure 4.
//!
//! ```sh
//! cargo run --release --example russia_reactive
//! ```

use dnsimpact::prelude::*;
use scenarios::{correlate_messages, osint, MilRuScenario, RdzScenario};
use std::sync::Arc;

fn main() {
    let rngs = RngFactory::new(2022);

    // ---- mil.ru -------------------------------------------------------
    let sc = MilRuScenario::build(&rngs);
    println!(
        "mil.ru: {} nameservers, {} /24(s), {} ASN(s) — the paper's textbook\n\
         example of poor resilience.\n",
        sc.infra.nsset(sc.nsset).len(),
        sc.infra.nsset_slash24s(sc.nsset).len(),
        sc.infra.nsset_asns(sc.nsset).len(),
    );
    let feed = sc.feed(&rngs);
    let loads = sc.load_book();
    println!(
        "telescope: {} feed records, {} episodes (modest visible intensity)",
        feed.records.len(),
        feed.episodes.len()
    );
    let infra = Arc::new(sc.infra);
    let platform = ReactivePlatform::default();
    // Probe two days around the blackout onset.
    let reports = platform.run(&infra, &feed.records, &loads, &rngs, 576);
    for r in &reports {
        println!(
            "  victim {}: {} of {} probe rounds fully unresolvable (probing from {})",
            r.plan.victim,
            r.unresolvable_rounds(),
            r.rounds.len(),
            r.plan.start,
        );
    }

    // ---- RDZ railways ---------------------------------------------------
    let sc = RdzScenario::build(&rngs);
    let feed = sc.feed(&rngs);
    let loads = sc.load_book();
    println!("\nRDZ railways: visible attack {} → {}", sc.visible_span.0, sc.visible_span.1);
    let infra = Arc::new(sc.infra);
    // 24h of probing after the trigger.
    let reports = platform.run(&infra, &feed.records, &loads, &rngs, 288);
    for r in &reports {
        match r.recovery_after(sc.visible_span.1) {
            Some(t) => println!(
                "  victim {}: unresolvable through the night, majority-resolvable again at {}",
                r.plan.victim, t
            ),
            None => println!("  victim {}: no recovery within the probe horizon", r.plan.victim),
        }
    }

    // ---- OSINT correlation (Figure 4 substitute) ------------------------
    let log = osint::rdz_channel_log(&sc.addrs);
    let matches = correlate_messages(&log, &feed.episodes, SimDuration::from_mins(30));
    println!("\ncoordination-channel correlation:");
    for m in &matches {
        let msg = &log[m.message_idx];
        let ep = &feed.episodes[m.episode_idx];
        println!(
            "  [{}] {} — matches attack on {} (inferred start {}, lag {:+} min)",
            msg.at,
            msg.text.chars().take(60).collect::<String>(),
            ep.victim,
            ep.first_window.start(),
            m.lag_secs / 60,
        );
    }
}
