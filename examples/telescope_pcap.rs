//! Export the darknet's sampled backscatter as a `.pcap` you can open in
//! Wireshark, then parse it back with the in-tree reader to verify every
//! frame.
//!
//! ```sh
//! cargo run --example telescope_pcap [output.pcap]
//! ```

use dnsimpact::prelude::*;
use pcap::{EthernetFrame, Ipv4Header, PcapReader};
use telescope::export::export_pcap;

fn main() {
    let path = std::env::args().nth(1).unwrap_or_else(|| "backscatter.pcap".into());
    let rngs = RngFactory::new(99);

    // One TCP SYN flood and one UDP flood, both spoofed.
    let mk = |id: u64, victim: &str, proto: Protocol, port: u16, pps: f64| Attack {
        id: AttackId(id),
        target: victim.parse().unwrap(),
        start: SimTime::from_days(1),
        duration: SimDuration::from_mins(15),
        vectors: vec![VectorSpec {
            kind: VectorKind::RandomSpoofed,
            protocol: proto,
            ports: if port == 0 { vec![] } else { vec![port] },
            victim_pps: pps,
            source_count: 100_000,
        }],
    };
    let attacks = vec![
        mk(0, "203.0.113.9", Protocol::Tcp, 53, 40_000.0),
        mk(1, "198.51.100.7", Protocol::Udp, 123, 25_000.0),
    ];

    let darknet = Darknet::ucsd_like();
    let obs = BackscatterSampler::new(&darknet).sample(&attacks, &rngs);
    println!("sampled {} backscatter observations", obs.len());

    let mut rng = rngs.stream("pcap-export");
    let file = std::fs::File::create(&path).expect("create pcap");
    let n = export_pcap(&darknet, &obs, &mut rng, file).expect("export");
    println!("wrote {n} packets to {path}");

    // Read the capture back and dissect every frame.
    let file = std::fs::File::open(&path).expect("open pcap");
    let mut reader = PcapReader::new(file).expect("pcap header");
    let mut tcp = 0;
    let mut icmp = 0;
    while let Some(pkt) = reader.next_packet().expect("packet") {
        let eth = EthernetFrame::decode(&pkt.data).expect("ethernet");
        let ip = Ipv4Header::decode(&eth.payload).expect("ipv4 + checksum");
        assert!(darknet.covers(ip.dst), "backscatter lands in the darknet");
        assert!(!darknet.covers(ip.src), "victims live outside the darknet");
        match ip.proto {
            pcap::IpProto::Tcp => tcp += 1,
            pcap::IpProto::Icmp => icmp += 1,
            other => panic!("unexpected protocol {other:?}"),
        }
    }
    println!("parsed back: {tcp} SYN-ACK backscatter frames, {icmp} ICMP port-unreachable frames");
    println!("open {path} in Wireshark to inspect the synthetic capture.");
}
