//! The §5.1 TransIP case study end to end: two attacks on a large hosting
//! provider with three unicast nameservers, the telescope's Table-2
//! metrics, and the Figure-2/3 measurement series.
//!
//! ```sh
//! cargo run --release --example transip_case_study
//! ```

use dnsimpact::prelude::*;
use scenarios::TransIpScenario;

fn main() {
    let rngs = RngFactory::new(42);
    let sc = TransIpScenario::build(&rngs);
    println!(
        "TransIP scenario: {} domains behind {} unicast nameservers ({} /24s, {} ASN)\n",
        sc.infra.domain_count(),
        sc.infra.nsset(sc.nsset).len(),
        sc.infra.nsset_slash24s(sc.nsset).len(),
        sc.infra.nsset_asns(sc.nsset).len(),
    );

    // Telescope inference → Table 2.
    let feed = sc.feed(&rngs);
    for (name, range) in [("December 2020", sc.dec_range), ("March 2021", sc.mar_range)] {
        println!("{name} attack (telescope-inferred):");
        for m in sc.table2(&feed, range).into_iter().flatten() {
            println!(
                "  NS {}: peak {:>8.0} ppm → {:>5.2} Gbps inferred, {:>9} attacker IPs, {:>4.0} min",
                m.label, m.observed_ppm, m.inferred_gbps, m.attacker_ips, m.duration_min
            );
        }
    }

    // Measurement series around the December attack (Figure 2).
    let loads = sc.load_book();
    let series = sc.measure_series(sc.dec_range.0, sc.dec_range.1, &loads, &rngs);
    let baseline: f64 = {
        let pts: Vec<_> =
            series.iter().filter(|p| p.window.day() == sc.dec_attack.0.day() - 1).collect();
        pts.iter().map(|p| p.avg_rtt_ms).sum::<f64>() / pts.len() as f64
    };
    println!("\nDecember RTT series (hourly, vs {baseline:.1} ms baseline):");
    for chunk in series.chunks(12) {
        let domains: u64 = chunk.iter().map(|p| p.domains).sum();
        if domains == 0 {
            continue;
        }
        let rtt =
            chunk.iter().map(|p| p.avg_rtt_ms * p.domains as f64).sum::<f64>() / domains as f64;
        if rtt > baseline * 3.0 {
            println!(
                "  {}  {:>7.1} ms  ({:>5.1}x)  {}",
                chunk[0].window.start(),
                rtt,
                rtt / baseline,
                if chunk[0].window.start() >= sc.dec_attack.1 {
                    "← after the RSDoS-inferred end (the 8-hour tail)"
                } else {
                    "under visible attack"
                }
            );
        }
    }

    // March: timeout shares (Figure 3).
    let series = sc.measure_series(sc.mar_range.0, sc.mar_range.1, &loads, &rngs);
    println!("\nMarch timeout shares (only impaired hours shown):");
    for chunk in series.chunks(12) {
        let domains: u64 = chunk.iter().map(|p| p.domains).sum();
        if domains == 0 {
            continue;
        }
        let to =
            chunk.iter().map(|p| p.timeout_share * p.domains as f64).sum::<f64>() / domains as f64;
        if to > 0.02 {
            println!("  {}  {:>5.1}% of domains timed out", chunk[0].window.start(), to * 100.0);
        }
    }
    println!(
        "\nPaper shapes: ≈10x December inflation persisting 8h past the visible end;\n\
         March more intense with ≈20% timeouts confined to the telescope interval."
    );
}
