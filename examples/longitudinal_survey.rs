//! A scaled-down version of the paper's 17-month longitudinal analysis
//! (§6): generate the calibrated attack population, run the full join
//! pipeline, and print the headline findings.
//!
//! ```sh
//! cargo run --release --example longitudinal_survey
//! ```

use dnsimpact::prelude::*;
use scenarios::{paper_longitudinal_config, world, PaperScale, WorldConfig};

fn main() {
    let rngs = RngFactory::new(1);
    let built = world::build(&WorldConfig::default(), &rngs);
    // 1/200 of the paper's feed volume keeps this example fast.
    let cfg = paper_longitudinal_config(PaperScale { divisor: 200 });
    let months = cfg.months.clone();
    let attacks = AttackScheduler::new(cfg).generate(&built.target_pool(), &rngs);
    println!("generated {} attacks over {} months", attacks.len(), months.len());

    let report = run_longitudinal(
        &built.infra,
        &Darknet::ucsd_like(),
        &attacks,
        &months,
        &built.meta,
        &LongitudinalConfig::default(),
        &rngs,
    );

    println!("\nmonthly DNS-attack share (paper band: 0.57%–2.12%):");
    for m in &report.monthly {
        println!(
            "  {}  {:>6} attacks, {:>5} on DNS infra ({:>5.2}%)",
            m.month,
            m.total_attacks(),
            m.dns_attacks,
            m.dns_share() * 100.0
        );
    }

    println!("\ntop attacked organizations (Table 4 shape):");
    for (asn, n, name) in report.top_asns.iter().take(5) {
        println!("  {asn} {name}: {n} attacks");
    }

    let fs = &report.failure_summary;
    println!(
        "\nimpact events: {} — {} with failures, {} complete failures",
        fs.events, fs.events_with_failures, fs.complete_failures
    );
    println!(
        "correlation intensity↔impact: r = {:?} (paper: none worth reporting)",
        report.intensity_impact.pearson().map(|r| (r * 1000.0).round() / 1000.0)
    );

    println!("\nresilience (Figure 11 shape — anycast should sit near 1x):");
    for c in &report.by_anycast {
        println!(
            "  {:<8} {:>4} events, median impact {:>6.2}x, ≥10x: {}, ≥100x: {}",
            c.label, c.events, c.median_impact, c.over_10x, c.over_100x
        );
    }
}
