//! Quickstart: build a tiny DNS world, attack a nameserver, watch the
//! darknet telescope infer the attack and the measurement platform observe
//! its impact on resolution.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use dnsimpact::prelude::*;

fn main() {
    let rngs = RngFactory::new(7);

    // 1. A provider with two unicast nameservers serving 2,000 domains.
    let mut infra = Infra::new();
    let ns_a = infra.add_nameserver(
        "ns1.example-host.net".parse().unwrap(),
        "198.51.100.53".parse().unwrap(),
        Asn(64500),
        Deployment::Unicast,
        50_000.0, // capacity, pps
        1_000.0,  // legitimate load, pps
        18.0,     // unloaded RTT from the vantage point, ms
    );
    let ns_b = infra.add_nameserver(
        "ns2.example-host.net".parse().unwrap(),
        "203.0.113.53".parse().unwrap(),
        Asn(64500),
        Deployment::Unicast,
        50_000.0,
        1_000.0,
        18.0,
    );
    let nsset = infra.intern_nsset(vec![ns_a, ns_b]);
    for i in 0..2_000 {
        infra.add_domain(format!("site{i}.example").parse().unwrap(), nsset);
    }

    // 2. A randomly-spoofed SYN flood against ns1 on day 3, 90 minutes,
    //    45 kpps — enough to push the server to ρ≈0.92.
    let start = SimTime::from_days(3) + SimDuration::from_hours(12);
    let attack = Attack {
        id: AttackId(0),
        target: "198.51.100.53".parse().unwrap(),
        start,
        duration: SimDuration::from_mins(90),
        vectors: vec![VectorSpec {
            kind: VectorKind::RandomSpoofed,
            protocol: Protocol::Tcp,
            ports: vec![53],
            victim_pps: 45_000.0,
            source_count: 2_000_000,
        }],
    };

    // 3. The telescope's view: backscatter thinning + RSDoS inference.
    let darknet = Darknet::ucsd_like();
    let obs = BackscatterSampler::new(&darknet).sample(std::slice::from_ref(&attack), &rngs);
    let classifier = RsdosClassifier::default();
    let records = classifier.classify(&obs);
    let episodes = classifier.episodes(&records);
    println!("telescope inferred {} attack episode(s):", episodes.len());
    for e in &episodes {
        println!(
            "  victim {} from {} for {:?} — peak {:.0} ppm → ≈{:.0} kpps victim-side",
            e.victim,
            e.first_window.start(),
            e.duration(),
            e.peak_ppm,
            e.peak_ppm * darknet.scale_factor() / 60.0 / 1_000.0,
        );
    }

    // 4. Offered load + the unbound-like resolver: what an end user sees.
    let mut loads = LoadBook::new();
    for (addr, w, pps) in accumulate_windows(&[attack]) {
        loads.add(addr, w, pps);
    }
    let resolver = Resolver::default();
    let mut rng = rngs.stream("demo-queries");
    let avg = |window: Window, rng: &mut rand::rngs::SmallRng, loads: &LoadBook| {
        let n = 200;
        let mut sum = 0.0;
        let mut ok = 0;
        for i in 0..n {
            let out = resolver.resolve(&infra, DomainId(i % 2_000), window, loads, rng);
            sum += out.rtt_ms;
            ok += (out.status == QueryStatus::Ok) as u32;
        }
        (sum / n as f64, ok, n)
    };
    let (before, ok_b, n) = avg(SimTime::from_days(3).window(), &mut rng, &loads);
    let (during, ok_d, _) = avg((start + SimDuration::from_mins(30)).window(), &mut rng, &loads);
    println!("\nresolution across {n} domains:");
    println!("  before attack: avg {before:.1} ms, {ok_b}/{n} resolved");
    println!("  during attack: avg {during:.1} ms, {ok_d}/{n} resolved");
    println!(
        "\nimpact factor ≈ {:.1}x. Queries landing on the attacked server pay\n\
         ≈12x queueing delay (or a retry); the healthy unicast twin absorbs the\n\
         rest — exactly the resilience trade-off the paper quantifies.",
        during / before
    );
}
