//! Build the simulated world from a standard RFC 1035 zone file instead of
//! the synthetic generator, then attack it and probe from a multi-vantage
//! fleet (the paper's §9 future work).
//!
//! ```sh
//! cargo run --example zonefile_world
//! ```

use dnsimpact::prelude::*;
use dnssim::ZoneLoader;
use dnswire::zonefile::parse_zone;
use reactive::{probe_from_fleet, VantagePoint};

const TLD_SNAPSHOT: &str = "\
; a toy .nl-style TLD zone snapshot
$TTL 3600
webshop     IN NS ns0.bighost.net.
webshop     IN NS ns1.bighost.net.
bakkerij    IN NS ns0.bighost.net.
bakkerij    IN NS ns1.bighost.net.
gemeente    IN NS ns.anycast-dns.net.
krant       IN NS ns.anycast-dns.net.
klusbedrijf IN NS ns.kleinhost.nl.
ns0.bighost.net.    IN A 198.51.100.53
ns1.bighost.net.    IN A 203.0.113.53
ns.anycast-dns.net. IN A 192.0.2.53
ns.kleinhost.nl.    IN A 198.18.4.53
";

fn main() {
    let rngs = RngFactory::new(3);
    let origin: Name = "nl".parse().unwrap();
    let records = parse_zone(TLD_SNAPSHOT, &origin).expect("zone parses");
    println!("parsed {} records from the zone snapshot", records.len());

    // Load into the simulator; a prefix2as table attributes origin ASNs.
    let mut p2a = Prefix2As::new();
    p2a.announce("198.51.100.0/24".parse().unwrap(), Asn(64_501));
    p2a.announce("203.0.113.0/24".parse().unwrap(), Asn(64_501));
    p2a.announce("192.0.2.0/24".parse().unwrap(), Asn(64_502));
    p2a.announce("198.18.0.0/15".parse().unwrap(), Asn(64_503));
    let mut infra = Infra::new();
    let domains = ZoneLoader::default().load(&mut infra, &records, Some(&p2a)).expect("zone loads");
    // Promote the shared anycast server to an actual anycast deployment.
    // (Zone data cannot express deployment; the census would tell us.)
    let anycast_ns = infra.ns_by_addr("192.0.2.53".parse().unwrap()).unwrap();
    println!(
        "registered {} domains across {} nameservers / {} NSSets",
        domains.len(),
        infra.nameservers().len(),
        infra.nsset_count()
    );
    for &d in &domains {
        let rec = infra.domain(d);
        println!(
            "  {} → {:?} (ASNs: {:?})",
            rec.name,
            infra
                .nsset(rec.nsset)
                .members()
                .iter()
                .map(|&n| infra.nameserver(n).name.to_string())
                .collect::<Vec<_>>(),
            infra.nsset_asns(rec.nsset)
        );
    }

    // Attack the small host; probe everything from a 5-vantage fleet.
    let victim: std::net::Ipv4Addr = "198.18.4.53".parse().unwrap();
    let at = SimTime::from_days(2);
    let mut loads = LoadBook::new();
    loads.add(victim, at.window(), 2_000_000.0);
    let fleet = VantagePoint::default_fleet();
    let mut rng = rngs.stream("zonefile-probes");
    println!("\nattack on {victim}: per-domain view from the fleet");
    for &d in &domains {
        let mv = probe_from_fleet(&fleet, &infra, d, at, &loads, &mut rng);
        println!(
            "  {:<16} resolvable from {}/{} vantages (worst NS share {:.0}%)",
            infra.domain(d).name.to_string(),
            mv.resolvable_from().len(),
            fleet.len(),
            mv.worst_ns_share() * 100.0
        );
    }
    let _ = anycast_ns;
}
