#!/bin/sh
# Offline CI gate: build, full test suite, then an end-to-end determinism
# smoke on the built `repro` binary — the experiment catalog run with
# --jobs 1 and --jobs 2 must produce byte-identical CSVs and stdout.
#
# Everything here works without network access: all external dependencies
# are local shim crates (see shims/README.md).
set -eu

cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> determinism smoke: repro --jobs 1 vs --jobs 2"
REPRO=target/release/repro
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT
# A cheap but representative subset: longitudinal renders, the shared-run
# coalescing trio, and a self-contained scenario experiment.
EXPERIMENTS="table1 table3 table5 fig5 fig8 fig11 ablate futurework"
"$REPRO" --seed 42 --scale 1500 --jobs 1 --out "$SMOKE/j1" $EXPERIMENTS \
    > "$SMOKE/j1.stdout" 2> /dev/null
"$REPRO" --seed 42 --scale 1500 --jobs 2 --out "$SMOKE/j2" $EXPERIMENTS \
    > "$SMOKE/j2.stdout" 2> /dev/null
diff -r "$SMOKE/j1" "$SMOKE/j2"
diff "$SMOKE/j1.stdout" "$SMOKE/j2.stdout"
echo "==> determinism smoke passed (artifacts byte-identical across job counts)"

echo "==> chaos gate: fault injection, kill -9 mid-run, resume, diff vs clean"
# The same catalog subset plus the self-contained scenario experiments, so
# the killed run has checkpointable jobs both before and after the kill.
# Scale 100 makes the run long enough (~2-3 s) for the kill to land
# mid-flight; the diff holds wherever it lands.
CHAOS_EXPERIMENTS="$EXPERIMENTS table2 fig2 fig3 russia"
"$REPRO" --seed 42 --scale 100 --jobs 2 --out "$SMOKE/chaos-clean" \
    $CHAOS_EXPERIMENTS > /dev/null 2>&1
# Chaos run with completion markers, killed hard mid-flight.
"$REPRO" --seed 42 --scale 100 --jobs 2 --chaos-seed 9 \
    --checkpoint-dir "$SMOKE/ckpt" --out "$SMOKE/chaos-out" \
    $CHAOS_EXPERIMENTS > /dev/null 2>&1 &
CHAOS_PID=$!
sleep 1
kill -9 "$CHAOS_PID" 2> /dev/null || true
wait "$CHAOS_PID" 2> /dev/null || true
# Resume with the same seed, chaos seed, and checkpoint dir: completed
# jobs are skipped, the rest re-run; the output must match a run that was
# never killed and never saw a fault.
"$REPRO" --seed 42 --scale 100 --jobs 2 --chaos-seed 9 \
    --checkpoint-dir "$SMOKE/ckpt" --out "$SMOKE/chaos-out" \
    $CHAOS_EXPERIMENTS > /dev/null 2>&1
diff -r "$SMOKE/chaos-clean" "$SMOKE/chaos-out"
echo "==> chaos gate passed (killed-and-resumed run byte-identical to clean run)"

echo "==> ci green"
