#!/bin/sh
# Offline CI gates. Default run order:
#
#   lint         cargo fmt --check + cargo clippy -D warnings + sh -n ci.sh
#   build        cargo build --release (workspace)
#   tests        cargo test --workspace, plus the borrowed-vs-owned wire
#                differential suite by name so a skipped or filtered-out
#                differential run can never pass quietly
#   determinism  repro at --jobs 1 vs --jobs 2: byte-identical CSVs+stdout
#   chaos        fault injection, kill -9 mid-run, resume, diff vs clean
#   metrics      repro bench: schema-validated run report, counter
#                invariants, regression diff against the committed BENCH
#                baseline
#   wirebench    criterion smoke over the zero-copy parse and arena
#                feed-block benches: every expected benchmark must run to
#                completion and report a number
#   trace        pinned scenario with --trace-json: schema + causality
#                validation, and `repro explain` byte-identical across
#                worker counts
#   sweep        repro bench --scale-sweep smoke (1.5k + 15k cells):
#                cross-jobs artifact fingerprints enforced in-run, the
#                emitted dnsimpact-sweep/v1 report schema-validated
#                (heavy 150k/1.5M cells stay local: DNSIMPACT_SCALE_HEAVY)
#   suite        repro bench --suite all: the process-based Suite A/B
#                orchestrator — release binaries spawned as OS processes,
#                Suite A cross-process fingerprints exact, Suite B
#                histograms merged across chaos seeds — every verdict
#                must pass and the dnsimpact-suite/v1 report must
#                schema-validate
#   daemon       dnsimpactd on the pinned feed: query a known-impacted
#                domain mid-ingest (only after /statz proves ingest
#                progress), kill -9, restart from the checkpoint, diff the
#                recovered index fingerprint against a clean replay
#   live         the telemetry plane: scrape /metricsz mid-ingest and
#                parse the exposition, assert SLO verdicts surface in
#                /statz, render `repro watch` frames against the live
#                daemon, then replay the same feed prefix twice (different
#                chaos seed and --jobs) and byte-diff the deterministic
#                /seriesz + /sloz fields; the emitted dnsimpactd-live/v1
#                report must schema-validate
#   results      hygiene: every committed results/*.json must
#                schema-validate, and every file under results/ must be
#                covered by results/INDEX.md
#
# Usage:
#   ./ci.sh                 run every gate in order
#   ./ci.sh --quick         run only build + tests (the tier-1 loop)
#   ./ci.sh --gate NAME     run one named gate (repeatable); gates that
#                           exercise the release binaries expect a prior
#                           build (`./ci.sh --gate build`)
#   ./ci.sh --list          print the gate names and what each one proves
#
# Every run ends with a per-gate wall-clock table (printed even when a
# gate fails, with the failing gate marked) so slow gates are visible in
# CI logs.
#
# Everything here works without network access: all external dependencies
# are local shim crates (see shims/README.md).
set -eu

cd "$(dirname "$0")"

ALL_GATES="lint build tests determinism chaos metrics wirebench trace sweep suite daemon live results"

REPRO=target/release/repro
DAEMON=target/release/dnsimpactd

list_gates() {
    cat << 'EOF'
lint         cargo fmt --check, cargo clippy -D warnings, sh -n ci.sh
build        cargo build --release (workspace)
tests        cargo test --workspace + the dnswire differential suite by name
determinism  repro --jobs 1 vs --jobs 2: byte-identical CSVs + stdout
chaos        kill -9 mid-run + resume must equal a clean, fault-free run
metrics      repro bench: report schema + counter invariants + BENCH baseline diff
wirebench    criterion smoke: every parse/feed-block bench runs and reports
trace        trace export schema + causality; repro explain deterministic
sweep        bench --scale-sweep smoke: cross-jobs fingerprints + sweep schema
suite        bench --suite all: process-suite verdicts all PASS + suite schema
daemon       dnsimpactd kill -9 crash recovery fingerprint-identical to clean replay
live         /metricsz parses mid-ingest, SLO verdicts surface, repro watch renders,
             deterministic /seriesz + /sloz byte-identical across chaos seed and jobs
results      every committed results/*.json validates; INDEX.md covers results/
EOF
}

usage() {
    echo "usage: ./ci.sh [--quick | --gate NAME ... | --list]"
    echo "known gates: $ALL_GATES"
}

SELECTED=""
while [ $# -gt 0 ]; do
    case "$1" in
        --quick) SELECTED="build tests" ;;
        --gate)
            shift
            [ $# -gt 0 ] || {
                echo "ci.sh: --gate needs a name (one of: $ALL_GATES)" >&2
                exit 2
            }
            case " $ALL_GATES " in
                *" $1 "*) SELECTED="$SELECTED $1" ;;
                *)
                    echo "ci.sh: unknown gate '$1' (known: $ALL_GATES)" >&2
                    exit 2
                    ;;
            esac
            ;;
        --list)
            list_gates
            exit 0
            ;;
        -h | --help)
            usage
            exit 0
            ;;
        *)
            echo "ci.sh: unknown argument '$1'" >&2
            usage >&2
            exit 2
            ;;
    esac
    shift
done
[ -n "$SELECTED" ] || SELECTED="$ALL_GATES"

# --- preflight: name everything missing up front, so a mid-pipeline ----
# --- failure can't masquerade as a perf regression ---------------------
MISSING=""
for T in cargo date diff grep mktemp seq basename ls cat sh; do
    command -v "$T" > /dev/null 2>&1 || MISSING="$MISSING $T"
done
[ -z "$MISSING" ] || {
    echo "ci.sh preflight: missing required tool(s):$MISSING" >&2
    exit 2
}
# Gates that exercise the release binaries need them to exist already
# unless this run's own build gate will produce them.
NEEDS_BINARIES=0
BUILDS=0
for G in $SELECTED; do
    case "$G" in
        build) BUILDS=1 ;;
        determinism | chaos | metrics | trace | sweep | suite | daemon | live | results)
            NEEDS_BINARIES=1
            ;;
    esac
done
if [ "$NEEDS_BINARIES" -eq 1 ] && [ "$BUILDS" -eq 0 ]; then
    for B in "$REPRO" "$DAEMON"; do
        [ -x "$B" ] || MISSING="$MISSING $B"
    done
    [ -z "$MISSING" ] || {
        echo "ci.sh preflight: missing release binar(ies):$MISSING" >&2
        echo "ci.sh preflight: run ./ci.sh --gate build first" >&2
        exit 2
    }
fi

SMOKE=$(mktemp -d)
DPID=""
CURRENT_GATE=""
GATE_T0=0

# Printed from the EXIT trap so the table appears on failures too, with
# the in-flight gate marked FAILED.
finish() {
    status=$?
    [ -n "$DPID" ] && kill -9 "$DPID" 2> /dev/null
    if [ -n "$CURRENT_GATE" ]; then
        printf '  %-12s %5ss  FAILED\n' "$CURRENT_GATE" "$(($(date +%s) - GATE_T0))" \
            >> "$SMOKE/gate-times"
    fi
    if [ -s "$SMOKE/gate-times" ]; then
        echo ""
        echo "==> per-gate wall clock:"
        cat "$SMOKE/gate-times"
    fi
    rm -rf "$SMOKE"
    return "$status"
}
trap finish EXIT

# Run one gate function with timing. Gate bodies are called outside any
# condition context so `set -e` still aborts on their first failing
# command — never wrap the call in `||` or `if`.
run_gate() {
    CURRENT_GATE=$1
    GATE_T0=$(date +%s)
    "gate_$1"
    printf '  %-12s %5ss\n' "$1" "$(($(date +%s) - GATE_T0))" >> "$SMOKE/gate-times"
    CURRENT_GATE=""
}

# All repro invocations share the run identity; only jobs/output/chaos
# flags vary per gate. Keeps the gates honest: one config, many angles.
repro_run() {
    scale=$1
    jobs=$2
    out=$3
    shift 3
    "$REPRO" --seed 42 --scale "$scale" --jobs "$jobs" --out "$SMOKE/$out" "$@"
}

# A cheap but representative catalog subset: longitudinal renders, the
# shared-run coalescing trio, and a self-contained scenario experiment.
EXPERIMENTS="table1 table3 table5 fig5 fig8 fig11 ablate futurework"

gate_lint() {
    echo "==> lint gate: sh -n ci.sh"
    sh -n ci.sh
    echo "==> lint gate: cargo fmt --check"
    cargo fmt --check
    echo "==> lint gate: cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
}

gate_build() {
    echo "==> cargo build --release"
    cargo build --release --workspace
}

gate_tests() {
    echo "==> cargo test -q (workspace)"
    cargo test --workspace -q
    echo "==> tier-1 differential: borrowed wire views vs owned decoders"
    # Run the borrowed==owned differential suite by name: it is the
    # contract that lets every hot path use the zero-copy views, so it
    # must visibly execute (not just ride along in the workspace pass).
    cargo test -q -p dnswire --test differential
}

gate_determinism() {
    echo "==> determinism smoke: repro --jobs 1 vs --jobs 2"
    repro_run 1500 1 j1 $EXPERIMENTS > "$SMOKE/j1.stdout" 2> /dev/null
    repro_run 1500 2 j2 $EXPERIMENTS > "$SMOKE/j2.stdout" 2> /dev/null
    diff -r "$SMOKE/j1" "$SMOKE/j2"
    diff "$SMOKE/j1.stdout" "$SMOKE/j2.stdout"
    echo "==> determinism smoke passed (artifacts byte-identical across job counts)"
}

gate_chaos() {
    echo "==> chaos gate: fault injection, kill -9 mid-run, resume, diff vs clean"
    # The same catalog subset plus the self-contained scenario experiments,
    # so the killed run has checkpointable jobs both before and after the
    # kill. Scale 100 makes the run long enough (~2-3 s) for the kill to
    # land mid-flight; the diff holds wherever it lands.
    CHAOS_EXPERIMENTS="$EXPERIMENTS table2 fig2 fig3 russia"
    repro_run 100 2 chaos-clean $CHAOS_EXPERIMENTS > /dev/null 2>&1
    # Chaos run with completion markers, killed hard mid-flight.
    repro_run 100 2 chaos-out --chaos-seed 9 --checkpoint-dir "$SMOKE/ckpt" \
        $CHAOS_EXPERIMENTS > /dev/null 2>&1 &
    CHAOS_PID=$!
    sleep 1
    kill -9 "$CHAOS_PID" 2> /dev/null || true
    wait "$CHAOS_PID" 2> /dev/null || true
    # Resume with the same seed, chaos seed, and checkpoint dir: completed
    # jobs are skipped, the rest re-run; the output must match a run that
    # was never killed and never saw a fault.
    repro_run 100 2 chaos-out --chaos-seed 9 --checkpoint-dir "$SMOKE/ckpt" \
        $CHAOS_EXPERIMENTS > /dev/null 2>&1
    diff -r "$SMOKE/chaos-clean" "$SMOKE/chaos-out"
    echo "==> chaos gate passed (killed-and-resumed run byte-identical to clean run)"
}

gate_metrics() {
    echo "==> metrics gate: repro bench + schema/invariant validation"
    # The bench subcommand replays its pinned catalog subset (chaos on, so
    # the fault-accounting invariant is exercised) and emits the schema-v2
    # run report; validate-metrics re-reads it and fails on any schema
    # violation or counter-invariant break.
    BENCH_JSON="$SMOKE/bench/BENCH.json"
    # --compare with no path diffs against the newest committed BENCH
    # report under results/: deterministic counters must match exactly,
    # wall time and peak RSS must stay within the regression envelope.
    "$REPRO" bench --compare --metrics-json "$BENCH_JSON" --out "$SMOKE/bench-out" \
        > "$SMOKE/bench.stdout" 2> /dev/null
    # Bench suppresses artifact text: non-empty stdout means metrics leaked.
    if [ -s "$SMOKE/bench.stdout" ]; then
        echo "bench wrote to stdout:" >&2
        cat "$SMOKE/bench.stdout" >&2
        exit 1
    fi
    "$REPRO" validate-metrics "$BENCH_JSON"
    echo "==> metrics gate passed (report valid, invariants hold, no bench regression)"
}

gate_wirebench() {
    echo "==> wire gate: criterion smoke over parse + feed-block benches"
    # The zero-copy parse and arena-block benches must run to completion
    # and report every expected benchmark — a panicking or silently-
    # dropped bench fails here. The feedblock bench's own post-run assert
    # re-proves block rows == row-path records on the bench input.
    cargo bench -p dnsimpact-bench --bench wire --bench feedblock \
        > "$SMOKE/wirebench.txt" 2>&1 || {
        cat "$SMOKE/wirebench.txt" >&2
        exit 1
    }
    for B in dnswire/decode_ns_response dnswire/parse_ref_ns_response \
        dnswire/parse_ref_and_canonical_qname feedblock/classify_into_block \
        feedblock/episodes_from_block feedblock/fanout_block_clone; do
        grep -q "$B" "$SMOKE/wirebench.txt" || {
            echo "benchmark $B missing from criterion smoke output" >&2
            cat "$SMOKE/wirebench.txt" >&2
            exit 1
        }
    done
    echo "==> wire gate passed (all parse/feed-block benches ran and reported)"
}

gate_trace() {
    echo "==> trace gate: causal event trace export + forensics"
    # The pinned scenario covers every emission layer: the longitudinal
    # pipeline (rsdos episodes), the reactive feeds (milru/rdz), and the
    # catalog's stage brackets. validate-trace re-reads the Chrome trace
    # and checks schema + causality (triggers within the 10-minute bound,
    # probe rounds within the 50-domain budget, faults paired
    # inject/repair).
    TRACE_JSON="$SMOKE/trace.json"
    repro_run 1500 2 trace-out --trace-json "$TRACE_JSON" table1 russia \
        > /dev/null 2> /dev/null
    "$REPRO" validate-trace "$TRACE_JSON"
    # Episode forensics are part of the determinism contract: the explain
    # timeline for the same episode must be byte-identical whatever --jobs.
    repro_run 1500 1 expl-j1 explain milru/0 > "$SMOKE/explain-j1.txt" 2> /dev/null
    repro_run 1500 4 expl-j4 explain milru/0 > "$SMOKE/explain-j4.txt" 2> /dev/null
    diff "$SMOKE/explain-j1.txt" "$SMOKE/explain-j4.txt"
    grep -q "AttackOnset" "$SMOKE/explain-j1.txt"
    echo "==> trace gate passed (trace causally sound, explain deterministic)"
}

gate_sweep() {
    echo "==> sweep gate: repro bench --scale-sweep smoke"
    # The sweep refuses to emit a report unless every jobs=N cell's
    # artifact fingerprint matches its scale's jobs=1 cell, and (on
    # multi-core hosts) the largest scale's jobs=N cell shows speedup > 1;
    # on a single-CPU host the speedup gate auto-skips but the 8-thread
    # determinism cell still runs. validate-metrics then re-reads the
    # report through the sweep-v1 schema: sorted cells, finite rates,
    # consistent record accounting.
    "$REPRO" bench --scale-sweep --seed 42 --out "$SMOKE/sweep" 2> /dev/null
    SWEEP_JSON=$(ls "$SMOKE"/sweep/SWEEP_*.json)
    "$REPRO" validate-metrics "$SWEEP_JSON"
    echo "==> sweep gate passed (cross-jobs fingerprints equal, report schema valid)"
}

gate_suite() {
    echo "==> suite gate: repro bench --suite all (process-based A/B suites)"
    # The orchestrator spawns the release binaries as OS processes — the
    # pinned catalog across a scale x jobs grid plus clean/chaos daemon
    # ingests (Suite A, exact cross-process fingerprint agreement), and
    # chaos seeds x scales with per-process histograms merged bucket-wise
    # (Suite B). Exit is non-zero on any failed verdict; the verdict
    # table on stderr names the offending cell. validate-metrics then
    # re-reads the emitted report through the suite-v1 schema.
    "$REPRO" bench --suite all --out "$SMOKE/suite" > "$SMOKE/suite.stdout"
    # Suite mode reports on stderr only: stdout stays empty like bench.
    if [ -s "$SMOKE/suite.stdout" ]; then
        echo "bench --suite wrote to stdout:" >&2
        cat "$SMOKE/suite.stdout" >&2
        exit 1
    fi
    SUITE_JSON=$(ls "$SMOKE"/suite/SUITE_*.json)
    "$REPRO" validate-metrics "$SUITE_JSON"
    echo "==> suite gate passed (all verdicts PASS, report schema valid)"
}

gate_daemon() {
    echo "==> daemon gate: dnsimpactd crash recovery + query surface"
    # The daemon's whole robustness claim in one experiment: the index a
    # kill -9'd, checkpoint-recovered, chaos-injected daemon ends up
    # serving must fingerprint identically to an in-process clean
    # single-pass replay of the same feed. `dnsimpactd get` is the HTTP
    # client (curl is not guaranteed in this container).
    DFEED="--seed 7 --scale-target 15000 --months 2 --providers 20 --domains 6000"
    CLEAN_FP=$("$DAEMON" fingerprint $DFEED)
    DOM=$("$DAEMON" domains $DFEED --impacted -n 1)
    DCKPT="$SMOKE/daemon-ckpt"
    mkdir -p "$DCKPT"

    # First incarnation: paced ingest (so the kill lands mid-stream) under
    # a chaos seed (so recovery is proven against transport faults too).
    "$DAEMON" serve $DFEED --chaos-seed 3 --pace-ms 15 \
        --port-file "$SMOKE/daemon.port" --checkpoint-dir "$DCKPT" \
        2> "$SMOKE/daemon1.log" &
    DPID=$!
    for _ in $(seq 1 100); do
        [ -s "$SMOKE/daemon.port" ] && break
        sleep 0.1
    done
    DADDR=$(cat "$SMOKE/daemon.port")
    daemon_wait "$DADDR/healthz"
    # The kill must provably land mid-stream: poll /statz until at least
    # one batch has been applied rather than trusting wall-clock timing —
    # on a slow host a blind delay can kill a daemon that has ingested
    # nothing yet, which would make "recovery" vacuous.
    SEQ=0
    for _ in $(seq 1 100); do
        SEQ=$("$DAEMON" get --field applied_seq "$DADDR/statz" 2> /dev/null || echo 0)
        [ "$SEQ" -gt 0 ] 2> /dev/null && break
        sleep 0.1
    done
    [ "$SEQ" -gt 0 ] || {
        echo "daemon made no ingest progress within 10s; cannot prove mid-stream kill" >&2
        exit 1
    }
    # The query surface answers while ingest is still running.
    "$DAEMON" get "$DADDR/query?domain=$DOM" > "$SMOKE/daemon-answer1.json"
    grep -q '"staleness_s"' "$SMOKE/daemon-answer1.json"
    INGEST_DONE=$("$DAEMON" get --field ingest_done "$DADDR/statz" || true)
    kill -9 "$DPID"
    wait "$DPID" 2> /dev/null || true
    DPID=""
    # The paced feed takes ~18s to ingest; the kill above landed after
    # proven progress but before completion.
    [ "$INGEST_DONE" = "false" ] || {
        echo "daemon finished ingest before the kill; gate is vacuous" >&2
        exit 1
    }

    # Second incarnation: same checkpoint dir, no pacing. It must recover,
    # finish ingest, and serve the clean-replay fingerprint.
    "$DAEMON" serve $DFEED --chaos-seed 3 \
        --port-file "$SMOKE/daemon.port2" --checkpoint-dir "$DCKPT" \
        2> "$SMOKE/daemon2.log" &
    DPID=$!
    for _ in $(seq 1 100); do
        [ -s "$SMOKE/daemon.port2" ] && break
        sleep 0.1
    done
    DADDR=$(cat "$SMOKE/daemon.port2")
    daemon_wait "$DADDR/healthz"
    for _ in $(seq 1 100); do
        [ "$("$DAEMON" get --field ingest_done "$DADDR/statz" || true)" = "true" ] && break
        sleep 0.1
    done
    grep -q "recovered: replayed" "$SMOKE/daemon2.log"
    RECOVERED_FP=$("$DAEMON" get --field full_fp "$DADDR/statz")
    [ "$RECOVERED_FP" = "$CLEAN_FP" ] || {
        echo "recovered fingerprint $RECOVERED_FP != clean replay $CLEAN_FP" >&2
        exit 1
    }
    "$DAEMON" get "$DADDR/query?domain=$DOM" > "$SMOKE/daemon-answer2.json"
    grep -q '"attacks_seen"' "$SMOKE/daemon-answer2.json"
    "$DAEMON" get "$DADDR/readyz" > /dev/null
    kill -9 "$DPID"
    wait "$DPID" 2> /dev/null || true
    DPID=""
    echo "==> daemon gate passed (kill -9 recovery fingerprint-identical, shed-accounted serving)"
}

# Fetch the deterministic halves of the live series and the SLO verdict
# sequence from a running daemon into one file — the byte-diff unit of
# the live gate. Every live.* series the tick clock emits is included.
live_capture() {
    ADDR=$1
    OUT=$2
    : > "$OUT"
    for N in live.batches live.records live.episodes live.joined_rows \
        live.staleness_s live.ingest_lag live.clock_s; do
        "$DAEMON" get --field deterministic "$ADDR/seriesz?name=$N&last=1000000" >> "$OUT"
    done
    "$DAEMON" get --field deterministic "$ADDR/sloz" >> "$OUT"
}

gate_live() {
    echo "==> live gate: telemetry plane (exposition, SLO verdicts, watch, replay diff)"
    LFEED="--seed 7 --scale-target 15000 --months 2 --providers 20 --domains 6000"

    # Phase 1: a paced, chaos-seeded daemon is scraped MID-ingest — the
    # exposition must parse and the SLO evaluator must already be issuing
    # verdicts while batches are still applying.
    "$DAEMON" serve $LFEED --chaos-seed 5 --pace-ms 15 \
        --port-file "$SMOKE/live.port" 2> "$SMOKE/live-paced.log" &
    DPID=$!
    for _ in $(seq 1 100); do
        [ -s "$SMOKE/live.port" ] && break
        sleep 0.1
    done
    LADDR=$(cat "$SMOKE/live.port")
    daemon_wait "$LADDR/healthz"
    SEQ=0
    for _ in $(seq 1 100); do
        SEQ=$("$DAEMON" get --field applied_seq "$LADDR/statz" 2> /dev/null || echo 0)
        [ "$SEQ" -gt 0 ] 2> /dev/null && break
        sleep 0.1
    done
    [ "$SEQ" -gt 0 ] || {
        echo "live daemon made no ingest progress within 10s" >&2
        exit 1
    }
    # Exposition parses via the daemon's own zero-dependency parser.
    "$DAEMON" get --expo "$LADDR/metricsz"
    # SLO verdicts surface in /statz while ingest is live.
    "$DAEMON" get --field slo "$LADDR/statz" > "$SMOKE/live-slo.json"
    grep -q '"diagnosis"' "$SMOKE/live-slo.json"
    grep -q '"worst"' "$SMOKE/live-slo.json"
    # The watch dashboard renders real frames against the live daemon.
    "$REPRO" watch "$LADDR" --frames 2 --interval-ms 300 2> "$SMOKE/watch.txt"
    grep -q "verdict" "$SMOKE/watch.txt"
    grep -q "ingest_lag" "$SMOKE/watch.txt"
    kill -9 "$DPID"
    wait "$DPID" 2> /dev/null || true
    DPID=""

    # Phase 2: replay the same feed prefix twice — different chaos seed
    # and worker count — and byte-diff the deterministic /seriesz and
    # /sloz fields. The live report each run emits must schema-validate.
    "$DAEMON" serve $LFEED --chaos-seed 5 --jobs 1 \
        --live-report "$SMOKE/live-a.json" --port-file "$SMOKE/live-a.port" \
        2> "$SMOKE/live-a.log" &
    DPID=$!
    for _ in $(seq 1 100); do
        [ -s "$SMOKE/live-a.port" ] && break
        sleep 0.1
    done
    LADDR=$(cat "$SMOKE/live-a.port")
    daemon_wait "$LADDR/healthz"
    for _ in $(seq 1 300); do
        [ "$("$DAEMON" get --field ingest_done "$LADDR/statz" || true)" = "true" ] && break
        sleep 0.1
    done
    live_capture "$LADDR" "$SMOKE/live-det-a.txt"
    kill -9 "$DPID"
    wait "$DPID" 2> /dev/null || true
    DPID=""

    "$DAEMON" serve $LFEED --chaos-seed 11 --jobs 4 \
        --live-report "$SMOKE/live-b.json" --port-file "$SMOKE/live-b.port" \
        2> "$SMOKE/live-b.log" &
    DPID=$!
    for _ in $(seq 1 100); do
        [ -s "$SMOKE/live-b.port" ] && break
        sleep 0.1
    done
    LADDR=$(cat "$SMOKE/live-b.port")
    daemon_wait "$LADDR/healthz"
    for _ in $(seq 1 300); do
        [ "$("$DAEMON" get --field ingest_done "$LADDR/statz" || true)" = "true" ] && break
        sleep 0.1
    done
    live_capture "$LADDR" "$SMOKE/live-det-b.txt"
    kill -9 "$DPID"
    wait "$DPID" 2> /dev/null || true
    DPID=""

    diff "$SMOKE/live-det-a.txt" "$SMOKE/live-det-b.txt"
    "$REPRO" validate-metrics "$SMOKE/live-a.json"
    "$REPRO" validate-metrics "$SMOKE/live-b.json"
    echo "==> live gate passed (exposition parses, verdicts live, series replay-deterministic)"
}

# Poll an endpoint with `dnsimpactd get` until it answers 2xx (10s cap).
daemon_wait() {
    for _ in $(seq 1 100); do
        if "$DAEMON" get "$@" > /dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "daemon did not answer: $*" >&2
    return 1
}

gate_results() {
    echo "==> results gate: committed report hygiene"
    # Every committed machine-readable report must still parse under its
    # schema — a hand-edited or torn results/*.json fails CI here, not in
    # whatever later tooling happens to read it first.
    for J in results/*.json; do
        [ -e "$J" ] || continue
        "$REPRO" validate-metrics "$J"
    done
    # And every file under results/ must be covered by the index: named
    # outright, or matched by a documented series pattern.
    for F in results/*; do
        [ -f "$F" ] || continue
        B=$(basename "$F")
        case "$B" in
            INDEX.md) continue ;;
            BENCH_*.json) PAT='BENCH_<date>' ;;
            SWEEP_*.json) PAT='SWEEP_<date>' ;;
            DAEMON_*.json) PAT='DAEMON_<date>' ;;
            SUITE_*.json) PAT='SUITE_<date>' ;;
            LIVE_*.json) PAT='LIVE_<date>' ;;
            *) PAT="$B" ;;
        esac
        grep -qF "$PAT" results/INDEX.md || {
            echo "results hygiene: $B is not covered by results/INDEX.md (looked for \"$PAT\")" >&2
            exit 1
        }
    done
    echo "==> results gate passed (all reports valid, INDEX.md covers results/)"
}

for G in $SELECTED; do
    run_gate "$G"
done

echo "==> ci green ($SELECTED)"
