#!/bin/sh
# Offline CI gate. In order:
#
#   1. lint        cargo fmt --check + cargo clippy -D warnings
#   2. build       cargo build --release
#   3. tests       cargo test --workspace
#   4. determinism repro at --jobs 1 vs --jobs 2: byte-identical CSVs+stdout
#   5. chaos       fault injection, kill -9 mid-run, resume, diff vs clean
#   6. metrics     repro bench: schema-validated run report, counter
#                  invariants (fault accounting balances, reactive latency
#                  and probe budgets hold), regression diff against the
#                  committed BENCH baseline
#   7. wirebench   criterion smoke over the zero-copy parse and arena
#                  feed-block benches: every expected benchmark must run
#                  to completion and report a number
#   8. trace       pinned scenario with --trace-json: schema + causality
#                  validation of the exported event trace, and `repro
#                  explain` byte-identical across worker counts
#   9. sweep       repro bench --scale-sweep smoke (1.5k + 15k cells):
#                  cross-jobs artifact fingerprints enforced in-run, the
#                  emitted dnsimpact-sweep/v1 report schema-validated
#                  (heavy 150k/1.5M cells stay local: DNSIMPACT_SCALE_HEAVY)
#  10. daemon      dnsimpactd on the pinned feed: query a known-impacted
#                  domain mid-ingest, kill -9, restart from the checkpoint,
#                  and diff the recovered index fingerprint against a clean
#                  single-pass replay; the committed DAEMON perf snapshot
#                  (if any) is schema-validated
#
# `./ci.sh --quick` runs only steps 2-3 (the tier-1 loop), which includes
# the borrowed-vs-owned wire differential suite by name so a skipped or
# filtered-out differential run can never pass quietly.
#
# Everything here works without network access: all external dependencies
# are local shim crates (see shims/README.md).
set -eu

cd "$(dirname "$0")"

QUICK=0
[ "${1:-}" = "--quick" ] && QUICK=1

REPRO=target/release/repro
SMOKE=$(mktemp -d)
trap 'rm -rf "$SMOKE"' EXIT

# All repro invocations share the run identity; only jobs/output/chaos
# flags vary per gate. Keeps the gates honest: one config, many angles.
repro_run() {
    scale=$1
    jobs=$2
    out=$3
    shift 3
    "$REPRO" --seed 42 --scale "$scale" --jobs "$jobs" --out "$SMOKE/$out" "$@"
}

if [ "$QUICK" -eq 0 ]; then
    echo "==> lint gate: cargo fmt --check"
    cargo fmt --check
    echo "==> lint gate: cargo clippy -D warnings"
    cargo clippy --workspace --all-targets -- -D warnings
fi

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test -q (workspace)"
cargo test --workspace -q

echo "==> tier-1 differential: borrowed wire views vs owned decoders"
# Run the borrowed==owned differential suite by name: it is the contract
# that lets every hot path use the zero-copy views, so it must visibly
# execute (not just ride along inside the workspace pass above).
cargo test -q -p dnswire --test differential

if [ "$QUICK" -eq 1 ]; then
    echo "==> ci green (quick: build + tests only)"
    exit 0
fi

echo "==> determinism smoke: repro --jobs 1 vs --jobs 2"
# A cheap but representative subset: longitudinal renders, the shared-run
# coalescing trio, and a self-contained scenario experiment.
EXPERIMENTS="table1 table3 table5 fig5 fig8 fig11 ablate futurework"
repro_run 1500 1 j1 $EXPERIMENTS > "$SMOKE/j1.stdout" 2> /dev/null
repro_run 1500 2 j2 $EXPERIMENTS > "$SMOKE/j2.stdout" 2> /dev/null
diff -r "$SMOKE/j1" "$SMOKE/j2"
diff "$SMOKE/j1.stdout" "$SMOKE/j2.stdout"
echo "==> determinism smoke passed (artifacts byte-identical across job counts)"

echo "==> chaos gate: fault injection, kill -9 mid-run, resume, diff vs clean"
# The same catalog subset plus the self-contained scenario experiments, so
# the killed run has checkpointable jobs both before and after the kill.
# Scale 100 makes the run long enough (~2-3 s) for the kill to land
# mid-flight; the diff holds wherever it lands.
CHAOS_EXPERIMENTS="$EXPERIMENTS table2 fig2 fig3 russia"
repro_run 100 2 chaos-clean $CHAOS_EXPERIMENTS > /dev/null 2>&1
# Chaos run with completion markers, killed hard mid-flight.
repro_run 100 2 chaos-out --chaos-seed 9 --checkpoint-dir "$SMOKE/ckpt" \
    $CHAOS_EXPERIMENTS > /dev/null 2>&1 &
CHAOS_PID=$!
sleep 1
kill -9 "$CHAOS_PID" 2> /dev/null || true
wait "$CHAOS_PID" 2> /dev/null || true
# Resume with the same seed, chaos seed, and checkpoint dir: completed
# jobs are skipped, the rest re-run; the output must match a run that was
# never killed and never saw a fault.
repro_run 100 2 chaos-out --chaos-seed 9 --checkpoint-dir "$SMOKE/ckpt" \
    $CHAOS_EXPERIMENTS > /dev/null 2>&1
diff -r "$SMOKE/chaos-clean" "$SMOKE/chaos-out"
echo "==> chaos gate passed (killed-and-resumed run byte-identical to clean run)"

echo "==> metrics gate: repro bench + schema/invariant validation"
# The bench subcommand replays its pinned catalog subset (chaos on, so the
# fault-accounting invariant is exercised) and emits the schema-v1 run
# report; validate-metrics re-reads it and fails on any schema violation
# or counter-invariant break.
BENCH_JSON="$SMOKE/bench/BENCH.json"
# --compare with no path diffs against the newest committed BENCH report
# under results/: deterministic counters must match exactly, wall time and
# peak RSS must stay within the regression envelope.
"$REPRO" bench --compare --metrics-json "$BENCH_JSON" --out "$SMOKE/bench-out" \
    > "$SMOKE/bench.stdout" 2> /dev/null
# Bench suppresses artifact text: a non-empty stdout means metrics leaked.
if [ -s "$SMOKE/bench.stdout" ]; then
    echo "bench wrote to stdout:" >&2
    cat "$SMOKE/bench.stdout" >&2
    exit 1
fi
"$REPRO" validate-metrics "$BENCH_JSON"
echo "==> metrics gate passed (report valid, invariants hold, no bench regression)"

echo "==> wire gate: criterion smoke over parse + feed-block benches"
# The zero-copy parse and arena-block benches must run to completion and
# report every expected benchmark — a panicking or silently-dropped bench
# fails here. The feedblock bench's own post-run assert re-proves block
# rows == row-path records on the bench input.
cargo bench -p dnsimpact-bench --bench wire --bench feedblock \
    > "$SMOKE/wirebench.txt" 2>&1 || {
    cat "$SMOKE/wirebench.txt" >&2
    exit 1
}
for B in dnswire/decode_ns_response dnswire/parse_ref_ns_response \
    dnswire/parse_ref_and_canonical_qname feedblock/classify_into_block \
    feedblock/episodes_from_block feedblock/fanout_block_clone; do
    grep -q "$B" "$SMOKE/wirebench.txt" || {
        echo "benchmark $B missing from criterion smoke output" >&2
        cat "$SMOKE/wirebench.txt" >&2
        exit 1
    }
done
echo "==> wire gate passed (all parse/feed-block benches ran and reported)"

echo "==> trace gate: causal event trace export + forensics"
# The pinned scenario covers every emission layer: the longitudinal
# pipeline (rsdos episodes), the reactive feeds (milru/rdz), and the
# catalog's stage brackets. validate-trace re-reads the Chrome trace and
# checks schema + causality (triggers within the 10-minute bound, probe
# rounds within the 50-domain budget, faults paired inject/repair).
TRACE_JSON="$SMOKE/trace.json"
repro_run 1500 2 trace-out --trace-json "$TRACE_JSON" table1 russia \
    > /dev/null 2> /dev/null
"$REPRO" validate-trace "$TRACE_JSON"
# Episode forensics are part of the determinism contract: the explain
# timeline for the same episode must be byte-identical whatever --jobs.
repro_run 1500 1 expl-j1 explain milru/0 > "$SMOKE/explain-j1.txt" 2> /dev/null
repro_run 1500 4 expl-j4 explain milru/0 > "$SMOKE/explain-j4.txt" 2> /dev/null
diff "$SMOKE/explain-j1.txt" "$SMOKE/explain-j4.txt"
grep -q "AttackOnset" "$SMOKE/explain-j1.txt"
echo "==> trace gate passed (trace causally sound, explain deterministic)"

echo "==> sweep gate: repro bench --scale-sweep smoke"
# The sweep refuses to emit a report unless every jobs=N cell's artifact
# fingerprint matches its scale's jobs=1 cell, and (on multi-core hosts)
# the largest scale's jobs=N cell shows speedup > 1; on a single-CPU host
# the speedup gate auto-skips but the 8-thread determinism cell still
# runs. validate-metrics then re-reads the report through the sweep-v1
# schema: sorted cells, finite rates, consistent record accounting.
"$REPRO" bench --scale-sweep --seed 42 --out "$SMOKE/sweep" 2> /dev/null
SWEEP_JSON=$(ls "$SMOKE"/sweep/SWEEP_*.json)
"$REPRO" validate-metrics "$SWEEP_JSON"
echo "==> sweep gate passed (cross-jobs fingerprints equal, report schema valid)"

echo "==> daemon gate: dnsimpactd crash recovery + query surface"
# The daemon's whole robustness claim in one experiment: the index a
# kill -9'd, checkpoint-recovered, chaos-injected daemon ends up serving
# must fingerprint identically to an in-process clean single-pass replay
# of the same feed. `dnsimpactd get` is the HTTP client (curl is not
# guaranteed in this container).
DAEMON=target/release/dnsimpactd
DFEED="--seed 7 --scale-target 15000 --months 2 --providers 20 --domains 6000"
CLEAN_FP=$("$DAEMON" fingerprint $DFEED)
DOM=$("$DAEMON" domains $DFEED --impacted -n 1)
DCKPT="$SMOKE/daemon-ckpt"
mkdir -p "$DCKPT"

# Poll an endpoint with `dnsimpactd get` until it answers 2xx (10s cap).
daemon_wait() {
    for _ in $(seq 1 100); do
        if "$DAEMON" get "$@" > /dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "daemon did not answer: $*" >&2
    return 1
}

# First incarnation: paced ingest (so the kill lands mid-stream) under a
# chaos seed (so recovery is proven against transport faults too).
"$DAEMON" serve $DFEED --chaos-seed 3 --pace-ms 15 \
    --port-file "$SMOKE/daemon.port" --checkpoint-dir "$DCKPT" \
    2> "$SMOKE/daemon1.log" &
DPID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE/daemon.port" ] && break
    sleep 0.1
done
DADDR=$(cat "$SMOKE/daemon.port")
daemon_wait "$DADDR/healthz"
# The query surface answers while ingest is still running.
"$DAEMON" get "$DADDR/query?domain=$DOM" > "$SMOKE/daemon-answer1.json"
grep -q '"staleness_s"' "$SMOKE/daemon-answer1.json"
INGEST_DONE=$("$DAEMON" get --field ingest_done "$DADDR/statz" || true)
kill -9 "$DPID"
wait "$DPID" 2> /dev/null || true
# The paced feed takes ~18s to ingest; the kill above landed mid-stream.
[ "$INGEST_DONE" = "false" ] || {
    echo "daemon finished ingest before the kill; gate is vacuous" >&2
    exit 1
}

# Second incarnation: same checkpoint dir, no pacing. It must recover,
# finish ingest, and serve the clean-replay fingerprint.
"$DAEMON" serve $DFEED --chaos-seed 3 \
    --port-file "$SMOKE/daemon.port2" --checkpoint-dir "$DCKPT" \
    2> "$SMOKE/daemon2.log" &
DPID=$!
for _ in $(seq 1 100); do
    [ -s "$SMOKE/daemon.port2" ] && break
    sleep 0.1
done
DADDR=$(cat "$SMOKE/daemon.port2")
daemon_wait "$DADDR/healthz"
for _ in $(seq 1 100); do
    [ "$("$DAEMON" get --field ingest_done "$DADDR/statz" || true)" = "true" ] && break
    sleep 0.1
done
grep -q "recovered: replayed" "$SMOKE/daemon2.log"
RECOVERED_FP=$("$DAEMON" get --field full_fp "$DADDR/statz")
[ "$RECOVERED_FP" = "$CLEAN_FP" ] || {
    echo "recovered fingerprint $RECOVERED_FP != clean replay $CLEAN_FP" >&2
    exit 1
}
"$DAEMON" get "$DADDR/query?domain=$DOM" | grep -q '"attacks_seen"'
"$DAEMON" get "$DADDR/readyz" > /dev/null
kill -9 "$DPID"
wait "$DPID" 2> /dev/null || true
# The committed perf snapshot (if any) must parse under its schema.
for DJSON in results/DAEMON_*.json; do
    [ -e "$DJSON" ] && "$REPRO" validate-metrics "$DJSON"
done
echo "==> daemon gate passed (kill -9 recovery fingerprint-identical, shed-accounted serving)"

echo "==> ci green"
